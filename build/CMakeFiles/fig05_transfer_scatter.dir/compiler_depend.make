# Empty compiler generated dependencies file for fig05_transfer_scatter.
# This may be replaced when dependencies are built.
