file(REMOVE_RECURSE
  "CMakeFiles/fig05_transfer_scatter.dir/bench/fig05_transfer_scatter.cpp.o"
  "CMakeFiles/fig05_transfer_scatter.dir/bench/fig05_transfer_scatter.cpp.o.d"
  "bench/fig05_transfer_scatter"
  "bench/fig05_transfer_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_transfer_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
