# Empty dependencies file for fig07_cfd_sizes.
# This may be replaced when dependencies are built.
