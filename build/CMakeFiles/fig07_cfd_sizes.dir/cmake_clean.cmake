file(REMOVE_RECURSE
  "CMakeFiles/fig07_cfd_sizes.dir/bench/fig07_cfd_sizes.cpp.o"
  "CMakeFiles/fig07_cfd_sizes.dir/bench/fig07_cfd_sizes.cpp.o.d"
  "bench/fig07_cfd_sizes"
  "bench/fig07_cfd_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cfd_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
