file(REMOVE_RECURSE
  "CMakeFiles/ext_baseline.dir/bench/ext_baseline.cpp.o"
  "CMakeFiles/ext_baseline.dir/bench/ext_baseline.cpp.o.d"
  "bench/ext_baseline"
  "bench/ext_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
