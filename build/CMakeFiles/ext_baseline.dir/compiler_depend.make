# Empty compiler generated dependencies file for ext_baseline.
# This may be replaced when dependencies are built.
