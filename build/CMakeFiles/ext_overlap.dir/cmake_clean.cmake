file(REMOVE_RECURSE
  "CMakeFiles/ext_overlap.dir/bench/ext_overlap.cpp.o"
  "CMakeFiles/ext_overlap.dir/bench/ext_overlap.cpp.o.d"
  "bench/ext_overlap"
  "bench/ext_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
