# Empty dependencies file for fig02_transfer_time.
# This may be replaced when dependencies are built.
