file(REMOVE_RECURSE
  "CMakeFiles/fig02_transfer_time.dir/bench/fig02_transfer_time.cpp.o"
  "CMakeFiles/fig02_transfer_time.dir/bench/fig02_transfer_time.cpp.o.d"
  "bench/fig02_transfer_time"
  "bench/fig02_transfer_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_transfer_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
