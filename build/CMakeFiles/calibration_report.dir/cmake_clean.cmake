file(REMOVE_RECURSE
  "CMakeFiles/calibration_report.dir/bench/calibration_report.cpp.o"
  "CMakeFiles/calibration_report.dir/bench/calibration_report.cpp.o.d"
  "bench/calibration_report"
  "bench/calibration_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
