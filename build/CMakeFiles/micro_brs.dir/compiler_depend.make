# Empty compiler generated dependencies file for micro_brs.
# This may be replaced when dependencies are built.
