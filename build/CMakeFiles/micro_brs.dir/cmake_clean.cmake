file(REMOVE_RECURSE
  "CMakeFiles/micro_brs.dir/bench/micro_brs.cpp.o"
  "CMakeFiles/micro_brs.dir/bench/micro_brs.cpp.o.d"
  "bench/micro_brs"
  "bench/micro_brs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_brs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
