file(REMOVE_RECURSE
  "CMakeFiles/fig03_pinned_speedup.dir/bench/fig03_pinned_speedup.cpp.o"
  "CMakeFiles/fig03_pinned_speedup.dir/bench/fig03_pinned_speedup.cpp.o.d"
  "bench/fig03_pinned_speedup"
  "bench/fig03_pinned_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pinned_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
