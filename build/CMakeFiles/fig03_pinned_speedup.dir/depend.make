# Empty dependencies file for fig03_pinned_speedup.
# This may be replaced when dependencies are built.
