# Empty compiler generated dependencies file for fig09_hotspot_sizes.
# This may be replaced when dependencies are built.
