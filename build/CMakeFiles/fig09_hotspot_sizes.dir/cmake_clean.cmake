file(REMOVE_RECURSE
  "CMakeFiles/fig09_hotspot_sizes.dir/bench/fig09_hotspot_sizes.cpp.o"
  "CMakeFiles/fig09_hotspot_sizes.dir/bench/fig09_hotspot_sizes.cpp.o.d"
  "bench/fig09_hotspot_sizes"
  "bench/fig09_hotspot_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_hotspot_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
