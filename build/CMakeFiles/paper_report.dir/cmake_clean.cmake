file(REMOVE_RECURSE
  "CMakeFiles/paper_report.dir/bench/paper_report.cpp.o"
  "CMakeFiles/paper_report.dir/bench/paper_report.cpp.o.d"
  "bench/paper_report"
  "bench/paper_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
