file(REMOVE_RECURSE
  "CMakeFiles/ablation_calibration.dir/bench/ablation_calibration.cpp.o"
  "CMakeFiles/ablation_calibration.dir/bench/ablation_calibration.cpp.o.d"
  "bench/ablation_calibration"
  "bench/ablation_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
