# Empty dependencies file for ablation_cpu_cache.
# This may be replaced when dependencies are built.
