file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpu_cache.dir/bench/ablation_cpu_cache.cpp.o"
  "CMakeFiles/ablation_cpu_cache.dir/bench/ablation_cpu_cache.cpp.o.d"
  "bench/ablation_cpu_cache"
  "bench/ablation_cpu_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
