file(REMOVE_RECURSE
  "CMakeFiles/table2_speedup_error.dir/bench/table2_speedup_error.cpp.o"
  "CMakeFiles/table2_speedup_error.dir/bench/table2_speedup_error.cpp.o.d"
  "bench/table2_speedup_error"
  "bench/table2_speedup_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_speedup_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
