# Empty dependencies file for fig08_cfd_iters.
# This may be replaced when dependencies are built.
