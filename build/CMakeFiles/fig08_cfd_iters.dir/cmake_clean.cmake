file(REMOVE_RECURSE
  "CMakeFiles/fig08_cfd_iters.dir/bench/fig08_cfd_iters.cpp.o"
  "CMakeFiles/fig08_cfd_iters.dir/bench/fig08_cfd_iters.cpp.o.d"
  "bench/fig08_cfd_iters"
  "bench/fig08_cfd_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cfd_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
