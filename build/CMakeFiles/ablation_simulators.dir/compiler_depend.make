# Empty compiler generated dependencies file for ablation_simulators.
# This may be replaced when dependencies are built.
