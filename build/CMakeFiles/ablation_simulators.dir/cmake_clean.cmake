file(REMOVE_RECURSE
  "CMakeFiles/ablation_simulators.dir/bench/ablation_simulators.cpp.o"
  "CMakeFiles/ablation_simulators.dir/bench/ablation_simulators.cpp.o.d"
  "bench/ablation_simulators"
  "bench/ablation_simulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
