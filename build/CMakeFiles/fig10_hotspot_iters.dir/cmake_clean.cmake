file(REMOVE_RECURSE
  "CMakeFiles/fig10_hotspot_iters.dir/bench/fig10_hotspot_iters.cpp.o"
  "CMakeFiles/fig10_hotspot_iters.dir/bench/fig10_hotspot_iters.cpp.o.d"
  "bench/fig10_hotspot_iters"
  "bench/fig10_hotspot_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hotspot_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
