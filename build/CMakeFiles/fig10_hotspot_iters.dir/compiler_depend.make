# Empty compiler generated dependencies file for fig10_hotspot_iters.
# This may be replaced when dependencies are built.
