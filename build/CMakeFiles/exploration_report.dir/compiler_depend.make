# Empty compiler generated dependencies file for exploration_report.
# This may be replaced when dependencies are built.
