file(REMOVE_RECURSE
  "CMakeFiles/exploration_report.dir/bench/exploration_report.cpp.o"
  "CMakeFiles/exploration_report.dir/bench/exploration_report.cpp.o.d"
  "bench/exploration_report"
  "bench/exploration_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exploration_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
