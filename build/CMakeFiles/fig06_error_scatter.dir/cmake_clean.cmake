file(REMOVE_RECURSE
  "CMakeFiles/fig06_error_scatter.dir/bench/fig06_error_scatter.cpp.o"
  "CMakeFiles/fig06_error_scatter.dir/bench/fig06_error_scatter.cpp.o.d"
  "bench/fig06_error_scatter"
  "bench/fig06_error_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_error_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
