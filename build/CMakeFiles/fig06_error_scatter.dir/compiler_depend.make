# Empty compiler generated dependencies file for fig06_error_scatter.
# This may be replaced when dependencies are built.
