file(REMOVE_RECURSE
  "CMakeFiles/robustness_report.dir/bench/robustness_report.cpp.o"
  "CMakeFiles/robustness_report.dir/bench/robustness_report.cpp.o.d"
  "bench/robustness_report"
  "bench/robustness_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
