file(REMOVE_RECURSE
  "CMakeFiles/fig12_srad_iters.dir/bench/fig12_srad_iters.cpp.o"
  "CMakeFiles/fig12_srad_iters.dir/bench/fig12_srad_iters.cpp.o.d"
  "bench/fig12_srad_iters"
  "bench/fig12_srad_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_srad_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
