# Empty dependencies file for fig12_srad_iters.
# This may be replaced when dependencies are built.
