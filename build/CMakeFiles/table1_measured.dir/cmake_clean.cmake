file(REMOVE_RECURSE
  "CMakeFiles/table1_measured.dir/bench/table1_measured.cpp.o"
  "CMakeFiles/table1_measured.dir/bench/table1_measured.cpp.o.d"
  "bench/table1_measured"
  "bench/table1_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
