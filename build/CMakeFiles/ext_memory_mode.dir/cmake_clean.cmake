file(REMOVE_RECURSE
  "CMakeFiles/ext_memory_mode.dir/bench/ext_memory_mode.cpp.o"
  "CMakeFiles/ext_memory_mode.dir/bench/ext_memory_mode.cpp.o.d"
  "bench/ext_memory_mode"
  "bench/ext_memory_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
