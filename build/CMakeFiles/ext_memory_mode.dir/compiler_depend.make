# Empty compiler generated dependencies file for ext_memory_mode.
# This may be replaced when dependencies are built.
