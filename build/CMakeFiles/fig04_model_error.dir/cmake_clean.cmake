file(REMOVE_RECURSE
  "CMakeFiles/fig04_model_error.dir/bench/fig04_model_error.cpp.o"
  "CMakeFiles/fig04_model_error.dir/bench/fig04_model_error.cpp.o.d"
  "bench/fig04_model_error"
  "bench/fig04_model_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_model_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
