# Empty dependencies file for fig04_model_error.
# This may be replaced when dependencies are built.
