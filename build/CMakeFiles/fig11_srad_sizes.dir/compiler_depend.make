# Empty compiler generated dependencies file for fig11_srad_sizes.
# This may be replaced when dependencies are built.
