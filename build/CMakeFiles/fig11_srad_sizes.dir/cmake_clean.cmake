file(REMOVE_RECURSE
  "CMakeFiles/fig11_srad_sizes.dir/bench/fig11_srad_sizes.cpp.o"
  "CMakeFiles/fig11_srad_sizes.dir/bench/fig11_srad_sizes.cpp.o.d"
  "bench/fig11_srad_sizes"
  "bench/fig11_srad_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_srad_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
