# Empty compiler generated dependencies file for porting_plan.
# This may be replaced when dependencies are built.
