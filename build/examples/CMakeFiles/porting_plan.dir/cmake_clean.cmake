file(REMOVE_RECURSE
  "CMakeFiles/porting_plan.dir/porting_plan.cpp.o"
  "CMakeFiles/porting_plan.dir/porting_plan.cpp.o.d"
  "porting_plan"
  "porting_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/porting_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
