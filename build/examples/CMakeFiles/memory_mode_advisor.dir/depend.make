# Empty dependencies file for memory_mode_advisor.
# This may be replaced when dependencies are built.
