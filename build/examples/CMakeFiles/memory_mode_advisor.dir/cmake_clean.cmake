file(REMOVE_RECURSE
  "CMakeFiles/memory_mode_advisor.dir/memory_mode_advisor.cpp.o"
  "CMakeFiles/memory_mode_advisor.dir/memory_mode_advisor.cpp.o.d"
  "memory_mode_advisor"
  "memory_mode_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_mode_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
