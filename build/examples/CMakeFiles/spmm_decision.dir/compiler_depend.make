# Empty compiler generated dependencies file for spmm_decision.
# This may be replaced when dependencies are built.
