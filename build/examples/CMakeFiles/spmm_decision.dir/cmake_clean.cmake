file(REMOVE_RECURSE
  "CMakeFiles/spmm_decision.dir/spmm_decision.cpp.o"
  "CMakeFiles/spmm_decision.dir/spmm_decision.cpp.o.d"
  "spmm_decision"
  "spmm_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
