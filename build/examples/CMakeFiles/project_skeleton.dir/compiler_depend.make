# Empty compiler generated dependencies file for project_skeleton.
# This may be replaced when dependencies are built.
