file(REMOVE_RECURSE
  "CMakeFiles/project_skeleton.dir/project_skeleton.cpp.o"
  "CMakeFiles/project_skeleton.dir/project_skeleton.cpp.o.d"
  "project_skeleton"
  "project_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
