file(REMOVE_RECURSE
  "CMakeFiles/capture_demo.dir/capture_demo.cpp.o"
  "CMakeFiles/capture_demo.dir/capture_demo.cpp.o.d"
  "capture_demo"
  "capture_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
