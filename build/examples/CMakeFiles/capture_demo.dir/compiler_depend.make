# Empty compiler generated dependencies file for capture_demo.
# This may be replaced when dependencies are built.
