file(REMOVE_RECURSE
  "CMakeFiles/pipeline_reuse.dir/pipeline_reuse.cpp.o"
  "CMakeFiles/pipeline_reuse.dir/pipeline_reuse.cpp.o.d"
  "pipeline_reuse"
  "pipeline_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
