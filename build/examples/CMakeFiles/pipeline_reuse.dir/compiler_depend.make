# Empty compiler generated dependencies file for pipeline_reuse.
# This may be replaced when dependencies are built.
