# Empty dependencies file for stencil_advisor.
# This may be replaced when dependencies are built.
