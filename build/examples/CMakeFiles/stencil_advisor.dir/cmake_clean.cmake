file(REMOVE_RECURSE
  "CMakeFiles/stencil_advisor.dir/stencil_advisor.cpp.o"
  "CMakeFiles/stencil_advisor.dir/stencil_advisor.cpp.o.d"
  "stencil_advisor"
  "stencil_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
