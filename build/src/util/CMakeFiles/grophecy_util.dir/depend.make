# Empty dependencies file for grophecy_util.
# This may be replaced when dependencies are built.
