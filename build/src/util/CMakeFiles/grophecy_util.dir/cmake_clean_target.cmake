file(REMOVE_RECURSE
  "libgrophecy_util.a"
)
