file(REMOVE_RECURSE
  "CMakeFiles/grophecy_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/grophecy_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/grophecy_util.dir/csv.cpp.o"
  "CMakeFiles/grophecy_util.dir/csv.cpp.o.d"
  "CMakeFiles/grophecy_util.dir/logging.cpp.o"
  "CMakeFiles/grophecy_util.dir/logging.cpp.o.d"
  "CMakeFiles/grophecy_util.dir/rng.cpp.o"
  "CMakeFiles/grophecy_util.dir/rng.cpp.o.d"
  "CMakeFiles/grophecy_util.dir/stats.cpp.o"
  "CMakeFiles/grophecy_util.dir/stats.cpp.o.d"
  "CMakeFiles/grophecy_util.dir/table.cpp.o"
  "CMakeFiles/grophecy_util.dir/table.cpp.o.d"
  "CMakeFiles/grophecy_util.dir/units.cpp.o"
  "CMakeFiles/grophecy_util.dir/units.cpp.o.d"
  "libgrophecy_util.a"
  "libgrophecy_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
