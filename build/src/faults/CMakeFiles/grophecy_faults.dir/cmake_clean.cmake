file(REMOVE_RECURSE
  "CMakeFiles/grophecy_faults.dir/fault_injector.cpp.o"
  "CMakeFiles/grophecy_faults.dir/fault_injector.cpp.o.d"
  "libgrophecy_faults.a"
  "libgrophecy_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
