file(REMOVE_RECURSE
  "libgrophecy_faults.a"
)
