# Empty dependencies file for grophecy_faults.
# This may be replaced when dependencies are built.
