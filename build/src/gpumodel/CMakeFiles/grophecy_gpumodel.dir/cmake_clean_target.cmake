file(REMOVE_RECURSE
  "libgrophecy_gpumodel.a"
)
