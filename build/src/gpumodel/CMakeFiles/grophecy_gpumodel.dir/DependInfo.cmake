
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpumodel/characteristics.cpp" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/characteristics.cpp.o" "gcc" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/characteristics.cpp.o.d"
  "/root/repo/src/gpumodel/explorer.cpp" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/explorer.cpp.o" "gcc" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/explorer.cpp.o.d"
  "/root/repo/src/gpumodel/kernel_model.cpp" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/kernel_model.cpp.o" "gcc" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/kernel_model.cpp.o.d"
  "/root/repo/src/gpumodel/occupancy.cpp" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/occupancy.cpp.o" "gcc" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/occupancy.cpp.o.d"
  "/root/repo/src/gpumodel/transform.cpp" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/transform.cpp.o" "gcc" "src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grophecy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/grophecy_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/grophecy_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/brs/CMakeFiles/grophecy_brs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
