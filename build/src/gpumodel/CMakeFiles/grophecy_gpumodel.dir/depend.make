# Empty dependencies file for grophecy_gpumodel.
# This may be replaced when dependencies are built.
