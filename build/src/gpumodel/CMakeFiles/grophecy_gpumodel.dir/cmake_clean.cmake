file(REMOVE_RECURSE
  "CMakeFiles/grophecy_gpumodel.dir/characteristics.cpp.o"
  "CMakeFiles/grophecy_gpumodel.dir/characteristics.cpp.o.d"
  "CMakeFiles/grophecy_gpumodel.dir/explorer.cpp.o"
  "CMakeFiles/grophecy_gpumodel.dir/explorer.cpp.o.d"
  "CMakeFiles/grophecy_gpumodel.dir/kernel_model.cpp.o"
  "CMakeFiles/grophecy_gpumodel.dir/kernel_model.cpp.o.d"
  "CMakeFiles/grophecy_gpumodel.dir/occupancy.cpp.o"
  "CMakeFiles/grophecy_gpumodel.dir/occupancy.cpp.o.d"
  "CMakeFiles/grophecy_gpumodel.dir/transform.cpp.o"
  "CMakeFiles/grophecy_gpumodel.dir/transform.cpp.o.d"
  "libgrophecy_gpumodel.a"
  "libgrophecy_gpumodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_gpumodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
