file(REMOVE_RECURSE
  "CMakeFiles/grophecy_sim.dir/event_sim.cpp.o"
  "CMakeFiles/grophecy_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/grophecy_sim.dir/gpu_sim.cpp.o"
  "CMakeFiles/grophecy_sim.dir/gpu_sim.cpp.o.d"
  "libgrophecy_sim.a"
  "libgrophecy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
