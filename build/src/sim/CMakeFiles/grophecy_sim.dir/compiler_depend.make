# Empty compiler generated dependencies file for grophecy_sim.
# This may be replaced when dependencies are built.
