file(REMOVE_RECURSE
  "libgrophecy_sim.a"
)
