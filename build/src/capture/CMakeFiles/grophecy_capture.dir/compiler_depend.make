# Empty compiler generated dependencies file for grophecy_capture.
# This may be replaced when dependencies are built.
