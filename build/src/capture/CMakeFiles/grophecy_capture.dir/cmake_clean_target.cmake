file(REMOVE_RECURSE
  "libgrophecy_capture.a"
)
