file(REMOVE_RECURSE
  "CMakeFiles/grophecy_capture.dir/recorder.cpp.o"
  "CMakeFiles/grophecy_capture.dir/recorder.cpp.o.d"
  "libgrophecy_capture.a"
  "libgrophecy_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
