# Empty dependencies file for grophecy_skeleton.
# This may be replaced when dependencies are built.
