
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skeleton/builder.cpp" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/builder.cpp.o" "gcc" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/builder.cpp.o.d"
  "/root/repo/src/skeleton/parse.cpp" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/parse.cpp.o" "gcc" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/parse.cpp.o.d"
  "/root/repo/src/skeleton/print.cpp" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/print.cpp.o" "gcc" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/print.cpp.o.d"
  "/root/repo/src/skeleton/serialize.cpp" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/serialize.cpp.o" "gcc" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/serialize.cpp.o.d"
  "/root/repo/src/skeleton/skeleton.cpp" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/skeleton.cpp.o" "gcc" "src/skeleton/CMakeFiles/grophecy_skeleton.dir/skeleton.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grophecy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
