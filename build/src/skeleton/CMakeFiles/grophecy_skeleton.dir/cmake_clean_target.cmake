file(REMOVE_RECURSE
  "libgrophecy_skeleton.a"
)
