file(REMOVE_RECURSE
  "CMakeFiles/grophecy_skeleton.dir/builder.cpp.o"
  "CMakeFiles/grophecy_skeleton.dir/builder.cpp.o.d"
  "CMakeFiles/grophecy_skeleton.dir/parse.cpp.o"
  "CMakeFiles/grophecy_skeleton.dir/parse.cpp.o.d"
  "CMakeFiles/grophecy_skeleton.dir/print.cpp.o"
  "CMakeFiles/grophecy_skeleton.dir/print.cpp.o.d"
  "CMakeFiles/grophecy_skeleton.dir/serialize.cpp.o"
  "CMakeFiles/grophecy_skeleton.dir/serialize.cpp.o.d"
  "CMakeFiles/grophecy_skeleton.dir/skeleton.cpp.o"
  "CMakeFiles/grophecy_skeleton.dir/skeleton.cpp.o.d"
  "libgrophecy_skeleton.a"
  "libgrophecy_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
