# Empty dependencies file for grophecy_workloads.
# This may be replaced when dependencies are built.
