file(REMOVE_RECURSE
  "CMakeFiles/grophecy_workloads.dir/cfd.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/cfd.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/cfd_ref.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/cfd_ref.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/hotspot.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/hotspot.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/hotspot_ref.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/hotspot_ref.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/matmul.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/matmul.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/paper_reference.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/paper_reference.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/srad.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/srad.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/srad_ref.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/srad_ref.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/stassuij.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/stassuij.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/stassuij_ref.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/stassuij_ref.cpp.o.d"
  "CMakeFiles/grophecy_workloads.dir/workload.cpp.o"
  "CMakeFiles/grophecy_workloads.dir/workload.cpp.o.d"
  "libgrophecy_workloads.a"
  "libgrophecy_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
