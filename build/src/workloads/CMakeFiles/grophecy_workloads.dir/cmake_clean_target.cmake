file(REMOVE_RECURSE
  "libgrophecy_workloads.a"
)
