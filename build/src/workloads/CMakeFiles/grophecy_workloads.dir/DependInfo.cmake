
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cfd.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/cfd.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/cfd.cpp.o.d"
  "/root/repo/src/workloads/cfd_ref.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/cfd_ref.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/cfd_ref.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/hotspot.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/hotspot.cpp.o.d"
  "/root/repo/src/workloads/hotspot_ref.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/hotspot_ref.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/hotspot_ref.cpp.o.d"
  "/root/repo/src/workloads/matmul.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/matmul.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/matmul.cpp.o.d"
  "/root/repo/src/workloads/paper_reference.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/paper_reference.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/paper_reference.cpp.o.d"
  "/root/repo/src/workloads/srad.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/srad.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/srad.cpp.o.d"
  "/root/repo/src/workloads/srad_ref.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/srad_ref.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/srad_ref.cpp.o.d"
  "/root/repo/src/workloads/stassuij.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/stassuij.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/stassuij.cpp.o.d"
  "/root/repo/src/workloads/stassuij_ref.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/stassuij_ref.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/stassuij_ref.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/grophecy_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/grophecy_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grophecy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/grophecy_skeleton.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
