# Empty dependencies file for grophecy_hw.
# This may be replaced when dependencies are built.
