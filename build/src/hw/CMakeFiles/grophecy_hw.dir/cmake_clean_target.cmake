file(REMOVE_RECURSE
  "libgrophecy_hw.a"
)
