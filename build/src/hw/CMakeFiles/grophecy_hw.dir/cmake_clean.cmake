file(REMOVE_RECURSE
  "CMakeFiles/grophecy_hw.dir/machine.cpp.o"
  "CMakeFiles/grophecy_hw.dir/machine.cpp.o.d"
  "CMakeFiles/grophecy_hw.dir/machine_file.cpp.o"
  "CMakeFiles/grophecy_hw.dir/machine_file.cpp.o.d"
  "CMakeFiles/grophecy_hw.dir/registry.cpp.o"
  "CMakeFiles/grophecy_hw.dir/registry.cpp.o.d"
  "libgrophecy_hw.a"
  "libgrophecy_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
