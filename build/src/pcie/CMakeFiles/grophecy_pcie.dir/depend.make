# Empty dependencies file for grophecy_pcie.
# This may be replaced when dependencies are built.
