file(REMOVE_RECURSE
  "libgrophecy_pcie.a"
)
