file(REMOVE_RECURSE
  "CMakeFiles/grophecy_pcie.dir/allocation.cpp.o"
  "CMakeFiles/grophecy_pcie.dir/allocation.cpp.o.d"
  "CMakeFiles/grophecy_pcie.dir/bus.cpp.o"
  "CMakeFiles/grophecy_pcie.dir/bus.cpp.o.d"
  "CMakeFiles/grophecy_pcie.dir/calibrator.cpp.o"
  "CMakeFiles/grophecy_pcie.dir/calibrator.cpp.o.d"
  "CMakeFiles/grophecy_pcie.dir/linear_model.cpp.o"
  "CMakeFiles/grophecy_pcie.dir/linear_model.cpp.o.d"
  "libgrophecy_pcie.a"
  "libgrophecy_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
