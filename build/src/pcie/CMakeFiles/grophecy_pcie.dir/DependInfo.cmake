
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/allocation.cpp" "src/pcie/CMakeFiles/grophecy_pcie.dir/allocation.cpp.o" "gcc" "src/pcie/CMakeFiles/grophecy_pcie.dir/allocation.cpp.o.d"
  "/root/repo/src/pcie/bus.cpp" "src/pcie/CMakeFiles/grophecy_pcie.dir/bus.cpp.o" "gcc" "src/pcie/CMakeFiles/grophecy_pcie.dir/bus.cpp.o.d"
  "/root/repo/src/pcie/calibrator.cpp" "src/pcie/CMakeFiles/grophecy_pcie.dir/calibrator.cpp.o" "gcc" "src/pcie/CMakeFiles/grophecy_pcie.dir/calibrator.cpp.o.d"
  "/root/repo/src/pcie/linear_model.cpp" "src/pcie/CMakeFiles/grophecy_pcie.dir/linear_model.cpp.o" "gcc" "src/pcie/CMakeFiles/grophecy_pcie.dir/linear_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grophecy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/grophecy_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
