# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("hw")
subdirs("pcie")
subdirs("skeleton")
subdirs("brs")
subdirs("capture")
subdirs("dataflow")
subdirs("cpumodel")
subdirs("gpumodel")
subdirs("sim")
subdirs("faults")
subdirs("workloads")
subdirs("core")
