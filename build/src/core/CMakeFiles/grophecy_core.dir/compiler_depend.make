# Empty compiler generated dependencies file for grophecy_core.
# This may be replaced when dependencies are built.
