file(REMOVE_RECURSE
  "libgrophecy_core.a"
)
