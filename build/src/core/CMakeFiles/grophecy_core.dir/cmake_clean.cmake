file(REMOVE_RECURSE
  "CMakeFiles/grophecy_core.dir/experiment.cpp.o"
  "CMakeFiles/grophecy_core.dir/experiment.cpp.o.d"
  "CMakeFiles/grophecy_core.dir/grophecy.cpp.o"
  "CMakeFiles/grophecy_core.dir/grophecy.cpp.o.d"
  "CMakeFiles/grophecy_core.dir/memory_advisor.cpp.o"
  "CMakeFiles/grophecy_core.dir/memory_advisor.cpp.o.d"
  "CMakeFiles/grophecy_core.dir/overlap.cpp.o"
  "CMakeFiles/grophecy_core.dir/overlap.cpp.o.d"
  "CMakeFiles/grophecy_core.dir/report.cpp.o"
  "CMakeFiles/grophecy_core.dir/report.cpp.o.d"
  "CMakeFiles/grophecy_core.dir/sensitivity.cpp.o"
  "CMakeFiles/grophecy_core.dir/sensitivity.cpp.o.d"
  "libgrophecy_core.a"
  "libgrophecy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
