
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/transfer_plan.cpp" "src/dataflow/CMakeFiles/grophecy_dataflow.dir/transfer_plan.cpp.o" "gcc" "src/dataflow/CMakeFiles/grophecy_dataflow.dir/transfer_plan.cpp.o.d"
  "/root/repo/src/dataflow/usage_analyzer.cpp" "src/dataflow/CMakeFiles/grophecy_dataflow.dir/usage_analyzer.cpp.o" "gcc" "src/dataflow/CMakeFiles/grophecy_dataflow.dir/usage_analyzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grophecy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/grophecy_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/grophecy_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/brs/CMakeFiles/grophecy_brs.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/grophecy_pcie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
