# Empty dependencies file for grophecy_dataflow.
# This may be replaced when dependencies are built.
