file(REMOVE_RECURSE
  "libgrophecy_dataflow.a"
)
