file(REMOVE_RECURSE
  "CMakeFiles/grophecy_dataflow.dir/transfer_plan.cpp.o"
  "CMakeFiles/grophecy_dataflow.dir/transfer_plan.cpp.o.d"
  "CMakeFiles/grophecy_dataflow.dir/usage_analyzer.cpp.o"
  "CMakeFiles/grophecy_dataflow.dir/usage_analyzer.cpp.o.d"
  "libgrophecy_dataflow.a"
  "libgrophecy_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
