
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/brs/extract.cpp" "src/brs/CMakeFiles/grophecy_brs.dir/extract.cpp.o" "gcc" "src/brs/CMakeFiles/grophecy_brs.dir/extract.cpp.o.d"
  "/root/repo/src/brs/footprint.cpp" "src/brs/CMakeFiles/grophecy_brs.dir/footprint.cpp.o" "gcc" "src/brs/CMakeFiles/grophecy_brs.dir/footprint.cpp.o.d"
  "/root/repo/src/brs/section.cpp" "src/brs/CMakeFiles/grophecy_brs.dir/section.cpp.o" "gcc" "src/brs/CMakeFiles/grophecy_brs.dir/section.cpp.o.d"
  "/root/repo/src/brs/section_set.cpp" "src/brs/CMakeFiles/grophecy_brs.dir/section_set.cpp.o" "gcc" "src/brs/CMakeFiles/grophecy_brs.dir/section_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/grophecy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/grophecy_skeleton.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
