file(REMOVE_RECURSE
  "CMakeFiles/grophecy_brs.dir/extract.cpp.o"
  "CMakeFiles/grophecy_brs.dir/extract.cpp.o.d"
  "CMakeFiles/grophecy_brs.dir/footprint.cpp.o"
  "CMakeFiles/grophecy_brs.dir/footprint.cpp.o.d"
  "CMakeFiles/grophecy_brs.dir/section.cpp.o"
  "CMakeFiles/grophecy_brs.dir/section.cpp.o.d"
  "CMakeFiles/grophecy_brs.dir/section_set.cpp.o"
  "CMakeFiles/grophecy_brs.dir/section_set.cpp.o.d"
  "libgrophecy_brs.a"
  "libgrophecy_brs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_brs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
