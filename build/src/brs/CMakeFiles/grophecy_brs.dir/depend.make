# Empty dependencies file for grophecy_brs.
# This may be replaced when dependencies are built.
