file(REMOVE_RECURSE
  "libgrophecy_brs.a"
)
