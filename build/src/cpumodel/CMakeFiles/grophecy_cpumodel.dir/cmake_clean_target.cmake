file(REMOVE_RECURSE
  "libgrophecy_cpumodel.a"
)
