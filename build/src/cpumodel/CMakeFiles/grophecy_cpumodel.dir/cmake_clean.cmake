file(REMOVE_RECURSE
  "CMakeFiles/grophecy_cpumodel.dir/cache_sim.cpp.o"
  "CMakeFiles/grophecy_cpumodel.dir/cache_sim.cpp.o.d"
  "CMakeFiles/grophecy_cpumodel.dir/cpu_model.cpp.o"
  "CMakeFiles/grophecy_cpumodel.dir/cpu_model.cpp.o.d"
  "CMakeFiles/grophecy_cpumodel.dir/cpu_sim.cpp.o"
  "CMakeFiles/grophecy_cpumodel.dir/cpu_sim.cpp.o.d"
  "libgrophecy_cpumodel.a"
  "libgrophecy_cpumodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grophecy_cpumodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
