# Empty compiler generated dependencies file for grophecy_cpumodel.
# This may be replaced when dependencies are built.
