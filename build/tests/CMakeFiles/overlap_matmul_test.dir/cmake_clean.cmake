file(REMOVE_RECURSE
  "CMakeFiles/overlap_matmul_test.dir/overlap_matmul_test.cpp.o"
  "CMakeFiles/overlap_matmul_test.dir/overlap_matmul_test.cpp.o.d"
  "overlap_matmul_test"
  "overlap_matmul_test.pdb"
  "overlap_matmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
