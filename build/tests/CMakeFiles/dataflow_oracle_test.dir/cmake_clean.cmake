file(REMOVE_RECURSE
  "CMakeFiles/dataflow_oracle_test.dir/dataflow_oracle_test.cpp.o"
  "CMakeFiles/dataflow_oracle_test.dir/dataflow_oracle_test.cpp.o.d"
  "dataflow_oracle_test"
  "dataflow_oracle_test.pdb"
  "dataflow_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
