# Empty dependencies file for dataflow_oracle_test.
# This may be replaced when dependencies are built.
