# Empty compiler generated dependencies file for skeleton_parse_test.
# This may be replaced when dependencies are built.
