file(REMOVE_RECURSE
  "CMakeFiles/skeleton_parse_test.dir/skeleton_parse_test.cpp.o"
  "CMakeFiles/skeleton_parse_test.dir/skeleton_parse_test.cpp.o.d"
  "skeleton_parse_test"
  "skeleton_parse_test.pdb"
  "skeleton_parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
