# Empty compiler generated dependencies file for brs_section_test.
# This may be replaced when dependencies are built.
