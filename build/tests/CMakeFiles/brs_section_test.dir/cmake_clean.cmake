file(REMOVE_RECURSE
  "CMakeFiles/brs_section_test.dir/brs_section_test.cpp.o"
  "CMakeFiles/brs_section_test.dir/brs_section_test.cpp.o.d"
  "brs_section_test"
  "brs_section_test.pdb"
  "brs_section_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brs_section_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
