# Empty compiler generated dependencies file for cpumodel_test.
# This may be replaced when dependencies are built.
