file(REMOVE_RECURSE
  "CMakeFiles/cpumodel_test.dir/cpumodel_test.cpp.o"
  "CMakeFiles/cpumodel_test.dir/cpumodel_test.cpp.o.d"
  "cpumodel_test"
  "cpumodel_test.pdb"
  "cpumodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpumodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
