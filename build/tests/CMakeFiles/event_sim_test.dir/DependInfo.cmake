
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/event_sim_test.cpp" "tests/CMakeFiles/event_sim_test.dir/event_sim_test.cpp.o" "gcc" "tests/CMakeFiles/event_sim_test.dir/event_sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capture/CMakeFiles/grophecy_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/grophecy_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/grophecy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/grophecy_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/grophecy_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/cpumodel/CMakeFiles/grophecy_cpumodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/grophecy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpumodel/CMakeFiles/grophecy_gpumodel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/grophecy_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/brs/CMakeFiles/grophecy_brs.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/grophecy_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/grophecy_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/grophecy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
