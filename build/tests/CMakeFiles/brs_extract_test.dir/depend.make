# Empty dependencies file for brs_extract_test.
# This may be replaced when dependencies are built.
