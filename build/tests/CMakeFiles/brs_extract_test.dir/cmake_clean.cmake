file(REMOVE_RECURSE
  "CMakeFiles/brs_extract_test.dir/brs_extract_test.cpp.o"
  "CMakeFiles/brs_extract_test.dir/brs_extract_test.cpp.o.d"
  "brs_extract_test"
  "brs_extract_test.pdb"
  "brs_extract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brs_extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
