file(REMOVE_RECURSE
  "CMakeFiles/machine_file_test.dir/machine_file_test.cpp.o"
  "CMakeFiles/machine_file_test.dir/machine_file_test.cpp.o.d"
  "machine_file_test"
  "machine_file_test.pdb"
  "machine_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
