file(REMOVE_RECURSE
  "CMakeFiles/brs_subtract_test.dir/brs_subtract_test.cpp.o"
  "CMakeFiles/brs_subtract_test.dir/brs_subtract_test.cpp.o.d"
  "brs_subtract_test"
  "brs_subtract_test.pdb"
  "brs_subtract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brs_subtract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
