# Empty compiler generated dependencies file for brs_subtract_test.
# This may be replaced when dependencies are built.
