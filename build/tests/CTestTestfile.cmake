# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/skeleton_test[1]_include.cmake")
include("/root/repo/build/tests/brs_section_test[1]_include.cmake")
include("/root/repo/build/tests/brs_extract_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/pcie_test[1]_include.cmake")
include("/root/repo/build/tests/gpumodel_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cpumodel_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/skeleton_parse_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/overlap_matmul_test[1]_include.cmake")
include("/root/repo/build/tests/ascii_chart_test[1]_include.cmake")
include("/root/repo/build/tests/event_sim_test[1]_include.cmake")
include("/root/repo/build/tests/model_property_test[1]_include.cmake")
include("/root/repo/build/tests/brs_subtract_test[1]_include.cmake")
include("/root/repo/build/tests/capture_test[1]_include.cmake")
include("/root/repo/build/tests/machine_file_test[1]_include.cmake")
include("/root/repo/build/tests/sensitivity_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/cache_sim_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
