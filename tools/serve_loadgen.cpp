// Load generator for the projection daemon (tools/serve_daemon.cpp).
//
//   serve_loadgen --socket /tmp/grophecy.sock [--requests N]
//                 [--connections C] [--deadline-ms D] [--iterations I]
//                 [--burst] [--shutdown]
//
// Closed loop by default: C connections each send request -> await reply
// in lockstep, measuring per-request latency (p50/p99). With --burst the
// loop opens: every connection pipelines its whole share before reading
// replies — the shape that drives the daemon's admission control and
// makes it shed.
//
// Exits 0 iff every request got exactly one reply (shed and timeout
// replies count: they are the daemon *working*; a missing reply or a
// dropped connection is the failure mode this tool exists to catch).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/socket_server.h"
#include "util/jsonl.h"
#include "workloads/workload.h"

namespace {

using grophecy::serve::Client;

struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t replies = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t timeout = 0;
  std::uint64_t usage = 0;
  std::uint64_t parse = 0;
  std::uint64_t other_error = 0;
  std::uint64_t transport_failures = 0;
  std::vector<double> latencies_ms;  ///< Closed loop only.
};

void classify(const std::string& reply, Tally& tally) {
  ++tally.replies;
  const auto object = grophecy::util::parse_flat_json(reply);
  if (!object) {
    ++tally.other_error;
    return;
  }
  const auto status = grophecy::util::json_string(*object, "status");
  if (status && *status == "ok") {
    ++tally.ok;
    if (grophecy::util::json_bool(*object, "degraded").value_or(false))
      ++tally.degraded;
    return;
  }
  const auto error = grophecy::util::json_string(*object, "error");
  if (!error) {
    ++tally.other_error;
  } else if (*error == "overloaded") {
    ++tally.overloaded;
  } else if (*error == "timeout") {
    ++tally.timeout;
  } else if (*error == "usage") {
    ++tally.usage;
  } else if (*error == "parse") {
    ++tally.parse;
  } else {
    ++tally.other_error;
  }
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

[[noreturn]] void usage_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--requests N] [--connections C]\n"
               "          [--deadline-ms D] [--iterations I] [--burst]\n"
               "          [--shutdown]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grophecy;
  using Clock = std::chrono::steady_clock;

  std::string socket_path;
  long total_requests = 1000;
  int connections = 8;
  double deadline_ms = 0.0;
  int iterations = 1;
  bool burst = false;
  bool send_shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--socket" && value) {
      socket_path = value;
      ++i;
    } else if (flag == "--requests" && value) {
      total_requests = std::strtol(value, nullptr, 10);
      ++i;
    } else if (flag == "--connections" && value) {
      connections = static_cast<int>(std::strtol(value, nullptr, 10));
      ++i;
    } else if (flag == "--deadline-ms" && value) {
      deadline_ms = std::strtod(value, nullptr);
      ++i;
    } else if (flag == "--iterations" && value) {
      iterations = static_cast<int>(std::strtol(value, nullptr, 10));
      ++i;
    } else if (flag == "--burst") {
      burst = true;
    } else if (flag == "--shutdown") {
      send_shutdown = true;
    } else {
      usage_exit(argv[0]);
    }
  }
  if (socket_path.empty() || total_requests < 1 || connections < 1)
    usage_exit(argv[0]);

  // The request mix cycles through the paper grid so the daemon's caches
  // and coalescing see realistic repetition.
  std::vector<std::pair<std::string, std::string>> grid;
  for (const auto& workload : workloads::PaperSuite::instance().all())
    for (const workloads::DataSize& size : workload->paper_data_sizes())
      grid.emplace_back(workload->name(), size.label);

  const auto make_request = [&](long index) {
    const auto& [workload, size] = grid[static_cast<std::size_t>(index) %
                                        grid.size()];
    util::FlatJson request;
    request.emplace_back("id", std::to_string(index));
    request.emplace_back("type", std::string("project"));
    request.emplace_back("workload", workload);
    request.emplace_back("size", size);
    request.emplace_back("iterations", static_cast<double>(iterations));
    if (deadline_ms > 0.0) request.emplace_back("deadline_ms", deadline_ms);
    return util::write_flat_json(request);
  };

  std::mutex tally_mutex;
  Tally total;
  std::atomic<long> next_index{0};
  const auto wall_start = Clock::now();

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    pool.emplace_back([&] {
      Tally local;
      Client client;
      if (!client.connect(socket_path)) {
        std::lock_guard<std::mutex> lock(tally_mutex);
        ++total.transport_failures;
        return;
      }
      if (burst) {
        // Open loop: pipeline the whole share, then drain the replies.
        long mine = 0;
        for (long index = next_index.fetch_add(1);
             index < total_requests; index = next_index.fetch_add(1)) {
          if (!client.send_line(make_request(index))) {
            ++local.transport_failures;
            break;
          }
          ++local.sent;
          ++mine;
        }
        std::string reply;
        for (long r = 0; r < mine; ++r) {
          if (!client.recv_line(&reply)) {
            ++local.transport_failures;
            break;
          }
          classify(reply, local);
        }
      } else {
        for (long index = next_index.fetch_add(1);
             index < total_requests; index = next_index.fetch_add(1)) {
          const auto start = Clock::now();
          if (!client.send_line(make_request(index))) {
            ++local.transport_failures;
            break;
          }
          ++local.sent;
          std::string reply;
          if (!client.recv_line(&reply)) {
            ++local.transport_failures;
            break;
          }
          classify(reply, local);
          local.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count());
        }
      }
      std::lock_guard<std::mutex> lock(tally_mutex);
      total.sent += local.sent;
      total.replies += local.replies;
      total.ok += local.ok;
      total.degraded += local.degraded;
      total.overloaded += local.overloaded;
      total.timeout += local.timeout;
      total.usage += local.usage;
      total.parse += local.parse;
      total.other_error += local.other_error;
      total.transport_failures += local.transport_failures;
      total.latencies_ms.insert(total.latencies_ms.end(),
                                local.latencies_ms.begin(),
                                local.latencies_ms.end());
    });
  }
  for (std::thread& thread : pool) thread.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  if (send_shutdown) {
    Client client;
    if (client.connect(socket_path))
      client.request("{\"id\":\"loadgen\",\"type\":\"shutdown\"}");
  }

  std::printf("sent            %llu\n",
              static_cast<unsigned long long>(total.sent));
  std::printf("replies         %llu\n",
              static_cast<unsigned long long>(total.replies));
  std::printf("ok              %llu (degraded %llu)\n",
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.degraded));
  std::printf("overloaded      %llu\n",
              static_cast<unsigned long long>(total.overloaded));
  std::printf("timeout         %llu\n",
              static_cast<unsigned long long>(total.timeout));
  std::printf("usage/parse     %llu/%llu\n",
              static_cast<unsigned long long>(total.usage),
              static_cast<unsigned long long>(total.parse));
  std::printf("other errors    %llu\n",
              static_cast<unsigned long long>(total.other_error));
  std::printf("transport fails %llu\n",
              static_cast<unsigned long long>(total.transport_failures));
  if (!total.latencies_ms.empty()) {
    std::printf("p50 latency     %.3f ms\n",
                percentile(total.latencies_ms, 0.50));
    std::printf("p99 latency     %.3f ms\n",
                percentile(total.latencies_ms, 0.99));
  }
  std::printf("wall            %.3f s (%.0f req/s)\n", wall_s,
              wall_s > 0.0 ? static_cast<double>(total.replies) / wall_s
                           : 0.0);

  const bool complete = total.transport_failures == 0 &&
                        total.replies == total.sent &&
                        total.sent ==
                            static_cast<std::uint64_t>(total_requests);
  if (!complete)
    std::fprintf(stderr,
                 "serve_loadgen: FAIL — not every request got a reply\n");
  return complete ? 0 : 1;
}
