// Process-sharded sweep runner.
//
//   sweep_shard --journal /tmp/sweep.jsonl --shards 4
//               [--workloads CFD,SRAD] [--sizes all|97K,193K]
//               [--iterations 1,8] [--workers N] [--seed S]
//               [--max-retries N] [--heartbeat-timeout SECONDS]
//               [--poison-threshold N] [--no-resume] [--no-wall-time]
//
// Expands the (workloads x sizes x iterations) grid of the paper suite
// against hw::anl_eureka() and runs it through the sweep engine. With
// --shards N > 0 the jobs execute in N forked worker processes under the
// shard supervisor (exec/shard/supervisor.h): any worker may be SIGKILLed
// mid-job and the sweep still completes, with the canonical journal
// byte-identical (--no-wall-time) to a single-process run of the same
// grid. With --shards 0 it is the ordinary in-process engine — which is
// exactly what the shard smoke test byte-compares against.
//
// Exit status: 0 when every job succeeded (or resumed), 1 when any job
// failed permanently, 2 for bad usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/sweep.h"
#include "exec/sweep_request.h"
#include "hw/registry.h"
#include "util/error.h"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string part =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--journal PATH] [--shards N] [--workers N]\n"
      "          [--workloads A,B,...] [--sizes all|L1,L2,...]\n"
      "          [--iterations N1,N2,...] [--seed S] [--max-retries N]\n"
      "          [--heartbeat-timeout SECONDS] [--poison-threshold N]\n"
      "          [--no-resume] [--no-wall-time]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grophecy;

  std::vector<std::string> workload_names = {"CFD", "HotSpot", "SRAD",
                                             "Stassuij"};
  std::vector<std::string> size_labels;  // Empty = all paper sizes.
  std::vector<int> iteration_counts = {1};
  std::uint64_t seed = 0;
  bool seed_set = false;

  exec::SweepOptions options;
  options.workers = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--journal") {
      options.journal_path = value();
    } else if (arg == "--shards") {
      options.shards = std::atoi(value());
    } else if (arg == "--workers") {
      options.workers = std::atoi(value());
    } else if (arg == "--workloads") {
      workload_names = split_csv(value());
    } else if (arg == "--sizes") {
      const std::string labels = value();
      size_labels = labels == "all" ? std::vector<std::string>{}
                                    : split_csv(labels);
    } else if (arg == "--iterations") {
      iteration_counts.clear();
      for (const std::string& count : split_csv(value()))
        iteration_counts.push_back(std::atoi(count.c_str()));
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 0);
      seed_set = true;
    } else if (arg == "--max-retries") {
      options.max_retries = std::atoi(value());
    } else if (arg == "--heartbeat-timeout") {
      options.heartbeat_timeout_s = std::atof(value());
    } else if (arg == "--poison-threshold") {
      options.poison_kill_threshold = std::atoi(value());
    } else if (arg == "--no-resume") {
      options.resume = false;
    } else if (arg == "--no-wall-time") {
      options.record_wall_time = false;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }

  try {
    exec::SweepRequest request = exec::SweepRequest::on(hw::anl_eureka())
                                     .workloads(workload_names)
                                     .iterations(iteration_counts);
    if (size_labels.empty())
      request.sizes(exec::all_sizes);
    else
      request.sizes(size_labels);
    if (seed_set) request.seed(seed);

    exec::SweepEngine engine(options);
    const exec::SweepSummary summary = request.run(engine);
    std::fputs(summary.describe().c_str(), stdout);
    return summary.failed > 0 ? 1 : 0;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: fatal: %s\n", argv[0], e.what());
    return 1;
  }
}
