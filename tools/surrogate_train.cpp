// surrogate_train — fit and evaluate a surrogate model from a sweep journal.
//
// Harvests a crash-safe sweep journal (exec/journal.h) into training
// samples (surrogate/harvest.h), holds out a deterministic fraction,
// fits the closed-form ridge model, and prints per-target held-out
// relative-error quantiles plus the distance-bucket uncertainty table.
// The exit status gates nothing — this is the operator's offline view of
// what the serve daemon's self-distilling tier would learn from a past
// campaign.
//
//   ./build/tools/surrogate_train --journal sweep.jsonl
//       [--machine NAME]      resolve records with no machine field
//                             (default: anl_eureka, the paper testbed)
//       [--holdout FRACTION]  held-out share, default 0.25
//       [--lambda L]          ridge strength, default 1e-4
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "hw/machine_registry.h"
#include "hw/registry.h"
#include "surrogate/harvest.h"
#include "surrogate/model.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --journal PATH [--machine NAME] "
               "[--holdout FRACTION] [--lambda L]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grophecy;

  std::string journal;
  std::string machine_name;
  double holdout = 0.25;
  double lambda = 1e-4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal = argv[++i];
    } else if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      machine_name = argv[++i];
    } else if (std::strcmp(argv[i], "--holdout") == 0 && i + 1 < argc) {
      holdout = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--lambda") == 0 && i + 1 < argc) {
      lambda = std::atof(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (journal.empty() || holdout < 0.0 || holdout >= 1.0 || lambda <= 0.0)
    return usage(argv[0]);

  try {
    const hw::MachineSpec default_machine =
        machine_name.empty() ? hw::anl_eureka()
                             : hw::MachineRegistry::global().find(machine_name);

    const surrogate::HarvestResult harvest =
        surrogate::harvest_journal(journal, default_machine);
    std::printf(
        "harvested %zu samples from %s (skipped: %d failed, %d unknown, "
        "%d unparsed; %d corrupt lines)\n",
        harvest.samples.size(), journal.c_str(), harvest.skipped_failed,
        harvest.skipped_unknown, harvest.skipped_unparsed,
        harvest.corrupt_lines);
    if (harvest.samples.size() < 4) {
      std::fprintf(stderr,
                   "FAIL: need at least 4 samples to fit and hold out\n");
      return 1;
    }

    // Deterministic split: every k-th sample is held out, so reruns of
    // the same journal score the same model.
    std::vector<surrogate::TrainingSample> train;
    std::vector<surrogate::TrainingSample> held;
    const std::size_t stride =
        holdout > 0.0
            ? std::max<std::size_t>(2, static_cast<std::size_t>(
                                           std::llround(1.0 / holdout)))
            : harvest.samples.size() + 1;
    for (std::size_t i = 0; i < harvest.samples.size(); ++i) {
      if (i % stride == stride - 1)
        held.push_back(harvest.samples[i]);
      else
        train.push_back(harvest.samples[i]);
    }
    const surrogate::SurrogateModel model =
        surrogate::SurrogateModel::fit(train, lambda);
    std::printf("fit on %d samples (lambda %g): in-sample rel error "
                "p50 %.3f%%  p95 %.3f%%\n",
                model.train_count(), lambda, model.rel_error_p50() * 100.0,
                model.rel_error_p95() * 100.0);

    util::TextTable buckets({"bucket", "nn-distance <=", "rel-error p95"});
    for (int b = 0; b < surrogate::SurrogateModel::kBuckets; ++b)
      buckets.add_row({util::strfmt("%d", b),
                       util::strfmt("%.4f", model.bucket_edge(b)),
                       util::strfmt("%.3f%%", model.bucket_bound(b) * 100.0)});
    std::printf("%s", buckets.to_string().c_str());

    if (!held.empty()) {
      static const char* const kTargets[surrogate::kTargetCount] = {
          "predicted_kernel_s", "predicted_transfer_s", "measured_kernel_s",
          "measured_transfer_s", "measured_cpu_s"};
      util::TextTable table({"target", "held-out p50", "p95", "max"});
      for (int t = 0; t < surrogate::kTargetCount; ++t) {
        std::vector<double> errors;
        errors.reserve(held.size());
        for (const surrogate::TrainingSample& sample : held) {
          const surrogate::Prediction prediction =
              model.predict(sample.features);
          const double truth =
              sample.targets.values[static_cast<std::size_t>(t)];
          errors.push_back(
              std::abs(prediction.targets.values[static_cast<std::size_t>(t)] -
                       truth) /
              std::max(truth, 1e-12));
        }
        table.add_row(
            {kTargets[t],
             util::strfmt("%.3f%%", util::percentile(errors, 50.0) * 100.0),
             util::strfmt("%.3f%%", util::percentile(errors, 95.0) * 100.0),
             util::strfmt("%.3f%%", util::max_value(errors) * 100.0)});
      }
      std::printf("held out %zu samples:\n%s", held.size(),
                  table.to_string().c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "FAIL: %s\n", error.what());
    return 1;
  }
  return 0;
}
