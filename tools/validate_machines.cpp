// validate_machines — load and validate the whole machine registry.
//
// scripts/verify.sh runs this as the registry-validation step: it forces
// construction of hw::MachineRegistry::global() (builtins + every shipped
// .gmach + GROPHECY_MACHINE_PATH), which re-validates every spec, then
// checks the fleet-level invariants the cross-machine acceptance relies
// on: at least 8 machines, unique names (the registry enforces this), and
// PCIe generation coverage from gen1 through gen5. Any drift — a
// malformed shipped spec, a renamed machine, a lost generation — fails
// loudly with the offending detail.
//
//   ./build/tools/validate_machines [--min-machines N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <set>

#include "hw/architecture.h"
#include "hw/machine_registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace grophecy;

  int min_machines = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-machines") == 0 && i + 1 < argc) {
      min_machines = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--min-machines N]\n", argv[0]);
      return 2;
    }
  }

  const hw::MachineRegistry* registry = nullptr;
  try {
    registry = &hw::MachineRegistry::global();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "FAIL: registry did not load: %s\n", error.what());
    return 1;
  }

  util::TextTable table(
      {"machine", "family", "gpu", "pcie", "link GB/s", "pinned h2d GB/s"});
  std::set<int> generations;
  for (const auto& machine : registry->machines()) {
    generations.insert(machine->pcie.generation);
    table.add_row({machine->name, machine->gpu.family, machine->gpu.name,
                   util::strfmt("gen%d x%d", machine->pcie.generation,
                                machine->pcie.lanes),
                   util::strfmt("%.1f", machine->pcie.peak_gbps()),
                   util::strfmt("%.1f",
                                machine->pcie.pinned_h2d.asymptotic_gbps)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("%zu machines, %zu architecture families registered\n",
              registry->size(), hw::Architecture::families().size());

  bool ok = true;
  if (registry->size() < static_cast<std::size_t>(min_machines)) {
    std::fprintf(stderr, "FAIL: %zu machines registered, need >= %d\n",
                 registry->size(), min_machines);
    ok = false;
  }
  for (int generation = 1; generation <= 5; ++generation) {
    if (generations.count(generation) == 0) {
      std::fprintf(stderr,
                   "FAIL: no registered machine has a PCIe gen%d bus "
                   "(the fleet must span gen1-gen5)\n",
                   generation);
      ok = false;
    }
  }
  if (ok) std::printf("registry OK\n");
  return ok ? 0 : 1;
}
