// The projection daemon binary: serve::Daemon + serve::SocketServer on an
// AF_UNIX socket. See docs/serving.md for the protocol and the robustness
// policy; tools/serve_loadgen.cpp is the matching load generator.
//
//   serve_daemon --socket /tmp/grophecy.sock [--workers N]
//                [--queue-depth N] [--default-deadline-ms D]
//                [--max-deadline-ms D] [--max-retries N] [--seed S]
//                [--surrogate] [--surrogate-max-rel-error E]
//                [--surrogate-min-train-points N]
//
// --surrogate enables the learned fast tier (docs/performance.md,
// "Surrogate fast tier"): confident repeat queries are answered inline
// with tier:"surrogate" and an error bound; everything else runs the
// exact pipeline and feeds the training pool.
//
// Runs until a client sends {"type":"shutdown"} or the process receives
// SIGINT/SIGTERM; either way the daemon drains before exiting.

#include <time.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/daemon.h"
#include "serve/socket_server.h"
#include "util/error.h"

namespace {

// Signal handlers can only touch lock-free state; the main thread polls.
volatile std::sig_atomic_t g_signal_quit = 0;

void handle_signal(int) { g_signal_quit = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workers N] [--queue-depth N]\n"
               "          [--default-deadline-ms D] [--max-deadline-ms D]\n"
               "          [--max-retries N] [--seed S] [--surrogate]\n"
               "          [--surrogate-max-rel-error E]\n"
               "          [--surrogate-min-train-points N]\n",
               argv0);
  std::exit(2);
}

double parse_double(const char* argv0, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || value < 0.0) usage(argv0);
  return value;
}

long parse_long(const char* argv0, const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) usage(argv0);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace grophecy;

  std::string socket_path;
  serve::DaemonOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--socket" && value) {
      socket_path = value;
      ++i;
    } else if (flag == "--workers" && value) {
      options.workers = static_cast<int>(parse_long(argv[0], value));
      ++i;
    } else if (flag == "--queue-depth" && value) {
      options.max_queue_depth =
          static_cast<std::size_t>(parse_long(argv[0], value));
      ++i;
    } else if (flag == "--default-deadline-ms" && value) {
      options.default_deadline_s = parse_double(argv[0], value) * 1e-3;
      ++i;
    } else if (flag == "--max-deadline-ms" && value) {
      options.max_deadline_s = parse_double(argv[0], value) * 1e-3;
      ++i;
    } else if (flag == "--max-retries" && value) {
      options.max_retries = static_cast<int>(parse_long(argv[0], value));
      ++i;
    } else if (flag == "--seed" && value) {
      options.base_seed =
          static_cast<std::uint64_t>(parse_long(argv[0], value));
      ++i;
    } else if (flag == "--surrogate") {
      options.projection.surrogate.enabled = true;
    } else if (flag == "--surrogate-max-rel-error" && value) {
      options.projection.surrogate.max_rel_error =
          parse_double(argv[0], value);
      ++i;
    } else if (flag == "--surrogate-min-train-points" && value) {
      options.projection.surrogate.min_train_points =
          static_cast<int>(parse_long(argv[0], value));
      ++i;
    } else {
      usage(argv[0]);
    }
  }
  if (socket_path.empty()) usage(argv[0]);

  // A client "shutdown" request and a POSIX signal exit the same way.
  options.on_shutdown_request = [] { g_signal_quit = 1; };
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    serve::Daemon daemon(std::move(options));
    daemon.start();
    serve::SocketServer server(daemon,
                               {.socket_path = socket_path});
    server.start();
    std::fprintf(stderr, "serve_daemon: listening on %s (%d workers, "
                         "queue bound %zu)\n",
                 socket_path.c_str(), daemon.options().workers,
                 daemon.options().max_queue_depth);
    while (g_signal_quit == 0) {
      struct timespec nap {0, 50'000'000};  // 50 ms poll for the flag
      nanosleep(&nap, nullptr);
    }
    std::fprintf(stderr, "serve_daemon: draining\n");
    server.stop();
    daemon.shutdown(/*drain=*/true);
  } catch (const Error& error) {
    std::fprintf(stderr, "serve_daemon: %s\n", error.what());
    return 1;
  }
  return 0;
}
