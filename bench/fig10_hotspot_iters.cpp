// Reproduces Figure 10: measured and predicted GPU speedup of HotSpot as a
// function of iteration count for a 1024 x 1024 grid. The paper reports
// the transfer-aware prediction stays more than twice as accurate through
// ~70 iterations and both predictions converge to a 1.9% limit error.
#include "sweep_common.h"

int main() {
  grophecy::bench::print_iteration_sweep("HotSpot", "1024 x 1024",
                                         "Figure 10", 1.9);
  return 0;
}
