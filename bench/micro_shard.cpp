// micro_shard — process-sharding overhead and recovery-time gate.
//
// Measures what SweepOptions::shards costs when nothing goes wrong, and
// what a worker death costs when something does, emitting a
// machine-readable BENCH_shard.json for scripts/bench_compare (the CI
// perf-smoke gate):
//
//   clean/overhead   the same job grid run on the in-process thread pool
//                    and again forked across the same number of worker
//                    shards. Gates the wall-clock ratio: fork + pipe
//                    framing + per-shard journal-less dispatch must stay
//                    within max_overhead_factor of threads. Catches an
//                    accidentally chatty protocol or a supervisor poll
//                    loop that spins.
//   recovery/kills   the same sharded grid with a scripted set of jobs
//                    that SIGKILL their worker exactly once. Gates that
//                    every job still completes (ok_rate == 1, the whole
//                    point of the subsystem), that the death/respawn
//                    accounting matches the script, and that the added
//                    wall clock per death stays under an absolute
//                    ceiling — death detection is poll-driven, so a
//                    regression here means the supervisor only notices
//                    corpses on some slow timeout path.
//
//   ./build/bench/micro_shard [--out FILE] [--quick]
//
// The job function is deterministic busy-work (calibrated per process,
// inherited by forked workers), so the bench measures the sharding
// machinery, not the projection pipeline. The overhead gate is a ratio —
// machine-portable — while the recovery ceiling is absolute and set an
// order of magnitude above healthy numbers: it catches a supervisor that
// lost its waitpid/heartbeat edge, not a slow machine.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "exec/sweep.h"

namespace {

using grophecy::exec::JobSpec;
using grophecy::exec::SweepEngine;
using grophecy::exec::SweepOptions;
using grophecy::exec::SweepSummary;
using Clock = std::chrono::steady_clock;

constexpr int kShards = 4;

/// Deterministic busy-work standing in for a projection: hash-mixes for
/// roughly `cost_us` microseconds of CPU. Calibrated once in the parent;
/// forked workers inherit the calibration, so every process burns the
/// same number of rounds per job.
class StubWork {
 public:
  explicit StubWork(double cost_us) {
    const auto start = Clock::now();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    std::uint64_t rounds = 0;
    while (std::chrono::duration<double, std::micro>(Clock::now() - start)
               .count() < 1000.0) {
      for (int i = 0; i < 1024; ++i) h = (h ^ rounds) * 0x100000001b3ULL;
      ++rounds;
    }
    cost_rounds_ = static_cast<std::uint64_t>(
        cost_us * static_cast<double>(std::max<std::uint64_t>(1, rounds)) /
        1000.0);
  }

  grophecy::core::ProjectionReport operator()(const JobSpec& spec) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    // Same 1024-hash blocks the calibration loop counted.
    for (std::uint64_t r = 0; r < cost_rounds_; ++r)
      for (int i = 0; i < 1024; ++i) h = (h ^ r) * 0x100000001b3ULL;
    grophecy::core::ProjectionReport report;
    report.app_name = spec.workload;
    report.machine_name = "stub";
    report.iterations = spec.iterations;
    report.predicted_kernel_s = 1e-3 + 1e-12 * static_cast<double>(h & 0xff);
    report.measured_kernel_s = 1.1e-3;
    report.predicted_transfer_s = 2e-3;
    report.measured_transfer_s = 2.1e-3;
    report.measured_cpu_s = 0.5;
    return report;
  }

 private:
  std::uint64_t cost_rounds_ = 0;
};

struct Entry {
  std::string name;
  std::int64_t jobs = 0;
  double throughput = 0.0;  ///< Sharded jobs per wall second.
  double wall_s = 0.0;
  double ok_rate = 0.0;     ///< Gate: must be exactly 1.0.
  std::int64_t deaths = 0;
  std::int64_t expected_deaths = 0;  ///< Gate: deaths must match.
  std::int64_t respawns = 0;
  double overhead_factor = 0.0;      ///< Sharded wall / in-process wall.
  double max_overhead_factor = 0.0;  ///< Gate when > 0.
  double recovery_s_per_death = 0.0;
  double max_recovery_s_per_death = 0.0;  ///< Gate when > 0.
};

std::vector<JobSpec> grid(int jobs) {
  std::vector<JobSpec> specs;
  for (int i = 0; i < jobs; ++i)
    specs.push_back({"W", "size" + std::to_string(i), 1});
  return specs;
}

/// Runs the grid and returns (summary, wall seconds).
template <typename Fn>
SweepSummary timed_run(const SweepOptions& options,
                       const std::vector<JobSpec>& jobs, const Fn& fn,
                       double& wall_s) {
  SweepEngine engine(options);
  const auto start = Clock::now();
  SweepSummary summary = engine.run(jobs, fn);
  wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  return summary;
}

void print_entry(const Entry& e) {
  std::printf("%-16s %6lld jobs %9.0f/s  wall %7.3f s  ok %5.1f%%  "
              "deaths %lld  overhead %.2fx  recovery %.4f s/death\n",
              e.name.c_str(), static_cast<long long>(e.jobs), e.throughput,
              e.wall_s, e.ok_rate * 100.0, static_cast<long long>(e.deaths),
              e.overhead_factor, e.recovery_s_per_death);
}

Entry bench_clean_overhead(int jobs, double cost_us) {
  const std::vector<JobSpec> specs = grid(jobs);
  const StubWork work(cost_us);

  SweepOptions in_process;
  in_process.workers = kShards;  // Same parallelism on both sides.
  double in_process_s = 0.0;
  const SweepSummary thread_summary =
      timed_run(in_process, specs, work, in_process_s);

  SweepOptions sharded;
  sharded.shards = kShards;
  double sharded_s = 0.0;
  const SweepSummary shard_summary =
      timed_run(sharded, specs, work, sharded_s);

  Entry entry;
  entry.name = "clean/overhead";
  entry.jobs = jobs;
  entry.wall_s = sharded_s;
  entry.throughput =
      sharded_s > 0.0 ? static_cast<double>(jobs) / sharded_s : 0.0;
  entry.ok_rate = thread_summary.ok == jobs && shard_summary.failed == 0
                      ? static_cast<double>(shard_summary.ok) /
                            static_cast<double>(jobs)
                      : 0.0;
  entry.deaths = shard_summary.worker_deaths;
  entry.expected_deaths = 0;
  entry.respawns = shard_summary.worker_respawns;
  entry.overhead_factor =
      in_process_s > 0.0 ? sharded_s / in_process_s : 0.0;
  // Forking 4 workers and framing every job over a pipe may cost real
  // time, but it must stay the same order of magnitude as threads.
  entry.max_overhead_factor = 5.0;
  return entry;
}

Entry bench_recovery_kills(int jobs, int kills, double cost_us) {
  const std::vector<JobSpec> specs = grid(jobs);
  const StubWork work(cost_us);
  namespace fs = std::filesystem;
  const std::string marker_base =
      (fs::temp_directory_path() /
       ("grophecy_micro_shard_" + std::to_string(::getpid())))
          .string();
  // Every kills-th job SIGKILLs its worker on first execution; the
  // marker file (worker and supervisor share the filesystem) makes the
  // re-run succeed.
  const int stride = jobs / kills;
  const auto chaotic = [&](const JobSpec& spec) {
    const int index = std::atoi(spec.size_label.c_str() + 4);
    if (index % stride == 0 && index / stride < kills) {
      const std::string marker = marker_base + "." + spec.fingerprint();
      if (::access(marker.c_str(), F_OK) != 0) {
        std::FILE* file = std::fopen(marker.c_str(), "w");
        if (file) std::fclose(file);
        ::raise(SIGKILL);
      }
    }
    return work(spec);
  };

  SweepOptions options;
  options.shards = kShards;
  double clean_s = 0.0;
  timed_run(options, specs, work, clean_s);  // Unfaulted reference.
  double faulted_s = 0.0;
  const SweepSummary summary = timed_run(options, specs, chaotic, faulted_s);
  for (const JobSpec& spec : specs)
    std::remove((marker_base + "." + spec.fingerprint()).c_str());

  Entry entry;
  entry.name = "recovery/kills";
  entry.jobs = jobs;
  entry.wall_s = faulted_s;
  entry.throughput =
      faulted_s > 0.0 ? static_cast<double>(jobs) / faulted_s : 0.0;
  entry.ok_rate = summary.failed == 0
                      ? static_cast<double>(summary.ok) /
                            static_cast<double>(jobs)
                      : 0.0;
  entry.deaths = summary.worker_deaths;
  entry.expected_deaths = kills;
  entry.respawns = summary.worker_respawns;
  entry.recovery_s_per_death =
      std::max(0.0, faulted_s - clean_s) / static_cast<double>(kills);
  // Each death costs one poll-loop detection, one fork, one re-dispatch,
  // and one re-execution — milliseconds. A full second per death means
  // the supervisor is finding corpses by timeout instead of waitpid/EOF.
  entry.max_recovery_s_per_death = 1.0;
  return entry;
}

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"grophecy.bench_shard.v1\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"jobs\": %lld, \"throughput\": %.6g,"
        " \"wall_s\": %.6g, \"ok_rate\": %.6g, \"deaths\": %lld,"
        " \"expected_deaths\": %lld, \"respawns\": %lld,"
        " \"overhead_factor\": %.6g, \"max_overhead_factor\": %.6g,"
        " \"recovery_s_per_death\": %.6g,"
        " \"max_recovery_s_per_death\": %.6g}%s\n",
        e.name.c_str(), static_cast<long long>(e.jobs), e.throughput,
        e.wall_s, e.ok_rate, static_cast<long long>(e.deaths),
        static_cast<long long>(e.expected_deaths),
        static_cast<long long>(e.respawns), e.overhead_factor,
        e.max_overhead_factor, e.recovery_s_per_death,
        e.max_recovery_s_per_death, i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_shard.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", argv[0]);
      return 2;
    }
  }

  // Heavy enough that dispatch overhead doesn't drown the signal in
  // scheduler noise, light enough for a CI smoke (a few seconds total).
  const double cost_us = 100.0;
  const int scale = quick ? 4 : 1;

  std::vector<Entry> entries;
  entries.push_back(bench_clean_overhead(256 / scale, cost_us));
  entries.push_back(bench_recovery_kills(64 / scale, 4, cost_us));
  for (const Entry& entry : entries) print_entry(entry);

  write_json(entries, out_path);
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  // Self-gate: the same bars scripts/bench_compare enforces, so a bare
  // `./micro_shard` run fails loudly without the comparison script.
  bool ok = true;
  for (const Entry& entry : entries) {
    if (entry.ok_rate != 1.0) {
      std::fprintf(stderr, "FAIL %s: ok_rate %.6f != 1 — jobs were lost\n",
                   entry.name.c_str(), entry.ok_rate);
      ok = false;
    }
    if (entry.deaths != entry.expected_deaths) {
      std::fprintf(stderr, "FAIL %s: %lld worker deaths, scripted %lld\n",
                   entry.name.c_str(), static_cast<long long>(entry.deaths),
                   static_cast<long long>(entry.expected_deaths));
      ok = false;
    }
    if (entry.max_overhead_factor > 0.0 &&
        entry.overhead_factor > entry.max_overhead_factor) {
      std::fprintf(stderr, "FAIL %s: overhead %.2fx exceeds %.2fx\n",
                   entry.name.c_str(), entry.overhead_factor,
                   entry.max_overhead_factor);
      ok = false;
    }
    if (entry.max_recovery_s_per_death > 0.0 &&
        entry.recovery_s_per_death > entry.max_recovery_s_per_death) {
      std::fprintf(stderr,
                   "FAIL %s: recovery %.3f s/death exceeds %.3f s\n",
                   entry.name.c_str(), entry.recovery_s_per_death,
                   entry.max_recovery_s_per_death);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
