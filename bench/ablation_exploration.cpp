// Ablation: what does GROPHECY's transformation exploration buy?
//
// Projects the best achievable kernel time for each paper workload under
// progressively crippled explorers: full space, no shared-memory staging,
// single block size, and both restrictions at once. The gap justifies the
// explorer — "different transformations may result in performance that is
// orders of magnitude apart" (§II-C).
#include <cstdio>
#include <iostream>

#include <vector>

#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/matmul.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  const hw::GpuSpec gpu = hw::anl_eureka().gpu;

  gpumodel::ExplorerOptions full;
  gpumodel::ExplorerOptions no_smem = full;
  no_smem.explore_smem_staging = false;
  no_smem.seq_tile_factors.clear();
  gpumodel::ExplorerOptions one_block = full;
  one_block.block_sizes = {64};
  one_block.unroll_factors = {1};
  gpumodel::ExplorerOptions crippled = no_smem;
  crippled.block_sizes = {64};
  crippled.unroll_factors = {1};

  util::TextTable table({"Workload / kernel", "Full space",
                         "No staging/tiling", "Block=64 only", "Neither"});

  struct Subject {
    std::string name;
    skeleton::AppSkeleton app;
  };
  std::vector<Subject> subjects;
  for (const auto& workload : workloads::paper_workloads()) {
    const workloads::DataSize size = workload->paper_data_sizes().back();
    subjects.push_back({workload->name(), workload->make_skeleton(size, 1)});
  }
  // The paper's Figure 1 pedagogical example — where exploration matters
  // most: the untiled kernel is latency bound.
  subjects.push_back({"MatMul (Fig. 1)", workloads::matmul_skeleton(1024)});

  for (const Subject& subject : subjects) {
    for (const skeleton::KernelSkeleton& kernel : subject.app.kernels) {
      auto best_time = [&](const gpumodel::ExplorerOptions& options) {
        return gpumodel::Explorer(gpu, options)
            .best(subject.app, kernel)
            .time.total_s;
      };
      const double t_full = best_time(full);
      table.add_row({
          subject.name + " / " + kernel.name,
          util::format_time(t_full),
          strfmt("%.2fx", best_time(no_smem) / t_full),
          strfmt("%.2fx", best_time(one_block) / t_full),
          strfmt("%.2fx", best_time(crippled) / t_full),
      });
    }
  }

  std::printf("Ablation: projected best kernel time vs explorer "
              "restrictions\n");
  std::printf("(columns show slowdown relative to the full transformation "
              "space; §II-C: \"different transformations may result in "
              "performance\nthat is orders of magnitude apart\")\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "ablation_exploration");
  return 0;
}
