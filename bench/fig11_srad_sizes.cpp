// Reproduces Figure 11: measured and predicted GPU speedup for SRAD across a
// range of data sizes, with predictions both with and without data
// transfer time.
#include "sweep_common.h"

int main() {
  grophecy::bench::print_size_sweep("SRAD", "Figure 11");
  return 0;
}
