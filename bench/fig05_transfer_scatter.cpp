// Reproduces Figure 5: predicted versus measured transfer time for every
// individual transfer across all applications and data sizes. A perfect
// prediction falls on y = x; transfers slower than predicted fall below.
//
// The paper's outliers are reproduced: the CFD runs use a noise profile
// with the occasionally-2x-slow transfer the paper observed ("a particular
// transfer that, inexplicably, has high variability" — §V-A). The overall
// average prediction error across all transfers lands near the paper's
// 7.6%.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  util::TextTable table({"Application", "Data Size", "Transfer", "Dir",
                         "Size", "Predicted (us)", "Measured (us)",
                         "Error"});
  std::vector<double> errors;

  for (const auto& workload : workloads::paper_workloads()) {
    core::ProjectionOptions options;
    if (workload->name() == "CFD") {
      // The paper's anomalous CFD transfer: ~half the runs are >2x slower.
      hw::PcieNoiseProfile noisy = hw::anl_eureka().pcie.noise;
      noisy.outlier_probability = 0.12;
      noisy.outlier_factor = 2.3;
      options.measurement_noise = noisy;
    }
    core::ExperimentRunner runner(hw::anl_eureka(), options);
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      core::ProjectionReport report = runner.run(*workload, size);
      for (const core::TransferResult& t : report.transfers) {
        const double err =
            util::error_magnitude_percent(t.predicted_s, t.measured_s);
        errors.push_back(err);
        table.add_row({
            workload->name(),
            size.label,
            t.transfer.array_name,
            t.transfer.direction == hw::Direction::kHostToDevice ? "H2D"
                                                                 : "D2H",
            util::format_bytes(t.transfer.bytes),
            strfmt("%.1f", util::seconds_to_us(t.predicted_s)),
            strfmt("%.1f", util::seconds_to_us(t.measured_s)),
            strfmt("%.1f%%", err),
        });
      }
    }
    table.add_separator();
  }

  std::printf("Figure 5 — predicted vs measured time, every app transfer\n");
  std::printf("(CFD measured with the paper's slow-transfer outliers "
              "enabled)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "fig05_transfer_scatter");
  std::printf("\naverage prediction error across all %zu transfers: %.1f%% "
              "(paper: 7.6%%)\n",
              errors.size(), util::mean(errors));
  return 0;
}
