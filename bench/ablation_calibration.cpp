// Ablation: how sensitive is the linear transfer model to the calibration
// procedure's two knobs — the large-probe size (the paper picks 512 MB,
// footnote 5: "any size larger than a few megabytes would be sufficient")
// and the replicate count (the paper averages 10 runs)?
//
// For each configuration we calibrate, then evaluate the mean error
// magnitude over the full 1B..512MB size grid against fresh measurements.
//
// Ablation C injects the paper's §V-A anomaly (occasional 2x-slow
// transfers) into the measurement path and compares how the mean-based
// paper procedure, a median estimator, the robust pipeline (MAD rejection
// + adaptive replication), and a Theil–Sen sweep fit recover the
// noiseless ground-truth (alpha, beta).
#include <cstdio>
#include <iostream>
#include <vector>

#include "faults/fault_injector.h"
#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace {

double mean_model_error(const grophecy::pcie::BusModel& model,
                        grophecy::pcie::SimulatedBus& bus) {
  using namespace grophecy;
  std::vector<double> errors;
  for (std::uint64_t bytes = 1; bytes <= 512 * util::kMiB; bytes *= 4) {
    for (hw::Direction dir :
         {hw::Direction::kHostToDevice, hw::Direction::kDeviceToHost}) {
      const double measured =
          bus.measure_mean(bytes, dir, hw::HostMemory::kPinned, 10);
      errors.push_back(util::error_magnitude_percent(
          model.predict_seconds(bytes, dir), measured));
    }
  }
  return util::mean(errors);
}

}  // namespace

int main() {
  using namespace grophecy;
  using util::strfmt;

  const hw::MachineSpec machine = hw::anl_eureka();

  std::printf("Ablation A: large-probe size (replicates fixed at 10)\n\n");
  util::TextTable size_table({"Large probe", "Calibrated GB/s (H2D)",
                              "Mean model error"});
  for (std::uint64_t large :
       {64 * util::kKiB, util::kMiB, 8 * util::kMiB, 64 * util::kMiB,
        512 * util::kMiB}) {
    pcie::CalibrationOptions options;
    options.large_bytes = large;
    pcie::SimulatedBus calibration_bus(machine.pcie, 41);
    const pcie::BusModel model =
        pcie::TransferCalibrator(options).calibrate(calibration_bus);
    pcie::SimulatedBus eval_bus(machine.pcie, 42);
    size_table.add_row({util::format_bytes(large),
                        strfmt("%.2f", model.h2d.bandwidth_gbps()),
                        strfmt("%.2f%%", mean_model_error(model, eval_bus))});
  }
  size_table.print(std::cout);
  std::printf("\n(the paper's footnote 5 holds: anything above a few MB is "
              "sufficient; small probes absorb the mid-size non-linearity "
              "into beta and mispredict everywhere)\n\n");

  std::printf("Ablation B: replicate count (probe size fixed at 512MB)\n\n");
  util::TextTable rep_table({"Replicates", "Mean model error",
                             "Alpha spread across 8 calibrations"});
  for (int replicates : {1, 3, 10, 30}) {
    pcie::CalibrationOptions options;
    options.replicates = replicates;
    std::vector<double> alphas, errors;
    for (int trial = 0; trial < 8; ++trial) {
      pcie::SimulatedBus calibration_bus(machine.pcie, 100 + trial);
      const pcie::BusModel model =
          pcie::TransferCalibrator(options).calibrate(calibration_bus);
      alphas.push_back(model.h2d.alpha_s);
      pcie::SimulatedBus eval_bus(machine.pcie, 200 + trial);
      errors.push_back(mean_model_error(model, eval_bus));
    }
    rep_table.add_row(
        {strfmt("%d", replicates), strfmt("%.2f%%", util::mean(errors)),
         strfmt("%.1f%%", (util::max_value(alphas) - util::min_value(alphas)) /
                              util::mean(alphas) * 100.0)});
  }
  rep_table.print(std::cout);
  std::printf("\n(averaging ~10 runs, as the paper does, suppresses the "
              "alpha jitter of single-shot calibration)\n\n");

  std::printf("Ablation C: calibration under the paper's SS V-A anomaly "
              "(5%% of transfers 2x slow)\n\n");
  // Ground truth: the noiseless two-point parameters of the simulated link.
  const pcie::SimulatedBus truth_bus(machine.pcie, 0);
  const std::uint64_t large = pcie::CalibrationOptions{}.large_bytes;
  const double true_alpha = truth_bus.expected_time(
      1, hw::Direction::kHostToDevice, hw::HostMemory::kPinned);
  const double true_beta =
      truth_bus.expected_time(large, hw::Direction::kHostToDevice,
                              hw::HostMemory::kPinned) /
      static_cast<double>(large);

  struct Variant {
    const char* name;
    pcie::CalibrationOptions options;
  };
  pcie::CalibrationOptions median_options;
  median_options.estimator = pcie::ProbeEstimator::kMedian;
  pcie::CalibrationOptions theil_sen_options = pcie::CalibrationOptions::robust();
  theil_sen_options.fit = pcie::FitMethod::kTheilSen;
  const Variant variants[] = {
      {"paper (mean, two-point)", pcie::CalibrationOptions::paper()},
      {"median, two-point", median_options},
      {"robust (MAD + adaptive)", pcie::CalibrationOptions::robust()},
      {"Theil-Sen sweep", theil_sen_options},
  };

  util::TextTable fault_table({"Calibrator", "Mean alpha err", "Max alpha err",
                               "Mean beta err", "Max beta err"});
  for (const Variant& variant : variants) {
    std::vector<double> alpha_errors, beta_errors;
    for (int trial = 0; trial < 12; ++trial) {
      pcie::SimulatedBus bus(machine.pcie, 300 + trial);
      faults::FaultInjector faulty(
          bus, faults::FaultPlan::paper_outliers(0.05, 2.0, 900 + trial));
      const pcie::CalibrationReport report =
          pcie::TransferCalibrator(variant.options)
              .calibrate_robust(faulty, hw::HostMemory::kPinned,
                                &machine.pcie);
      alpha_errors.push_back(util::error_magnitude_percent(
          report.model.h2d.alpha_s, true_alpha));
      beta_errors.push_back(util::error_magnitude_percent(
          report.model.h2d.beta_s_per_byte, true_beta));
    }
    fault_table.add_row({variant.name,
                         strfmt("%.1f%%", util::mean(alpha_errors)),
                         strfmt("%.1f%%", util::max_value(alpha_errors)),
                         strfmt("%.1f%%", util::mean(beta_errors)),
                         strfmt("%.1f%%", util::max_value(beta_errors))});
  }
  fault_table.print(std::cout);
  std::printf("\n(a single 2x outlier among ten averaged runs moves the "
              "mean ~10%%; the median and the MAD-filtering pipeline shrug "
              "it off. Theil-Sen trades a worse alpha — its intercept "
              "absorbs the mid-size non-linearity — for outlier-robust "
              "slopes without designated probe sizes)\n");
  return 0;
}
