// Reproduces the §III-C calibration result: "On the system we use in this
// paper, alpha is on the order of 10 us and the transfer bandwidth (1/beta)
// is approximately 2.5 GB/s" — and demonstrates that the calibration is
// constructed automatically for each new system (the paper's portability
// claim) by calibrating all registered machines in both memory modes.
#include <cstdio>
#include <iostream>

#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "util/table.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  util::TextTable table({"Machine", "Memory", "H2D alpha (us)", "H2D GB/s",
                         "D2H alpha (us)", "D2H GB/s"});

  for (const hw::MachineSpec& machine : hw::all_machines()) {
    for (hw::HostMemory mem :
         {hw::HostMemory::kPinned, hw::HostMemory::kPageable}) {
      pcie::SimulatedBus bus(machine.pcie, /*seed=*/31);
      const pcie::BusModel model =
          pcie::TransferCalibrator().calibrate(bus, mem);
      table.add_row({
          machine.name,
          mem == hw::HostMemory::kPinned ? "pinned" : "pageable",
          strfmt("%.2f", model.h2d.alpha_s * 1e6),
          strfmt("%.2f", model.h2d.bandwidth_gbps()),
          strfmt("%.2f", model.d2h.alpha_s * 1e6),
          strfmt("%.2f", model.d2h.bandwidth_gbps()),
      });
    }
    table.add_separator();
  }

  std::printf("Calibration report — two-point linear model per machine\n");
  std::printf("(paper §III-C on anl_eureka: alpha ~10 us, ~2.5 GB/s "
              "pinned)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "calibration_report");
  return 0;
}
