// micro_pipeline — artifact-pipeline throughput benchmark.
//
// Measures sweep-points/second of the projection pipeline's artifact
// stage (skeleton build + data-usage analysis) over the paper's
// iteration sweeps (fig08/fig10/fig12), with and without the process-wide
// artifact caches, and emits a machine-readable BENCH_pipeline.json for
// scripts/bench_compare (the CI perf-smoke gate).
//
//   ./build/bench/micro_pipeline [--out FILE] [--quick]
//
// Two modes per workload:
//   * "warm": every sweep point is served from the skeleton and plan
//     caches — the steady state of repeated sweeps (paper_report, the
//     figure benches, resumed journals). Acceptance demands >= 5x here.
//   * "cold": each measured sweep starts with cleared caches. Transfer
//     plans are keyed by skeleton content *without* iterations (paper
//     §III-B), so one analysis serves the whole sweep — but the dividend
//     is spent on content fingerprinting, so this mode gates overhead
//     neutrality (a cache-cold sweep must never get materially slower),
//     not a speedup.
// bench_compare gates on the cached/uncached speedup ratios — they are
// machine-portable, unlike absolute throughput, which it only tracks as
// a warning. See docs/performance.md.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dataflow/usage_analyzer.h"
#include "dataflow/usage_cache.h"
#include "workloads/skeleton_cache.h"
#include "workloads/workload.h"

namespace {

using namespace grophecy;

// The iteration counts of the paper's iteration-sweep figures.
const std::vector<int> kIterations{1, 2, 4, 8, 16, 32, 64, 128};

/// Calls `fn` until ~min_seconds of wall clock accumulate; returns
/// (calls * units_per_call)/second.
template <typename Fn>
double throughput(Fn&& fn, double units_per_call, double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::int64_t calls = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++calls;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(calls) * units_per_call / elapsed;
}

/// One full iteration sweep through the uncached pipeline: build the
/// skeleton and run the analyzer at every point, like the pre-cache
/// figure benches did.
void sweep_uncached(const workloads::Workload& workload,
                    const workloads::DataSize& size) {
  for (const int iters : kIterations) {
    const skeleton::AppSkeleton app = workload.make_skeleton(size, iters);
    dataflow::UsageAnalyzer analyzer;
    volatile std::uint64_t sink = analyzer.analyze(app).input_bytes();
    (void)sink;
    (void)analyzer.classify(app);
  }
}

/// One full iteration sweep through the cached pipeline.
void sweep_cached(const workloads::Workload& workload,
                  const workloads::DataSize& size) {
  for (const int iters : kIterations) {
    const auto built = workloads::cached_skeleton(workload, size, iters);
    const auto usage = dataflow::cached_usage(built->usage_key, built->app);
    volatile std::uint64_t sink = usage->plan.input_bytes();
    (void)sink;
  }
}

struct Entry {
  std::string name;
  std::string workload;
  std::string size;
  std::string mode;         // "warm" | "cold"
  double throughput = 0.0;  ///< cached sweep points / second
  double uncached_per_sec = 0.0;
  double speedup = 0.0;
  double min_speedup = 1.0;
};

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"grophecy.bench_pipeline.v1\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"workload\": \"%s\", \"size\": \"%s\","
        " \"mode\": \"%s\", \"throughput\": %.6g,"
        " \"uncached_per_sec\": %.6g, \"speedup\": %.6g,"
        " \"min_speedup\": %.3g}%s\n",
        e.name.c_str(), e.workload.c_str(), e.size.c_str(), e.mode.c_str(),
        e.throughput, e.uncached_per_sec, e.speedup, e.min_speedup,
        i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pipeline.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", argv[0]);
      return 2;
    }
  }
  const double min_seconds = quick ? 0.02 : 0.15;
  const double points = static_cast<double>(kIterations.size());

  // The paper's iteration-sweep configurations (fig08, fig10, fig12).
  struct Config {
    const char* workload;
    const char* size;
  };
  const std::vector<Config> configs{
      {"CFD", "97K"}, {"HotSpot", "1024 x 1024"}, {"SRAD", "2048 x 2048"}};

  const workloads::PaperSuite& suite = workloads::PaperSuite::instance();
  std::vector<Entry> entries;

  std::printf("%-28s %14s %14s %9s\n", "entry", "cached pts/s",
              "uncached pts/s", "speedup");
  for (const Config& config : configs) {
    const workloads::Workload& workload = suite.find(config.workload);
    const workloads::DataSize size =
        workloads::find_data_size(workload, config.size);

    const double uncached = throughput(
        [&] { sweep_uncached(workload, size); }, points, min_seconds);

    for (const bool warm : {true, false}) {
      Entry entry;
      entry.workload = config.workload;
      entry.size = config.size;
      entry.mode = warm ? "warm" : "cold";
      entry.name = entry.mode + "/" + config.workload;
      // Warm sweeps are pure cache lookups: the acceptance bar is 5x.
      // Cold sweeps still rebuild every skeleton (keys include the
      // iteration count) and spend the saved repeat analyses on content
      // fingerprinting, so they land near parity — the floor only guards
      // that a cache-cold sweep never gets materially slower.
      entry.min_speedup = warm ? 5.0 : 0.75;
      entry.uncached_per_sec = uncached;

      if (warm) {
        workloads::skeleton_cache().clear();
        dataflow::usage_cache().clear();
        sweep_cached(workload, size);  // populate once, untimed
        entry.throughput = throughput(
            [&] { sweep_cached(workload, size); }, points, min_seconds);
      } else {
        entry.throughput = throughput(
            [&] {
              workloads::skeleton_cache().clear();
              dataflow::usage_cache().clear();
              sweep_cached(workload, size);
            },
            points, min_seconds);
      }
      entry.speedup = entry.throughput / entry.uncached_per_sec;
      std::printf("%-28s %14.0f %14.0f %8.1fx\n", entry.name.c_str(),
                  entry.throughput, entry.uncached_per_sec, entry.speedup);
      entries.push_back(std::move(entry));
    }
  }

  write_json(entries, out_path);
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  bool ok = true;
  for (const Entry& entry : entries) {
    if (entry.speedup < entry.min_speedup) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx < required %.2fx\n",
                   entry.name.c_str(), entry.speedup, entry.min_speedup);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
