// Micro-benchmarks (google-benchmark) for the projection pipeline itself:
// bus sampling throughput, analytical model evaluation, transformation
// exploration, and a complete end-to-end projection. GROPHECY++'s value
// proposition is projecting performance *without* porting code, so the
// projection must be cheap; these benches quantify that.
#include <benchmark/benchmark.h>

#include "core/grophecy.h"
#include "dataflow/usage_analyzer.h"
#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "pcie/bus.h"
#include "workloads/srad.h"
#include "workloads/stassuij.h"

namespace {

using namespace grophecy;

void BM_BusSample(benchmark::State& state) {
  pcie::SimulatedBus bus(hw::anl_eureka().pcie, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.time_transfer(
        static_cast<std::uint64_t>(state.range(0)),
        hw::Direction::kHostToDevice, hw::HostMemory::kPinned));
  }
}
BENCHMARK(BM_BusSample)->Arg(1)->Arg(1 << 20)->Arg(512 << 20);

void BM_KernelModelProjection(benchmark::State& state) {
  const hw::GpuSpec gpu = hw::anl_eureka().gpu;
  const skeleton::AppSkeleton app = workloads::srad_skeleton(2048, 1);
  gpumodel::KernelTimeModel model(gpu);
  const gpumodel::KernelCharacteristics kc =
      gpumodel::characterize(app, app.kernels[0], gpumodel::Variant{}, gpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.project(kc));
  }
}
BENCHMARK(BM_KernelModelProjection);

void BM_ExplorerFullSpace(benchmark::State& state) {
  const hw::GpuSpec gpu = hw::anl_eureka().gpu;
  const skeleton::AppSkeleton app = workloads::srad_skeleton(2048, 1);
  gpumodel::Explorer explorer(gpu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explorer.best(app, app.kernels[0]));
  }
}
BENCHMARK(BM_ExplorerFullSpace);

void BM_UsageAnalysis(benchmark::State& state) {
  const skeleton::AppSkeleton app = workloads::srad_skeleton(4096, 1);
  dataflow::UsageAnalyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(app));
  }
}
BENCHMARK(BM_UsageAnalysis);

void BM_EndToEndProjection(benchmark::State& state) {
  core::Grophecy engine(hw::anl_eureka());
  const skeleton::AppSkeleton app = workloads::stassuij_skeleton({}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.project(app));
  }
}
BENCHMARK(BM_EndToEndProjection);

}  // namespace
