// Ablation: two independent implementations of "the machine".
//
// The wave-based simulator (synchronized block waves, per-SM bandwidth
// slices) and the discrete-event fluid simulator (greedy block scheduler,
// chip-wide DRAM contention) were written independently from the same
// hardware description. Their agreement on every explored paper kernel is
// evidence that the measured side of the reproduction is not an artifact
// of one simulator's structure — and their divergence is confined to the
// documented cases (partial tail waves).
#include <cstdio>
#include <iostream>

#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "sim/event_sim.h"
#include "sim/gpu_sim.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  const hw::GpuSpec gpu = hw::anl_eureka().gpu;
  sim::GpuSimulator wave(gpu, 1);
  sim::EventGpuSimulator fluid(gpu, 1);
  gpumodel::Explorer explorer(gpu);

  util::TextTable table({"Workload / kernel", "Wave sim", "Event sim",
                         "Difference"});
  std::vector<double> diffs;

  for (const auto& workload : workloads::paper_workloads()) {
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      const skeleton::AppSkeleton app = workload->make_skeleton(size, 1);
      for (const skeleton::KernelSkeleton& kernel : app.kernels) {
        const gpumodel::ProjectedKernel best = explorer.best(app, kernel);
        const double wave_s =
            wave.expected_launch(best.characteristics).total_s;
        const double fluid_s =
            fluid.expected_launch(best.characteristics).total_s;
        const double diff = util::percent_difference(fluid_s, wave_s);
        diffs.push_back(std::abs(diff));
        table.add_row({workload->name() + " " + size.label + " / " +
                           kernel.name,
                       util::format_time(wave_s), util::format_time(fluid_s),
                       strfmt("%+.1f%%", diff)});
      }
    }
    table.add_separator();
  }

  std::printf("Ablation: wave-based vs discrete-event GPU simulator\n");
  std::printf("(expected launch times for every explored paper kernel)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "ablation_simulators");
  std::printf("\nmean |difference| across all kernels: %.1f%%\n",
              util::mean(diffs));
  return 0;
}
