// Micro-benchmarks (google-benchmark) of the REAL OpenMP reference
// implementations bundled with the workload suite. These run actual
// computation on the build machine — they are not part of the paper
// reproduction (the projected figures use the simulated testbed) but
// anchor the suite in reality: the references are real, runnable,
// numerically validated code, not stubs.
#include <benchmark/benchmark.h>

#include "workloads/cfd_ref.h"
#include "workloads/hotspot_ref.h"
#include "workloads/matmul.h"
#include "workloads/srad_ref.h"
#include "workloads/stassuij_ref.h"

namespace {

using namespace grophecy::workloads;

void BM_HotspotReferenceStep(benchmark::State& state) {
  HotspotReference ref(state.range(0), /*seed=*/1);
  for (auto _ : state) {
    ref.step();
    benchmark::DoNotOptimize(ref.temperature().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_HotspotReferenceStep)->Arg(256)->Arg(1024);

void BM_SradReferenceStep(benchmark::State& state) {
  SradReference ref(state.range(0), /*seed=*/2);
  for (auto _ : state) {
    ref.step();
    benchmark::DoNotOptimize(ref.image().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_SradReferenceStep)->Arg(256)->Arg(1024);

void BM_CfdReferenceStep(benchmark::State& state) {
  CfdReference ref(state.range(0), /*seed=*/3);
  for (auto _ : state) {
    ref.step();
    benchmark::DoNotOptimize(ref.variable(0).data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CfdReferenceStep)->Arg(16384)->Arg(97046);

void BM_StassuijReferenceMultiply(benchmark::State& state) {
  StassuijConfig config;  // the paper's 132 x 2048 instance
  StassuijReference ref(config, /*seed=*/4);
  for (auto _ : state) {
    ref.multiply();
    benchmark::DoNotOptimize(ref.c().data());
  }
}
BENCHMARK(BM_StassuijReferenceMultiply);

void BM_MatmulReference(benchmark::State& state) {
  MatmulReference ref(state.range(0), /*seed=*/5);
  for (auto _ : state) {
    ref.multiply();
    benchmark::DoNotOptimize(ref.c().data());
  }
}
BENCHMARK(BM_MatmulReference)->Arg(256)->Arg(512);

}  // namespace
