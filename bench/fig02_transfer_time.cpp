// Reproduces Figure 2: transfer time for pinned and pageable memory for a
// range of transfer sizes (1 B to 512 MB, powers of two), both directions,
// with the linear model's prediction overlaid for pinned transfers. Each
// time is the arithmetic mean of 10 separate transfers (paper caption).
#include <cstdio>
#include <iostream>

#include <vector>

#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "util/ascii_chart.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace grophecy;
  using hw::Direction;
  using hw::HostMemory;
  using util::strfmt;

  const hw::MachineSpec machine = hw::anl_eureka();
  pcie::SimulatedBus bus(machine.pcie, /*seed=*/2013);
  pcie::TransferCalibrator calibrator;
  pcie::SimulatedBus calibration_bus(machine.pcie, /*seed=*/7);
  const pcie::BusModel model =
      calibrator.calibrate(calibration_bus, HostMemory::kPinned);

  util::TextTable table({"Size", "H2D pinned (us)", "H2D predicted",
                         "H2D pageable", "D2H pinned (us)", "D2H predicted",
                         "D2H pageable"});

  constexpr int kRuns = 10;
  std::vector<double> xs, pinned_us, pageable_us, predicted_us;
  for (std::uint64_t bytes = 1; bytes <= 512 * util::kMiB; bytes *= 2) {
    auto mean_us = [&](Direction dir, HostMemory mem) {
      return util::seconds_to_us(bus.measure_mean(bytes, dir, mem, kRuns));
    };
    xs.push_back(static_cast<double>(bytes));
    pinned_us.push_back(mean_us(Direction::kHostToDevice,
                                HostMemory::kPinned));
    pageable_us.push_back(mean_us(Direction::kHostToDevice,
                                  HostMemory::kPageable));
    predicted_us.push_back(util::seconds_to_us(
        model.predict_seconds(bytes, Direction::kHostToDevice)));
    table.add_row({
        util::format_bytes(bytes),
        strfmt("%.1f", mean_us(Direction::kHostToDevice, HostMemory::kPinned)),
        strfmt("%.1f", util::seconds_to_us(model.predict_seconds(
                           bytes, Direction::kHostToDevice))),
        strfmt("%.1f",
               mean_us(Direction::kHostToDevice, HostMemory::kPageable)),
        strfmt("%.1f", mean_us(Direction::kDeviceToHost, HostMemory::kPinned)),
        strfmt("%.1f", util::seconds_to_us(model.predict_seconds(
                           bytes, Direction::kDeviceToHost))),
        strfmt("%.1f",
               mean_us(Direction::kDeviceToHost, HostMemory::kPageable)),
    });
  }

  std::printf("Figure 2 — transfer time, pinned vs pageable, 1B..512MB\n");
  std::printf("(times in microseconds; mean of %d transfers; predictions "
              "from the two-point linear model)\n\n",
              kRuns);
  table.print(std::cout);
  util::export_csv_if_requested(table, "fig02_transfer_time");

  // The paper's plot is log-log: both the latency floor and the linear
  // asymptote are visible, and the model overlays the pinned curve.
  util::AsciiChart chart(64, 16);
  chart.set_x_log(true);
  chart.set_y_log(true);
  chart.set_x_label("transfer size, bytes (log)");
  chart.set_y_label("H2D time, us (log)");
  chart.add_series("pageable", '.', xs, pageable_us);
  chart.add_series("pinned", 'o', xs, pinned_us);
  chart.add_series("model", '+', xs, predicted_us);
  std::printf("\n%s", chart.to_string().c_str());

  std::printf("\ncalibrated: H2D %s | D2H %s\n",
              model.h2d.describe().c_str(), model.d2h.describe().c_str());
  return 0;
}
