// Reproduces Figure 7: measured and predicted GPU speedup for CFD across a
// range of data sizes, with predictions both with and without data
// transfer time.
#include "sweep_common.h"

int main() {
  grophecy::bench::print_size_sweep("CFD", "Figure 7");
  return 0;
}
