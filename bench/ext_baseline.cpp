// Extension study: how much does the CPU baseline choice move the verdict?
//
// The paper's baseline is OpenMP with 8 threads (§IV-B) — a strong, fair
// baseline. This study re-projects two workloads against the same machine
// with the baseline restricted to fewer threads: against a sequential
// baseline every GPU port looks spectacular (the "100x myth" the paper's
// reference [14] debunks); against the honest 8-thread baseline the
// transfer-aware verdicts are what Table II reports.
#include <cstdio>
#include <iostream>

#include "core/grophecy.h"
#include "hw/registry.h"
#include "util/table.h"
#include "workloads/srad.h"
#include "workloads/stassuij.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  util::TextTable table({"Baseline threads", "SRAD 2048 speedup",
                         "Stassuij speedup", "Stassuij verdict"});
  for (int threads : {1, 2, 4, 8}) {
    hw::MachineSpec machine = hw::anl_eureka();
    machine.cpu.threads = threads;
    core::Grophecy engine(machine);
    const auto srad =
        engine.project(workloads::srad_skeleton(2048, 1));
    const auto stassuij =
        engine.project(workloads::stassuij_skeleton({}, 1));
    table.add_row({
        strfmt("%d", threads),
        strfmt("%.2fx", srad.predicted_speedup_both()),
        strfmt("%.2fx", stassuij.predicted_speedup_both()),
        stassuij.predicted_speedup_both() > 1.0 ? "offload" : "stay",
    });
  }

  std::printf("Extension: the CPU baseline's thread count vs the offload "
              "verdict\n(paper §IV-B uses 8 OpenMP threads — the honest "
              "baseline)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "ext_baseline");
  std::printf("\nWeak baselines inflate every speedup — yet Stassuij stays "
              "a loss even against a\nsingle thread: its transfer deficit "
              "is deeper than any baseline handicap. A fair\nparallel "
              "baseline plus transfer modeling is what makes the projection "
              "honest.\n");
  return 0;
}
