// Extension study (paper §VII future work): memory-mode tradeoffs with
// allocation overhead, across all four paper workloads.
//
// For each workload/data size this prints the projected cost of the
// transfer plan under uniform pinned, uniform pageable, and the advisor's
// per-array mix — including host-buffer allocation. The paper's blanket
// "assume pinned" policy is near-optimal for these bandwidth-heavy plans,
// but the mix recovers the pageable win on small buffers (and on tiny
// apps the recommendation flips outright).
#include <cstdio>
#include <iostream>

#include "core/memory_advisor.h"
#include "hw/registry.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  core::MemoryModeAdvisor advisor(hw::anl_eureka());
  util::TextTable table({"Application", "Data Size", "All pinned",
                         "All pageable", "Per-array mix", "Mix saves",
                         "Uniform rec."});

  for (const auto& workload : workloads::paper_workloads()) {
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      const core::MemoryModeReport report =
          advisor.advise(workload->make_skeleton(size, 1));
      const double best_uniform =
          std::min(report.all_pinned_s, report.all_pageable_s);
      table.add_row({
          workload->name(),
          size.label,
          util::format_time(report.all_pinned_s),
          util::format_time(report.all_pageable_s),
          util::format_time(report.mixed_s),
          strfmt("%.1f%%", (best_uniform - report.mixed_s) / best_uniform *
                               100.0),
          report.uniform_recommendation == hw::HostMemory::kPinned
              ? "pinned"
              : "pageable",
      });
    }
    table.add_separator();
  }

  std::printf("Extension: memory-mode tradeoff incl. allocation overhead "
              "(paper §VII future work)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "ext_memory_mode");
  return 0;
}
