// Reproduces Figure 8: measured and predicted GPU speedup of CFD as a
// function of iteration count for a data size of 233K. The paper reports
// the transfer-aware prediction stays more than twice as accurate for
// iteration counts below 18, and a limit error of 22.6% as iterations
// approach infinity (kernel misprediction only).
#include "sweep_common.h"

int main() {
  grophecy::bench::print_iteration_sweep("CFD", "233K", "Figure 8", 22.6);
  return 0;
}
