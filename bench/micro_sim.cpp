// micro_sim — projection hot-path throughput benchmark.
//
// Measures projections/second of the discrete-event simulator's two
// engines (cohort fast path vs retained reference) across workload shapes
// and grid sizes, serial and with 8 workers, and emits a machine-readable
// BENCH_sim.json for scripts/bench_compare (the CI perf-smoke gate).
//
//   ./build/bench/micro_sim [--out FILE] [--quick]
//
// Each JSON entry carries the measured throughputs, the cohort/reference
// speedup, and the minimum speedup this PR's acceptance demands (5x on
// >= 64k-block jitter-free grids, 2x on jittered runs). bench_compare
// gates on the speedups — they are machine-portable, unlike absolute
// throughput, which it only tracks as a warning. See docs/performance.md.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "gpumodel/characteristics.h"
#include "hw/registry.h"
#include "sim/event_sim.h"
#include "skeleton/builder.h"

// --- Steady-state allocation counter ---------------------------------
// Replaceable global operator new/delete that counts allocations while
// armed. The cohort engine promises an allocation-free steady state (all
// scratch is reserved once per chip geometry and cleared without freeing,
// see docs/performance.md); micro_sim measures allocations across warmed
// simulate calls, records them in BENCH_sim.json as "steady_allocs", and
// bench_compare gates them against "max_steady_allocs".

namespace {
std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace {

using grophecy::gpumodel::KernelCharacteristics;
using grophecy::gpumodel::Variant;
using grophecy::sim::EventGpuSimulator;
using grophecy::sim::EventSimOptions;
using grophecy::sim::SimEngine;

constexpr int kWorkers = 8;

struct Workload {
  const char* name;
  grophecy::skeleton::AppSkeleton app;
};

grophecy::skeleton::AppSkeleton stream_app(std::int64_t n) {
  grophecy::skeleton::AppBuilder builder("stream");
  const auto a = builder.array("a", grophecy::skeleton::ElemType::kF32, {n});
  const auto b = builder.array("b", grophecy::skeleton::ElemType::kF32, {n});
  auto& k = builder.kernel("copy");
  k.parallel_loop("i", n);
  k.statement(1.0).load(a, {k.var("i")}).store(b, {k.var("i")});
  return builder.build();
}

grophecy::skeleton::AppSkeleton compute_app(std::int64_t n) {
  grophecy::skeleton::AppBuilder builder("compute");
  const auto a = builder.array("a", grophecy::skeleton::ElemType::kF32, {n});
  const auto b = builder.array("b", grophecy::skeleton::ElemType::kF32, {n});
  auto& k = builder.kernel("iterate");
  k.parallel_loop("i", n);
  k.statement(96.0, 8.0).load(a, {k.var("i")}).store(b, {k.var("i")});
  return builder.build();
}

grophecy::skeleton::AppSkeleton gather_app(std::int64_t n) {
  grophecy::skeleton::AppBuilder builder("gather");
  const auto a = builder.array("a", grophecy::skeleton::ElemType::kF32, {n});
  const auto idx =
      builder.array("idx", grophecy::skeleton::ElemType::kI32, {n});
  const auto out = builder.array("out", grophecy::skeleton::ElemType::kF32,
                                 {n});
  auto& k = builder.kernel("gather");
  k.parallel_loop("i", n);
  k.statement(4.0)
      .load(idx, {k.var("i")})
      .load_indirect(a)
      .store(out, {k.var("i")});
  return builder.build();
}

/// Characteristics of the workload's kernel resized to `grid_blocks`.
KernelCharacteristics characteristics_for(const Workload& workload,
                                          std::int64_t grid_blocks,
                                          const grophecy::hw::GpuSpec& gpu) {
  Variant variant;
  variant.block_size = 256;
  KernelCharacteristics kc = grophecy::gpumodel::characterize(
      workload.app, workload.app.kernels[0], variant, gpu);
  kc.num_blocks = grid_blocks;
  kc.total_threads = grid_blocks * variant.block_size;
  return kc;
}

/// Calls `fn` until ~min_seconds of wall clock accumulate — but always
/// at least three times — and returns the best observed calls/second
/// (fastest single call). Background noise on a shared runner only ever
/// slows a call down, so the minimum is the most machine-portable
/// sample — and the gated speedups are ratios of two measurements taken
/// the same way. The three-call floor matters for slow configurations
/// (the reference engine on a 262144-block grid) where one call exceeds
/// the whole budget: a minimum over a single sample is just that
/// sample's noise, and it lands in the gated ratio.
template <typename Fn>
double throughput(Fn&& fn, double min_seconds) {
  using clock = std::chrono::steady_clock;
  constexpr int kMinCalls = 3;
  double best = std::numeric_limits<double>::infinity();
  const auto start = clock::now();
  double elapsed = 0.0;
  int calls = 0;
  do {
    const auto call_start = clock::now();
    fn();
    const auto call_end = clock::now();
    best = std::min(
        best, std::chrono::duration<double>(call_end - call_start).count());
    elapsed = std::chrono::duration<double>(call_end - start).count();
    ++calls;
  } while (elapsed < min_seconds || calls < kMinCalls);
  return best > 0.0 ? 1.0 / best
                    : std::numeric_limits<double>::infinity();
}

/// Aggregate calls/second of `kWorkers` threads, each running its own
/// simulator instance (the sweep engine's deployment shape).
template <typename MakeFn>
double throughput_parallel(MakeFn&& make_fn, double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::atomic<bool> go{false};
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      auto fn = make_fn(w);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const auto start = clock::now();
      std::int64_t iters = 0;
      do {
        fn();
        ++iters;
      } while (std::chrono::duration<double>(clock::now() - start).count() <
               min_seconds);
      total.fetch_add(iters, std::memory_order_relaxed);
    });
  }
  const auto start = clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(clock::now() - start).count();
  return static_cast<double>(total.load()) / wall;
}

struct Entry {
  std::string name;
  std::string workload;
  std::int64_t grid_blocks = 0;
  std::string mode;  // "expected" | "jittered"
  double cohort_per_sec_w1 = 0.0;
  double cohort_per_sec_w8 = 0.0;
  double reference_per_sec = 0.0;
  double speedup = 0.0;
  double min_speedup = 1.0;
  long long steady_allocs = 0;      ///< Heap allocs across the counted calls.
  long long max_steady_allocs = 0;  ///< Gate: allowed steady-state allocs.
};

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"grophecy.bench_sim.v1\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"workload\": \"%s\", \"grid_blocks\": %lld,"
        " \"mode\": \"%s\", \"cohort_per_sec_w1\": %.6g,"
        " \"cohort_per_sec_w8\": %.6g, \"reference_per_sec\": %.6g,"
        " \"speedup\": %.6g, \"min_speedup\": %.3g,"
        " \"steady_allocs\": %lld, \"max_steady_allocs\": %lld}%s\n",
        e.name.c_str(), e.workload.c_str(),
        static_cast<long long>(e.grid_blocks), e.mode.c_str(),
        e.cohort_per_sec_w1, e.cohort_per_sec_w8, e.reference_per_sec,
        e.speedup, e.min_speedup, e.steady_allocs, e.max_steady_allocs,
        i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sim.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", argv[0]);
      return 2;
    }
  }
  // Quick mode trades accuracy for time, but the jittered entries carry
  // the tightest gates (min_speedup 8), so they keep a larger budget for
  // stable ratios even under --quick.
  const double base_min_seconds = quick ? 0.02 : 0.15;
  const double jittered_min_seconds = quick ? 0.05 : 0.15;

  const grophecy::hw::GpuSpec gpu = grophecy::hw::anl_eureka().gpu;
  const std::int64_t chunk = 1 << 20;
  std::vector<Workload> workloads;
  workloads.push_back(Workload{"stream", stream_app(chunk)});
  workloads.push_back(Workload{"compute", compute_app(chunk)});
  workloads.push_back(Workload{"gather", gather_app(chunk)});

  const std::vector<std::int64_t> grids{4096, 65536, 262144};
  std::vector<Entry> entries;

  std::printf("%-24s %14s %14s %14s %9s %6s\n", "entry", "cohort/s (w1)",
              "cohort/s (w8)", "reference/s", "speedup", "allocs");
  for (const Workload& workload : workloads) {
    for (const std::int64_t grid : grids) {
      const KernelCharacteristics kc = characteristics_for(workload, grid,
                                                           gpu);
      for (const bool jittered : {false, true}) {
        Entry entry;
        entry.workload = workload.name;
        entry.grid_blocks = grid;
        entry.mode = jittered ? "jittered" : "expected";
        entry.name = entry.mode + "/" + workload.name + "/" +
                     std::to_string(grid);
        // Jittered floors: the SoA/deadline-folded engine sustains >= 10x
        // on the >= 64k grids (see docs/performance.md); the committed
        // floor of 8 leaves headroom for machine noise. Small grids pay
        // relatively more per-launch setup, hence the lower floor.
        entry.min_speedup =
            jittered ? (grid >= 65536 ? 8.0 : 4.0)
                     : (grid >= 65536 ? 5.0 : 1.0);

        EventGpuSimulator cohort(gpu, 7);
        EventGpuSimulator reference(
            gpu, 7, EventSimOptions{SimEngine::kReference, 0.0});
        const double min_seconds =
            jittered ? jittered_min_seconds : base_min_seconds;
        auto measure = [&](EventGpuSimulator& sim) {
          return jittered
                     ? throughput([&] { (void)sim.run_launch_seconds(kc); },
                                  min_seconds)
                     : throughput([&] { (void)sim.expected_launch(kc); },
                                  min_seconds);
        };
        entry.cohort_per_sec_w1 = measure(cohort);
        entry.reference_per_sec = measure(reference);
        entry.cohort_per_sec_w8 = throughput_parallel(
            [&](int worker) {
              auto sim = std::make_shared<EventGpuSimulator>(
                  gpu, 100 + static_cast<std::uint64_t>(worker));
              return [sim, &kc, jittered] {
                if (jittered)
                  (void)sim->run_launch_seconds(kc);
                else
                  (void)sim->expected_launch(kc);
              };
            },
            min_seconds);
        entry.speedup = entry.cohort_per_sec_w1 / entry.reference_per_sec;

        // Steady-state allocation gate: the throughput runs above warmed
        // the engine's scratch for this chip geometry, so further calls
        // must not touch the allocator at all.
        constexpr int kAllocProbeCalls = 5;
        g_alloc_count.store(0, std::memory_order_relaxed);
        g_count_allocs.store(true, std::memory_order_release);
        for (int call = 0; call < kAllocProbeCalls; ++call) {
          if (jittered)
            (void)cohort.run_launch_seconds(kc);
          else
            (void)cohort.expected_launch(kc);
        }
        g_count_allocs.store(false, std::memory_order_release);
        entry.steady_allocs = g_alloc_count.load(std::memory_order_relaxed);
        entry.max_steady_allocs = 0;

        std::printf("%-24s %14.0f %14.0f %14.0f %8.1fx %6lld\n",
                    entry.name.c_str(), entry.cohort_per_sec_w1,
                    entry.cohort_per_sec_w8, entry.reference_per_sec,
                    entry.speedup, entry.steady_allocs);
        entries.push_back(std::move(entry));
      }
    }
  }

  write_json(entries, out_path);
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  bool ok = true;
  for (const Entry& entry : entries) {
    if (entry.speedup < entry.min_speedup) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx < required %.2fx\n",
                   entry.name.c_str(), entry.speedup, entry.min_speedup);
      ok = false;
    }
    if (entry.steady_allocs > entry.max_steady_allocs) {
      std::fprintf(stderr,
                   "FAIL: %s made %lld steady-state heap allocations "
                   "(allowed %lld)\n",
                   entry.name.c_str(), entry.steady_allocs,
                   entry.max_steady_allocs);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
