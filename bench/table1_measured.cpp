// Reproduces Table I: measured kernel execution and data transfer times and
// data transfer sizes for each application and data size, with the paper's
// published values printed alongside. The "Percent Transfer" column shows
// the fraction of the overall time due to data transfer.
#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/paper_reference.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  core::ExperimentRunner runner;

  util::TextTable table({"Application", "Data Size", "Kernel (ms)",
                         "paper", "Transfer (ms)", "paper", "% Xfer",
                         "paper", "In (MB)", "paper", "Out (MB)", "paper"});

  const auto paper_rows = workloads::paper_table1();
  std::size_t paper_idx = 0;
  for (const auto& workload : workloads::paper_workloads()) {
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      core::ProjectionReport report = runner.run(*workload, size);
      const auto& paper = paper_rows[paper_idx++];
      table.add_row({
          workload->name(),
          size.label,
          strfmt("%.2f", util::seconds_to_ms(report.measured_kernel_s)),
          strfmt("%.1f", paper.kernel_ms),
          strfmt("%.2f", util::seconds_to_ms(report.measured_transfer_s)),
          strfmt("%.1f", paper.transfer_ms),
          strfmt("%.0f", report.measured_percent_transfer()),
          strfmt("%d", paper.percent_transfer),
          strfmt("%.1f", util::bytes_to_mb(
                             static_cast<double>(report.plan.input_bytes()))),
          strfmt("%.1f", paper.input_mb),
          strfmt("%.1f", util::bytes_to_mb(static_cast<double>(
                             report.plan.output_bytes()))),
          strfmt("%.1f", paper.output_mb),
      });
    }
    table.add_separator();
  }

  std::printf("Table I — measured kernel/transfer times and transfer sizes\n");
  std::printf("(measured = simulated machine, mean of 10 runs; 'paper' "
              "columns are the published values)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "table1_measured");
  return 0;
}
