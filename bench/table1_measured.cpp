// Reproduces Table I: measured kernel execution and data transfer times and
// data transfer sizes for each application and data size, with the paper's
// published values printed alongside. The "Percent Transfer" column shows
// the fraction of the overall time due to data transfer.
//
// The (workload × data size) grid runs through exec::SweepRequest on the
// SweepEngine worker pool; per-job deterministic seeds keep the table
// byte-identical for any worker count, and the whole grid calibrates the
// machine once via the process-wide pcie::CalibrationCache.
#include <cstdio>
#include <iostream>

#include "exec/sweep_request.h"
#include "hw/registry.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/paper_reference.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  std::vector<std::string> names;
  for (const auto& workload : workloads::paper_workloads())
    names.push_back(workload->name());

  exec::SweepEngine engine;
  const exec::SweepSummary summary = exec::SweepRequest::on(hw::anl_eureka())
                                         .workloads(names)
                                         .sizes(exec::all_sizes)
                                         .run(engine);

  util::TextTable table({"Application", "Data Size", "Kernel (ms)",
                         "paper", "Transfer (ms)", "paper", "% Xfer",
                         "paper", "In (MB)", "paper", "Out (MB)", "paper"});

  const auto paper_rows = workloads::paper_table1();
  for (std::size_t index = 0; index < summary.outcomes.size(); ++index) {
    const exec::JobOutcome& outcome = summary.outcomes[index];
    const auto& paper = paper_rows[index];
    if (!outcome.ok()) {
      table.add_row({outcome.spec.workload, outcome.spec.size_label,
                     std::string("failed: ") + to_string(outcome.error->kind),
                     "-", "-", "-", "-", "-", "-", "-", "-", "-"});
    } else {
      const core::ProjectionReport& report = *outcome.report;
      table.add_row({
          outcome.spec.workload,
          outcome.spec.size_label,
          strfmt("%.2f", util::seconds_to_ms(report.measured_kernel_s)),
          strfmt("%.1f", paper.kernel_ms),
          strfmt("%.2f", util::seconds_to_ms(report.measured_transfer_s)),
          strfmt("%.1f", paper.transfer_ms),
          strfmt("%.0f", report.measured_percent_transfer()),
          strfmt("%d", paper.percent_transfer),
          strfmt("%.1f", util::bytes_to_mb(
                             static_cast<double>(report.plan.input_bytes()))),
          strfmt("%.1f", paper.input_mb),
          strfmt("%.1f", util::bytes_to_mb(static_cast<double>(
                             report.plan.output_bytes()))),
          strfmt("%.1f", paper.output_mb),
      });
    }
    // Keep the paper's visual grouping: separator after each workload.
    if (index + 1 == summary.outcomes.size() ||
        summary.outcomes[index + 1].spec.workload != outcome.spec.workload)
      table.add_separator();
  }

  std::printf("Table I — measured kernel/transfer times and transfer sizes\n");
  std::printf("(measured = simulated machine, mean of 10 runs; 'paper' "
              "columns are the published values)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "table1_measured");
  return 0;
}
