// Reproduces Table II: error magnitude of the predicted GPU speedup using
// only the predicted kernel execution time, only the predicted data
// transfer time, or the combination of both, for every application and
// data set — plus the two overall averages (weighting data sets equally
// and weighting applications equally). Paper values printed alongside.
// Also prints the §V-B4 Stassuij story: the kernel-only prediction calls
// the GPU a win while the data-transfer-aware prediction correctly calls
// it a loss.
//
// The grid runs through exec::SweepRequest on the SweepEngine worker pool;
// per-job deterministic seeds keep the table byte-identical for any worker
// count, and the grid shares one calibration via pcie::CalibrationCache.
#include <cstdio>
#include <iostream>
#include <vector>

#include "exec/sweep_request.h"
#include "hw/registry.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/paper_reference.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  std::vector<std::string> names;
  for (const auto& workload : workloads::paper_workloads())
    names.push_back(workload->name());

  exec::SweepEngine engine;
  const exec::SweepSummary summary = exec::SweepRequest::on(hw::anl_eureka())
                                         .workloads(names)
                                         .sizes(exec::all_sizes)
                                         .run(engine);

  util::TextTable table({"Application", "Data Set", "Kernel Only", "paper",
                         "Transfer Only", "paper", "Kernel+Transfer",
                         "paper"});

  const auto paper_rows = workloads::paper_table2();

  std::vector<double> all_kernel_only, all_transfer_only, all_both;
  std::vector<double> app_kernel_only, app_transfer_only, app_both;
  std::vector<double> wk_kernel_only, wk_transfer_only, wk_both;

  core::ProjectionReport stassuij_report;

  // Closes the current workload group: per-workload average row (when the
  // group has more than one size) plus the separator the paper's layout
  // uses.
  auto close_group = [&](const std::string& app) {
    if (wk_both.empty()) return;
    all_kernel_only.insert(all_kernel_only.end(), wk_kernel_only.begin(),
                           wk_kernel_only.end());
    all_transfer_only.insert(all_transfer_only.end(),
                             wk_transfer_only.begin(), wk_transfer_only.end());
    all_both.insert(all_both.end(), wk_both.begin(), wk_both.end());
    app_kernel_only.push_back(util::mean(wk_kernel_only));
    app_transfer_only.push_back(util::mean(wk_transfer_only));
    app_both.push_back(util::mean(wk_both));
    if (wk_both.size() > 1) {
      table.add_row({app, "Average",
                     strfmt("%.0f%%", util::mean(wk_kernel_only)), "",
                     strfmt("%.0f%%", util::mean(wk_transfer_only)), "",
                     strfmt("%.0f%%", util::mean(wk_both)), ""});
    }
    table.add_separator();
    wk_kernel_only.clear();
    wk_transfer_only.clear();
    wk_both.clear();
  };

  for (std::size_t index = 0; index < summary.outcomes.size(); ++index) {
    const exec::JobOutcome& outcome = summary.outcomes[index];
    if (!outcome.ok()) {
      table.add_row({outcome.spec.workload, outcome.spec.size_label,
                     std::string("failed: ") + to_string(outcome.error->kind),
                     "-", "-", "-", "-", "-"});
    } else {
      const core::ProjectionReport& report = *outcome.report;
      if (outcome.spec.workload == "Stassuij") stassuij_report = report;
      const auto& paper = paper_rows[index];
      table.add_row({
          outcome.spec.workload,
          outcome.spec.size_label,
          strfmt("%.0f%%", report.speedup_error_kernel_only_pct()),
          strfmt("%.0f%%", paper.kernel_only_pct),
          strfmt("%.0f%%", report.speedup_error_transfer_only_pct()),
          strfmt("%.0f%%", paper.transfer_only_pct),
          strfmt("%.0f%%", report.speedup_error_both_pct()),
          strfmt("%.0f%%", paper.both_pct),
      });
      wk_kernel_only.push_back(report.speedup_error_kernel_only_pct());
      wk_transfer_only.push_back(report.speedup_error_transfer_only_pct());
      wk_both.push_back(report.speedup_error_both_pct());
    }
    if (index + 1 == summary.outcomes.size() ||
        summary.outcomes[index + 1].spec.workload != outcome.spec.workload)
      close_group(outcome.spec.workload);
  }

  const auto paper_avg = workloads::paper_table2_averages();
  table.add_row({"Average", "(data sets)",
                 strfmt("%.0f%%", util::mean(all_kernel_only)),
                 strfmt("%.0f%%", paper_avg.by_data_set_kernel_only),
                 strfmt("%.0f%%", util::mean(all_transfer_only)),
                 strfmt("%.0f%%", paper_avg.by_data_set_transfer_only),
                 strfmt("%.0f%%", util::mean(all_both)),
                 strfmt("%.0f%%", paper_avg.by_data_set_both)});
  table.add_row({"Average", "(applications)",
                 strfmt("%.0f%%", util::mean(app_kernel_only)),
                 strfmt("%.0f%%", paper_avg.by_application_kernel_only),
                 strfmt("%.0f%%", util::mean(app_transfer_only)),
                 strfmt("%.0f%%", paper_avg.by_application_transfer_only),
                 strfmt("%.0f%%", util::mean(app_both)),
                 strfmt("%.0f%%", paper_avg.by_application_both)});

  std::printf("Table II — error magnitude of the predicted GPU speedup\n");
  std::printf("('paper' columns are the published values)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "table2_speedup_error");

  std::printf(
      "\nStassuij (paper §V-B4): kernel-only predicted %.2fx (%s), "
      "transfer-aware predicted %.2fx, measured %.2fx (%s)\n",
      stassuij_report.predicted_speedup_kernel_only(),
      stassuij_report.predicted_speedup_kernel_only() > 1.0 ? "a GPU win"
                                                            : "a GPU loss",
      stassuij_report.predicted_speedup_both(),
      stassuij_report.measured_speedup(),
      stassuij_report.measured_speedup() > 1.0 ? "a GPU win" : "a GPU loss");
  return 0;
}
