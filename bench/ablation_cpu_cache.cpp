// Ablation: the CPU traffic heuristic vs exact cache simulation.
//
// The roofline CPU model prices memory with a closed-form traffic
// heuristic (unique bytes when cache-resident, damped dynamic traffic
// beyond, per-gather charges). This bench checks that shortcut against an
// exact trace-driven cache hierarchy simulation on scaled-down instances
// of the paper's workloads (extents and cache capacities shrink together,
// which preserves streaming and capacity behaviour). The two columns
// agreeing within ~2x everywhere is what licenses the closed form in the
// projection pipeline, where full-size traces would be prohibitive.
#include <cstdio>
#include <iostream>

#include "brs/footprint.h"
#include "cpumodel/cache_sim.h"
#include "cpumodel/cpu_model.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/hotspot.h"
#include "workloads/matmul.h"
#include "workloads/srad.h"
#include "workloads/stassuij.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  struct Case {
    std::string name;
    skeleton::AppSkeleton app;
    std::uint64_t llc_bytes;  ///< Scaled to the instance.
  };
  workloads::StassuijConfig small_spmm;
  small_spmm.rows = 64;
  small_spmm.dense_cols = 256;
  small_spmm.nnz_per_row = 8;
  const std::vector<Case> cases = {
      // HotSpot 256^2: working set 3*256KB; cache 1/4 of it (like 12 MB vs
      // ~48 MB at full size).
      {"HotSpot 256^2 (LLC = ws/4)", workloads::hotspot_skeleton(256, 1),
       3ULL * 256 * 256 * 4 / 4},
      {"HotSpot 128^2 (LLC = 2*ws)", workloads::hotspot_skeleton(128, 1),
       2ULL * 3 * 128 * 128 * 4},
      {"SRAD 192^2 (LLC = ws/4)", workloads::srad_skeleton(192, 1),
       6ULL * 192 * 192 * 4 / 4},
      {"Stassuij 64x256 (LLC = ws/2)",
       workloads::stassuij_skeleton(small_spmm, 1),
       2ULL * 64 * 256 * 16 / 2 + 8 * 1024},
      {"MatMul 128 (LLC = ws/3)", workloads::matmul_skeleton(128),
       3ULL * 128 * 128 * 4 / 3},
  };

  util::TextTable table({"Workload / kernel", "Heuristic", "Trace sim",
                         "Ratio"});
  for (const Case& test_case : cases) {
    for (const skeleton::KernelSkeleton& kernel : test_case.app.kernels) {
      const auto fp = brs::kernel_footprint(test_case.app, kernel);
      const double heuristic =
          cpumodel::cpu_memory_traffic_bytes(fp, test_case.llc_bytes);
      const std::uint64_t traced = cpumodel::trace_kernel_dram_bytes(
          test_case.app, kernel, {.capacity_bytes = 8 * 1024, .ways = 8},
          {.capacity_bytes = test_case.llc_bytes / 64 * 64, .ways = 16},
          /*seed=*/11);
      table.add_row({
          test_case.name + " / " + kernel.name,
          util::format_bytes(static_cast<std::uint64_t>(heuristic)),
          util::format_bytes(traced),
          strfmt("%.2fx", heuristic / static_cast<double>(traced)),
      });
    }
  }

  std::printf("Ablation: closed-form CPU traffic heuristic vs exact cache "
              "trace\n(scaled instances; LLC scaled proportionally to the "
              "working set)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "ablation_cpu_cache");
  std::printf(
      "\nSingle-sweep stencils and the SpMM agree within ~1.3x. The MatMul "
      "row is the honest\noutlier: the trace simulates the skeleton's "
      "naive loop order, while the heuristic\n(and the bundled reference) "
      "assumes a cache-blocked implementation — the paper's CPU\nbaselines "
      "are tuned code, so the heuristic's assumption is the right one for "
      "them.\n");
  return 0;
}
