// Reproduces Figure 9: measured and predicted GPU speedup for HotSpot across a
// range of data sizes, with predictions both with and without data
// transfer time.
#include "sweep_common.h"

int main() {
  grophecy::bench::print_size_sweep("HotSpot", "Figure 9");
  return 0;
}
