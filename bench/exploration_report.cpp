// Exploration report: the full transformation space of one kernel, ranked.
//
// GROPHECY's value is that it searches the transformation space so the
// user does not have to (§II-C). This bench opens the hood: for the
// Figure-1 matmul and the HotSpot stencil it prints every explored
// variant — block size, staging, tiling, unrolling — with the model's
// timing decomposition and which bound dominates, ranked fastest first.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "gpumodel/explorer.h"
#include "hw/registry.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/hotspot.h"
#include "workloads/matmul.h"

namespace {

void report(const char* title, const grophecy::skeleton::AppSkeleton& app,
            std::size_t top_n) {
  using namespace grophecy;
  using util::strfmt;

  gpumodel::Explorer explorer(hw::anl_eureka().gpu);
  std::vector<gpumodel::ProjectedKernel> variants =
      explorer.explore(app, app.kernels[0]);
  std::sort(variants.begin(), variants.end(),
            [](const auto& a, const auto& b) {
              return a.time.total_s < b.time.total_s;
            });

  util::TextTable table({"Rank", "Variant", "Projected", "Bound",
                         "Occupancy", "vs best"});
  const double best = variants.front().time.total_s;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (i >= top_n && i + top_n < variants.size()) continue;  // head + tail
    const auto& v = variants[i];
    table.add_row({
        strfmt("%zu", i + 1),
        v.variant.describe(),
        util::format_time(v.time.total_s),
        v.time.bound,
        strfmt("%.0f%% (%s)", v.time.occupancy.fraction * 100.0,
               v.time.occupancy.limiter),
        strfmt("%.2fx", v.time.total_s / best),
    });
    if (i + 1 == top_n && variants.size() > 2 * top_n)
      table.add_separator();
  }

  std::printf("%s — %zu variants explored (top %zu and bottom %zu shown)\n\n",
              title, variants.size(), top_n, top_n);
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace grophecy;
  report("MatMul 1024x1024 (the paper's Figure 1 example)",
         workloads::matmul_skeleton(1024), 6);
  report("HotSpot 1024x1024 stencil",
         workloads::hotspot_skeleton(1024, 1), 6);
  return 0;
}
