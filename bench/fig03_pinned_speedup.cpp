// Reproduces Figure 3: speedup of transfers using pinned memory relative to
// transfers using pageable memory for a range of transfer sizes. The paper
// observes pinned is faster everywhere except CPU-to-GPU transfers smaller
// than ~2 KB.
#include <cstdio>
#include <iostream>

#include "hw/registry.h"
#include "pcie/bus.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace grophecy;
  using hw::Direction;
  using hw::HostMemory;
  using util::strfmt;

  const hw::MachineSpec machine = hw::anl_eureka();
  pcie::SimulatedBus bus(machine.pcie, /*seed=*/2013);

  util::TextTable table(
      {"Size", "H2D pinned speedup", "D2H pinned speedup"});

  constexpr int kRuns = 10;
  std::uint64_t h2d_crossover = 0;
  for (std::uint64_t bytes = 1; bytes <= 512 * util::kMiB; bytes *= 2) {
    const double h2d =
        bus.measure_mean(bytes, Direction::kHostToDevice,
                         HostMemory::kPageable, kRuns) /
        bus.measure_mean(bytes, Direction::kHostToDevice,
                         HostMemory::kPinned, kRuns);
    const double d2h =
        bus.measure_mean(bytes, Direction::kDeviceToHost,
                         HostMemory::kPageable, kRuns) /
        bus.measure_mean(bytes, Direction::kDeviceToHost,
                         HostMemory::kPinned, kRuns);
    if (h2d < 1.0) h2d_crossover = bytes;
    table.add_row({util::format_bytes(bytes), strfmt("%.2fx", h2d),
                   strfmt("%.2fx", d2h)});
  }

  std::printf("Figure 3 — speedup of pinned over pageable transfers\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "fig03_pinned_speedup");
  if (h2d_crossover > 0) {
    std::printf(
        "\nH2D: pageable is faster up to %s (paper: pinned wins except "
        "CPU-to-GPU transfers smaller than 2KB)\n",
        util::format_bytes(h2d_crossover).c_str());
  }
  return 0;
}
