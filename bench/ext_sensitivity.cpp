// Extension study: which hardware parameters decide the verdict?
//
// Elasticity of the transfer-aware predicted speedup with respect to every
// machine parameter (+10% perturbation, full re-projection each time), for
// a transfer-dominated workload (Stassuij) and a compute-heavier one
// (SRAD at 64 iterations). The contrast IS the paper's thesis, expressed
// as derivatives: at low iteration counts the bus and the host memory
// system dominate; amortize the transfers and the GPU's memory system
// takes over.
#include <cstdio>
#include <iostream>

#include "core/sensitivity.h"
#include "hw/registry.h"
#include "util/table.h"
#include "workloads/srad.h"
#include "workloads/stassuij.h"

namespace {

void report(const char* title, const grophecy::skeleton::AppSkeleton& app) {
  using namespace grophecy;
  using util::strfmt;

  const auto results =
      core::analyze_sensitivity(hw::anl_eureka(), app,
                                {.perturbation = 0.10,
                                 .min_elasticity = 0.05});
  util::TextTable table({"Parameter (+10%)", "Speedup", "Elasticity"});
  std::size_t shown = 0;
  for (const core::ParameterSensitivity& entry : results) {
    if (++shown > 10) break;
    table.add_row({entry.field, strfmt("%.3fx", entry.perturbed_speedup),
                   strfmt("%+.2f", entry.elasticity)});
  }
  std::printf("%s — baseline transfer-aware speedup %.3fx\n\n", title,
              results.empty() ? 0.0 : results.front().baseline_speedup);
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace grophecy;
  std::printf("Extension: machine-parameter sensitivity of the projected "
              "speedup\n(elasticity = %%-change in speedup per %%-change in "
              "parameter; top 10 shown)\n\n");
  report("Stassuij, 1 iteration (transfer dominated)",
         workloads::stassuij_skeleton({}, 1));
  report("SRAD 2048x2048, 64 iterations (transfers amortized)",
         workloads::srad_skeleton(2048, 64));
  return 0;
}
