// Robustness report: the calibration degradation ladder, end to end.
//
// Walks one machine through increasingly hostile measurement conditions —
// a healthy link, the paper's §V-A slow outliers, a flaky link (transient
// failures + hangs), and a dead measurement path — and prints the full
// CalibrationReport for each, showing retries, rejected samples, watchdog
// timeouts, and finally the graceful fall-back to the spec-derived model.
// See docs/robustness.md for the policies on display here.
#include <cstdio>
#include <vector>

#include "faults/fault_injector.h"
#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"

namespace {

struct Scenario {
  const char* title;
  const char* blurb;
  grophecy::faults::FaultPlan plan;
};

}  // namespace

int main() {
  using namespace grophecy;

  const hw::MachineSpec machine = hw::anl_eureka();
  pcie::CalibrationOptions options = pcie::CalibrationOptions::robust();
  // Tight watchdog so the flaky scenario's hangs surface as timeouts
  // rather than as (astronomically) slow samples.
  options.robustness.timeout_s = 1.0;

  const Scenario scenarios[] = {
      {"healthy link", "no faults; robustness machinery stays idle",
       faults::FaultPlan{}},
      {"paper SS V-A outliers", "5% of transfers take 2x the expected time",
       faults::FaultPlan::paper_outliers(0.05, 2.0)},
      {"flaky link", "20% transient failures, 2% hangs (caught by watchdog)",
       faults::FaultPlan::flaky(0.2, 0.02)},
      {"dead measurement path", "every observation throws; expect fallback",
       faults::FaultPlan::broken()},
  };

  for (const Scenario& scenario : scenarios) {
    std::printf("=== %s ===\n(%s)\n\n", scenario.title, scenario.blurb);
    pcie::SimulatedBus bus(machine.pcie, 7);
    faults::FaultInjector faulty(bus, scenario.plan);
    const pcie::CalibrationReport report =
        pcie::TransferCalibrator(options).calibrate_robust(
            faulty, hw::HostMemory::kPinned, &machine.pcie);
    std::printf("%s", report.describe().c_str());
    const faults::FaultStats& stats = faulty.stats();
    std::printf(
        "  injected: %llu calls, %llu slow, %llu failures, %llu hangs\n\n",
        static_cast<unsigned long long>(stats.calls),
        static_cast<unsigned long long>(stats.slow),
        static_cast<unsigned long long>(stats.failures),
        static_cast<unsigned long long>(stats.hangs));
  }
  std::printf(
      "(the ladder never throws at the caller: measurements are retried, "
      "outliers rejected, hangs timed out, and only when a direction is "
      "unmeasurable does the pipeline degrade — on record — to the "
      "spec-derived model)\n");
  return 0;
}
