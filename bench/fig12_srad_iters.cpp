// Reproduces Figure 12: measured and predicted GPU speedup of SRAD as a
// function of iteration count for a 4096 x 4096 image. The paper reports
// the transfer-aware prediction is more than twice as accurate for all
// iteration counts below 228 and a limit error of only 0.75%.
#include "sweep_common.h"

int main() {
  grophecy::bench::print_iteration_sweep("SRAD", "4096 x 4096", "Figure 12",
                                         0.75);
  return 0;
}
