// Micro-benchmarks (google-benchmark) for the BRS section algebra — the
// inner loop of data-usage analysis. Analysis cost matters because
// GROPHECY++ runs it for every explored transformation of every kernel.
#include <benchmark/benchmark.h>

#include "brs/extract.h"
#include "brs/section.h"
#include "brs/section_set.h"
#include "skeleton/builder.h"
#include "util/rng.h"

namespace {

using namespace grophecy;

brs::DimSection random_dim(util::Rng& rng) {
  return brs::DimSection::range(rng.uniform_int(0, 100),
                                rng.uniform_int(100, 4096),
                                rng.uniform_int(1, 8));
}

void BM_DimIntersect(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<brs::DimSection> sections;
  for (int i = 0; i < 256; ++i) sections.push_back(random_dim(rng));
  std::size_t idx = 0;
  for (auto _ : state) {
    const auto& a = sections[idx % sections.size()];
    const auto& b = sections[(idx + 7) % sections.size()];
    benchmark::DoNotOptimize(brs::intersect(a, b));
    ++idx;
  }
}
BENCHMARK(BM_DimIntersect);

void BM_DimUnionWithExactness(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<brs::DimSection> sections;
  for (int i = 0; i < 256; ++i) sections.push_back(random_dim(rng));
  std::size_t idx = 0;
  for (auto _ : state) {
    const auto& a = sections[idx % sections.size()];
    const auto& b = sections[(idx + 13) % sections.size()];
    benchmark::DoNotOptimize(brs::unite(a, b));
    benchmark::DoNotOptimize(brs::union_is_exact(a, b));
    ++idx;
  }
}
BENCHMARK(BM_DimUnionWithExactness);

void BM_SectionSetCoverQuery(benchmark::State& state) {
  skeleton::ArrayDecl decl{"a", skeleton::ElemType::kF32,
                           {state.range(0)}, false};
  auto section = [&](std::int64_t lo, std::int64_t hi) {
    brs::Section s = brs::Section::whole(0, decl);
    s.whole_array = false;
    s.dims[0] = brs::DimSection::range(lo, hi);
    return s;
  };
  brs::SectionSet set;
  const std::int64_t chunk = state.range(0) / 16;
  for (int i = 0; i < 16; i += 2)
    set.add(section(i * chunk, (i + 1) * chunk - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.covers(section(3 * chunk, 4 * chunk)));
  }
}
BENCHMARK(BM_SectionSetCoverQuery)->Arg(1 << 12)->Arg(1 << 20);

void BM_AccessExtractionStencil(benchmark::State& state) {
  skeleton::AppBuilder builder("bench");
  const auto a =
      builder.array("a", skeleton::ElemType::kF32,
                    {state.range(0), state.range(0)});
  skeleton::KernelBuilder& k = builder.kernel("k");
  k.parallel_loop("i", state.range(0)).parallel_loop("j", state.range(0));
  const skeleton::AffineExpr i = k.var("i"), j = k.var("j");
  k.statement(5.0)
      .load(a, {i, j})
      .load(a, {i.shifted(-1), j})
      .load(a, {i.shifted(1), j})
      .load(a, {i, j.shifted(-1)})
      .load(a, {i, j.shifted(1)});
  const skeleton::AppSkeleton app = builder.build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(brs::kernel_accesses(app, app.kernels[0]));
  }
}
BENCHMARK(BM_AccessExtractionStencil)->Arg(1024)->Arg(4096);

}  // namespace
