// micro_brs — BRS section-algebra throughput benchmark.
//
// Measures build-and-query rounds/second of the sorted-window SectionSet
// (brs/section_set.h) against the pinned pre-rewrite ReferenceSectionSet
// (linear scans, member-by-member subtraction) and emits a
// machine-readable BENCH_brs.json for scripts/bench_compare (the CI
// perf-smoke gate).
//
//   ./build/bench/micro_brs [--out FILE] [--quick]
//
// One round = add `n` sections to a fresh set, run `n` covers queries
// (half covered sub-ranges, half uncovered spans), then subtract a wide
// query from the set — the exact call mix the data-usage analyzer issues
// while tracking device-resident sections (paper §III-B). Both
// implementations run identical deterministic section sequences, so the
// fast/reference speedup isolates the algorithmic change. bench_compare
// gates on the speedups — they are machine-portable, unlike absolute
// throughput, which it only tracks as a warning. See docs/performance.md.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "brs/reference_section_set.h"
#include "brs/section.h"
#include "brs/section_set.h"
#include "skeleton/skeleton.h"
#include "util/rng.h"

namespace {

using namespace grophecy;

/// One pre-generated workload: the sections to add, the covers probes,
/// and the wide subtraction query, shared verbatim by both
/// implementations.
struct Round {
  std::vector<brs::Section> adds;
  std::vector<brs::Section> probes;
  brs::Section wide;
};

brs::Section make_section(const skeleton::ArrayDecl& decl, std::int64_t lo,
                          std::int64_t hi, std::int64_t stride = 1) {
  brs::Section s = brs::Section::whole(0, decl);
  s.whole_array = false;
  s.dims[0] = brs::DimSection::range(lo, hi, stride);
  return s;
}

/// `n` disjoint, non-adjacent chunks in shuffled insertion order — no
/// pair merges, so the set holds `n` members (the worst case for the
/// reference's linear scans).
Round chunk_round(const skeleton::ArrayDecl& decl, int n, util::Rng& rng) {
  const std::int64_t chunk = 64;
  Round round;
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i)
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.uniform_int(0, i))]);
  for (const std::int64_t i : order) {
    const std::int64_t lo = i * 2 * chunk;  // gap keeps unions inexact
    round.adds.push_back(make_section(decl, lo, lo + chunk - 1));
  }
  for (int i = 0; i < n; ++i) {
    const std::int64_t pick = rng.uniform_int(0, n - 1);
    const std::int64_t lo = pick * 2 * chunk;
    if (i % 2 == 0) {
      // Covered: a sub-range of one member.
      round.probes.push_back(make_section(decl, lo + 8, lo + chunk - 9));
    } else {
      // Uncovered: spans the gap into the next chunk.
      round.probes.push_back(make_section(decl, lo + 8, lo + chunk + 8));
    }
  }
  round.wide = make_section(decl, 0, n * 2 * chunk - 1);
  return round;
}

/// `n` strided sections with random phases — unions are mostly inexact,
/// and every operation exercises the stride-aware containment checks.
Round strided_round(const skeleton::ArrayDecl& decl, int n, util::Rng& rng) {
  const std::int64_t span = 256;
  Round round;
  for (int i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_int(0, n * 32);
    round.adds.push_back(make_section(decl, lo, lo + span, 4));
  }
  for (int i = 0; i < n; ++i) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const brs::DimSection& d = round.adds[pick].dims[0];
    if (i % 2 == 0) {
      // Covered: a stride-aligned sub-range of one member.
      round.probes.push_back(
          make_section(decl, d.lower + 8, d.lower + span - 8, 4));
    } else {
      round.probes.push_back(
          make_section(decl, d.lower + 1, d.lower + span + 1, 4));
    }
  }
  round.wide = make_section(decl, 0, n * 32 + span);
  return round;
}

/// Runs one full round against `Set` and folds a checksum so nothing is
/// optimized away.
template <typename Set>
std::int64_t run_round(const Round& round) {
  Set set;
  for (const brs::Section& s : round.adds) set.add(s);
  std::int64_t sink = 0;
  for (const brs::Section& p : round.probes) sink += set.covers(p) ? 1 : 0;
  sink += static_cast<std::int64_t>(set.subtract_from(round.wide).size());
  sink += set.bounding_union().dims[0].upper;
  return sink;
}

/// Calls `fn` until ~min_seconds of wall clock accumulate; returns
/// calls/second.
template <typename Fn>
double throughput(Fn&& fn, double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::int64_t calls = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++calls;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(calls) / elapsed;
}

struct Entry {
  std::string name;
  std::string pattern;
  int sections = 0;
  double throughput = 0.0;  ///< fast rounds / second
  double reference_per_sec = 0.0;
  double speedup = 0.0;
  double min_speedup = 1.0;
};

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"grophecy.bench_brs.v1\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"pattern\": \"%s\", \"sections\": %d,"
        " \"throughput\": %.6g, \"reference_per_sec\": %.6g,"
        " \"speedup\": %.6g, \"min_speedup\": %.3g}%s\n",
        e.name.c_str(), e.pattern.c_str(), e.sections, e.throughput,
        e.reference_per_sec, e.speedup, e.min_speedup,
        i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_brs.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", argv[0]);
      return 2;
    }
  }
  const double min_seconds = quick ? 0.02 : 0.15;

  const std::vector<int> sizes{64, 256, 1024};
  std::vector<Entry> entries;

  std::printf("%-20s %14s %14s %9s\n", "entry", "fast rounds/s",
              "ref rounds/s", "speedup");
  for (const char* pattern : {"chunks", "strided"}) {
    for (const int n : sizes) {
      skeleton::ArrayDecl decl{"a", skeleton::ElemType::kF32,
                               {static_cast<std::int64_t>(n) * 256}, false};
      util::Rng rng(static_cast<std::uint64_t>(n) * 7919 +
                    (pattern[0] == 'c' ? 1 : 2));
      const Round round = std::string(pattern) == "chunks"
                              ? chunk_round(decl, n, rng)
                              : strided_round(decl, n, rng);

      // On merge-free chunk workloads the two implementations must agree
      // on the checksum exactly. (Strided workloads may differ by a few
      // units: merge order changes which conservative answer each gives;
      // tests/brs_property_test.cpp pins both against the rasterized
      // oracle.)
      const std::int64_t fast_sink = run_round<brs::SectionSet>(round);
      const std::int64_t ref_sink = run_round<brs::ReferenceSectionSet>(round);
      if (pattern[0] == 'c' && fast_sink != ref_sink) {
        std::fprintf(stderr,
                     "FAIL: %s/%d checksum mismatch (fast %lld, ref %lld)\n",
                     pattern, n, static_cast<long long>(fast_sink),
                     static_cast<long long>(ref_sink));
        return 1;
      }

      Entry entry;
      entry.pattern = pattern;
      entry.sections = n;
      entry.name = std::string(pattern) + "/" + std::to_string(n);
      // Acceptance demands a measured speedup from 64 sections up; the
      // floors are set well under the measured ratios (see
      // bench/BENCH_brs.json) so slower CI machines do not flap, and
      // grow with n because the algorithmic gap does. Strided workloads
      // gain less (the window bound is loose when spans overlap), so
      // their floors are correspondingly lower.
      const bool chunks = pattern[0] == 'c';
      if (chunks) {
        entry.min_speedup = n >= 1024 ? 40.0 : (n >= 256 ? 20.0 : 8.0);
      } else {
        entry.min_speedup = n >= 1024 ? 4.0 : (n >= 256 ? 1.5 : 1.0);
      }
      entry.throughput =
          throughput([&] { (void)run_round<brs::SectionSet>(round); },
                     min_seconds);
      entry.reference_per_sec = throughput(
          [&] { (void)run_round<brs::ReferenceSectionSet>(round); },
          min_seconds);
      entry.speedup = entry.throughput / entry.reference_per_sec;
      std::printf("%-20s %14.0f %14.0f %8.1fx\n", entry.name.c_str(),
                  entry.throughput, entry.reference_per_sec, entry.speedup);
      entries.push_back(std::move(entry));
    }
  }

  write_json(entries, out_path);
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  bool ok = true;
  for (const Entry& entry : entries) {
    if (entry.speedup < entry.min_speedup) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx < required %.2fx\n",
                   entry.name.c_str(), entry.speedup, entry.min_speedup);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
