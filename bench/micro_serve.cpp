// micro_serve — daemon machinery benchmark and overload-robustness gate.
//
// Drives serve::Daemon through four traffic shapes and emits a
// machine-readable BENCH_serve.json for scripts/bench_compare (the CI
// perf-smoke gate):
//
//   steady/closed    16 synchronous clients against 4 workers: the happy
//                    path. Gates p99 latency; shedding must be ~zero.
//   burst/open       10k+ requests fired at once into a 256-deep queue:
//                    admission control must shed (within a sane window)
//                    and the *reply* path must stay fast for everyone —
//                    shed or served, p99 is bounded.
//   coalesce/hot     5k requests over 8 distinct specs: cross-request
//                    coalescing must absorb nearly all of them.
//   chaos/faults     a faults::FaultEngine scripting transient failures
//                    and hangs behind per-request deadlines: every
//                    request still gets exactly one reply, bounded p99.
//
//   ./build/bench/micro_serve [--out FILE] [--quick]
//
// The daemon runs a stub job function (deterministic busy-work) so the
// bench measures the serving machinery, not the projection pipeline.
// Latency gates are absolute per-entry ceilings (max_p99_ms) chosen an
// order of magnitude above a developer laptop's numbers: they catch a
// wedged queue or a lost wakeup, not a slow machine. Throughput is
// emitted for bench_compare's warn-only tracking. Every entry self-gates
// reply_rate == 1 — the exactly-one-reply contract under load is the
// acceptance bar of this bench, not a statistic.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "faults/fault_injector.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "util/jsonl.h"

namespace {

using grophecy::exec::JobSpec;
using grophecy::serve::Daemon;
using grophecy::serve::DaemonOptions;
using grophecy::serve::DaemonStats;
using Clock = std::chrono::steady_clock;

/// Deterministic busy-work standing in for a projection: hash-mixes for
/// roughly `cost_us` microseconds of CPU (calibrated per process, so the
/// bench's *ratios* are machine-independent even though wall time isn't).
class StubWork {
 public:
  explicit StubWork(double cost_us) {
    const auto start = Clock::now();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    std::uint64_t rounds = 0;
    while (std::chrono::duration<double, std::micro>(Clock::now() - start)
               .count() < 1000.0) {
      for (int i = 0; i < 1024; ++i) h = (h ^ rounds) * 0x100000001b3ULL;
      ++rounds;
    }
    rounds_per_us_ = std::max<std::uint64_t>(1, rounds / 1000);
    cost_rounds_ = static_cast<std::uint64_t>(
        cost_us * static_cast<double>(rounds_per_us_));
  }

  grophecy::core::ProjectionReport operator()(const JobSpec& spec) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t r = 0; r < cost_rounds_; ++r)
      h = (h ^ r) * 0x100000001b3ULL;
    grophecy::core::ProjectionReport report;
    report.app_name = spec.workload;
    report.machine_name = "stub";
    report.iterations = spec.iterations;
    report.predicted_kernel_s = 1e-3 + 1e-12 * static_cast<double>(h & 0xff);
    report.measured_kernel_s = 1.1e-3;
    report.predicted_transfer_s = 2e-3;
    report.measured_transfer_s = 2.1e-3;
    report.measured_cpu_s = 0.5;
    return report;
  }

 private:
  std::uint64_t rounds_per_us_ = 1;
  std::uint64_t cost_rounds_ = 0;
};

struct Entry {
  std::string name;
  std::int64_t requests = 0;
  double throughput = 0.0;    ///< Replies per wall second.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_p99_ms = 0.0;    ///< Gate: p99 must stay under this.
  double shed_rate = 0.0;
  double min_shed_rate = 0.0;  ///< Gate window on shed_rate...
  double max_shed_rate = 1.0;  ///< ...inclusive on both ends.
  double coalesce_rate = 0.0;
  double min_coalesce_rate = 0.0;
  double reply_rate = 0.0;     ///< Gate: must be exactly 1.0.
};

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) *
                          (rank - static_cast<double>(lo));
}

std::string project_line(long index, int spec_variants,
                         double deadline_ms = 0.0) {
  grophecy::util::FlatJson request;
  request.emplace_back("id", std::to_string(index));
  request.emplace_back("type", std::string("project"));
  request.emplace_back("workload", std::string(index % 2 ? "CFD" : "SRAD"));
  request.emplace_back("size", std::string("97K"));
  request.emplace_back(
      "iterations",
      static_cast<double>(1 + (index % std::max(1, spec_variants))));
  if (deadline_ms > 0.0) request.emplace_back("deadline_ms", deadline_ms);
  return grophecy::util::write_flat_json(request);
}

/// Collects per-request latencies and reply counts across threads.
struct Collector {
  std::mutex mutex;
  std::vector<double> latencies_ms;
  std::uint64_t replies = 0;

  Daemon::ReplyFn slot(Clock::time_point start) {
    return [this, start](const std::string&) {
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      std::lock_guard<std::mutex> lock(mutex);
      latencies_ms.push_back(ms);
      ++replies;
    };
  }
};

Entry finish_entry(Entry entry, Collector& collector, const DaemonStats& stats,
                   double wall_s) {
  entry.throughput =
      wall_s > 0.0 ? static_cast<double>(collector.replies) / wall_s : 0.0;
  entry.p50_ms = percentile(collector.latencies_ms, 0.50);
  entry.p99_ms = percentile(collector.latencies_ms, 0.99);
  const double received = static_cast<double>(stats.received);
  entry.shed_rate = received > 0.0
                        ? static_cast<double>(stats.shed) / received
                        : 0.0;
  entry.coalesce_rate =
      received > 0.0 ? static_cast<double>(stats.coalesce_hits) / received
                     : 0.0;
  entry.reply_rate =
      received > 0.0 ? static_cast<double>(stats.replies) / received : 0.0;
  std::printf("%-16s %8lld req %9.0f/s  p50 %8.3f ms  p99 %8.3f ms  "
              "shed %5.1f%%  coalesce %5.1f%%  replies %5.1f%%\n",
              entry.name.c_str(), static_cast<long long>(entry.requests),
              entry.throughput, entry.p50_ms, entry.p99_ms,
              entry.shed_rate * 100.0, entry.coalesce_rate * 100.0,
              entry.reply_rate * 100.0);
  return entry;
}

Entry bench_steady_closed(long requests, double cost_us) {
  DaemonOptions options;
  options.workers = 4;
  options.max_queue_depth = 256;
  options.job_fn = StubWork(cost_us);
  Daemon daemon(std::move(options));
  daemon.start();

  Collector collector;
  constexpr int kClients = 16;
  const auto wall_start = Clock::now();
  {
    std::vector<std::thread> clients;
    std::atomic<long> next{0};
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        for (long i = next.fetch_add(1); i < requests;
             i = next.fetch_add(1)) {
          const auto start = Clock::now();
          // Unique specs: this entry measures raw serving latency.
          (void)daemon.handle(project_line(i, 1 << 20));
          const double ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - start)
                                .count();
          std::lock_guard<std::mutex> lock(collector.mutex);
          collector.latencies_ms.push_back(ms);
          ++collector.replies;
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  daemon.shutdown();

  Entry entry;
  entry.name = "steady/closed";
  entry.requests = requests;
  entry.max_p99_ms = 200.0;
  entry.min_shed_rate = 0.0;
  entry.max_shed_rate = 0.001;  // 16 closed-loop clients never fill 256
  return finish_entry(std::move(entry), collector, daemon.stats(), wall_s);
}

Entry bench_burst_open(long requests, double cost_us) {
  DaemonOptions options;
  options.workers = 4;
  options.max_queue_depth = 256;
  options.job_fn = StubWork(cost_us);
  Daemon daemon(std::move(options));
  daemon.start();

  Collector collector;
  const auto wall_start = Clock::now();
  {
    std::vector<std::thread> submitters;
    for (int c = 0; c < 8; ++c) {
      submitters.emplace_back([&, c] {
        for (long i = c; i < requests; i += 8)
          daemon.handle_line(project_line(i, 1 << 20),
                             collector.slot(Clock::now()));
      });
    }
    for (std::thread& t : submitters) t.join();
  }
  daemon.shutdown(/*drain=*/true);  // waits for the accepted tail
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  Entry entry;
  entry.name = "burst/open";
  entry.requests = requests;
  // Shed replies are immediate and dominate; accepted jobs clear a
  // <=256-deep queue. Far under this ceiling unless the queue wedges.
  entry.max_p99_ms = 2000.0;
  // The gate: admission control *must* engage under a 10k burst (the
  // queue holds only 256), but must not reject effectively everything.
  entry.min_shed_rate = 0.05;
  entry.max_shed_rate = 0.995;
  return finish_entry(std::move(entry), collector, daemon.stats(), wall_s);
}

Entry bench_coalesce_hot(long requests, double cost_us) {
  DaemonOptions options;
  options.workers = 2;
  options.max_queue_depth = 64;
  options.job_fn = StubWork(cost_us);
  Daemon daemon(std::move(options));
  daemon.start();

  Collector collector;
  const auto wall_start = Clock::now();
  {
    std::vector<std::thread> submitters;
    for (int c = 0; c < 4; ++c) {
      submitters.emplace_back([&, c] {
        for (long i = c; i < requests; i += 4)
          // Only 8 distinct specs: nearly everything coalesces onto an
          // in-flight computation instead of executing.
          daemon.handle_line(project_line(i, 4),
                             collector.slot(Clock::now()));
      });
    }
    for (std::thread& t : submitters) t.join();
  }
  daemon.shutdown(/*drain=*/true);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  Entry entry;
  entry.name = "coalesce/hot";
  entry.requests = requests;
  entry.max_p99_ms = 2000.0;
  entry.max_shed_rate = 0.5;       // coalesced attaches are never shed
  entry.min_coalesce_rate = 0.50;  // the point of this entry
  return finish_entry(std::move(entry), collector, daemon.stats(), wall_s);
}

Entry bench_chaos_faults(long requests, double cost_us) {
  // Scripted chaos from the faults module: transient MeasurementErrors
  // (retried once) and rare hangs (sleeps far past the deadline, then
  // abandoned by the watchdog). The same engine the calibration
  // robustness suite trusts; serialized because the daemon's workers
  // share it.
  grophecy::faults::FaultPlan plan;
  plan.seed = 1234;
  plan.failure_probability = 0.15;
  plan.hang_probability = 0.01;
  plan.hang_factor = 4000.0;  // 25 us clean * 4000 = 100 ms >> the deadline
  auto engine = std::make_shared<grophecy::faults::FaultEngine>(plan);
  auto engine_mutex = std::make_shared<std::mutex>();
  StubWork work(cost_us);

  DaemonOptions options;
  options.workers = 4;
  options.max_queue_depth = 256;
  options.max_retries = 1;
  options.default_deadline_s = 0.060;
  options.job_fn = [engine, engine_mutex, work](const JobSpec& spec) {
    double perturbed_us;
    {
      std::lock_guard<std::mutex> lock(*engine_mutex);
      perturbed_us = engine->transform(1.0) * 25.0;  // hang => 100 ms naps
    }
    if (perturbed_us > 100.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(perturbed_us));
    return work(spec);
  };
  Daemon daemon(std::move(options));
  daemon.start();

  Collector collector;
  const auto wall_start = Clock::now();
  {
    std::vector<std::thread> submitters;
    for (int c = 0; c < 8; ++c) {
      submitters.emplace_back([&, c] {
        for (long i = c; i < requests; i += 8)
          daemon.handle_line(project_line(i, 1 << 20, /*deadline_ms=*/60.0),
                             collector.slot(Clock::now()));
      });
    }
    for (std::thread& t : submitters) t.join();
  }
  daemon.shutdown(/*drain=*/true);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  Entry entry;
  entry.name = "chaos/faults";
  entry.requests = requests;
  // Every accepted request resolves within (deadline + watchdog slack);
  // shed ones resolve immediately. A wedged worker would blow this.
  entry.max_p99_ms = 2000.0;
  entry.max_shed_rate = 0.995;
  return finish_entry(std::move(entry), collector, daemon.stats(), wall_s);
}

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"grophecy.bench_serve.v1\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"requests\": %lld, \"throughput\": %.6g,"
        " \"p50_ms\": %.6g, \"p99_ms\": %.6g, \"max_p99_ms\": %.6g,"
        " \"shed_rate\": %.6g, \"min_shed_rate\": %.6g,"
        " \"max_shed_rate\": %.6g, \"coalesce_rate\": %.6g,"
        " \"min_coalesce_rate\": %.6g, \"reply_rate\": %.6g}%s\n",
        e.name.c_str(), static_cast<long long>(e.requests), e.throughput,
        e.p50_ms, e.p99_ms, e.max_p99_ms, e.shed_rate, e.min_shed_rate,
        e.max_shed_rate, e.coalesce_rate, e.min_coalesce_rate, e.reply_rate,
        i + 1 < entries.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", argv[0]);
      return 2;
    }
  }

  // Stub job cost ~200 us: heavy enough that a 10k burst must shed
  // against 4 workers, light enough that the whole bench stays seconds.
  const double cost_us = 200.0;
  const long scale = quick ? 10 : 1;

  std::vector<Entry> entries;
  entries.push_back(bench_steady_closed(4000 / scale, cost_us));
  entries.push_back(bench_burst_open(12000 / scale, cost_us));
  entries.push_back(bench_coalesce_hot(5000 / scale, cost_us));
  entries.push_back(bench_chaos_faults(3000 / scale, cost_us));

  write_json(entries, out_path);
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  // Self-gate: the same bars scripts/bench_compare enforces, so a bare
  // `./micro_serve` run fails loudly without the comparison script.
  bool ok = true;
  for (const Entry& entry : entries) {
    if (entry.reply_rate != 1.0) {
      std::fprintf(stderr, "FAIL %s: reply_rate %.6f != 1 — requests went "
                           "unanswered\n",
                   entry.name.c_str(), entry.reply_rate);
      ok = false;
    }
    if (entry.p99_ms > entry.max_p99_ms) {
      std::fprintf(stderr, "FAIL %s: p99 %.3f ms exceeds ceiling %.0f ms\n",
                   entry.name.c_str(), entry.p99_ms, entry.max_p99_ms);
      ok = false;
    }
    if (entry.shed_rate < entry.min_shed_rate ||
        entry.shed_rate > entry.max_shed_rate) {
      std::fprintf(stderr,
                   "FAIL %s: shed_rate %.4f outside [%.3f, %.3f]\n",
                   entry.name.c_str(), entry.shed_rate, entry.min_shed_rate,
                   entry.max_shed_rate);
      ok = false;
    }
    if (entry.coalesce_rate < entry.min_coalesce_rate) {
      std::fprintf(stderr, "FAIL %s: coalesce_rate %.4f below %.3f\n",
                   entry.name.c_str(), entry.coalesce_rate,
                   entry.min_coalesce_rate);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
