// micro_surrogate — the two-tier surrogate serving benchmark.
//
// Three entries, emitted as BENCH_surrogate.json
// (schema grophecy.bench_surrogate.v1) for scripts/bench_compare:
//
//   * latency/warm_grid   median per-query latency of the surrogate fast
//                         tier vs the exact cohort pipeline on the warm
//                         paper-suite grid. Acceptance: >= 50x.
//   * heldout/rel_error   surrogate accuracy on iteration counts it never
//                         trained on (the ungated model, so the gate
//                         cannot hide errors). Acceptance: p95 relative
//                         error of the total-time scalars <= 10%.
//   * two_tier/traffic    a surrogate-enabled serve::Daemon and a
//                         surrogate-disabled one fed identical traffic
//                         (novel phase, then repeats): the fallback rate
//                         must sit in a sane window — a tier that answers
//                         nothing is dead weight, one that answers
//                         everything is ungated — and every
//                         fallback-served reply must be byte-identical
//                         to the disabled daemon's (fallback_exact).
//
//   ./build/bench/micro_surrogate [--out FILE] [--quick]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/sweep_request.h"
#include "hw/registry.h"
#include "serve/daemon.h"
#include "surrogate/engine.h"
#include "util/stats.h"

namespace {

using namespace grophecy;
using Clock = std::chrono::steady_clock;

struct Config {
  const char* workload;
  const char* size;
};
const std::vector<Config> kConfigs{
    {"CFD", "97K"}, {"HotSpot", "1024 x 1024"}, {"SRAD", "2048 x 2048"}};

// The paper's iteration-sweep grid (what warm traffic asks for)...
const std::vector<int> kTrainIters{1, 2, 4, 8, 16, 32, 64, 128};
// ...and the points between them, which the model never trains on.
const std::vector<int> kHeldoutIters{3, 6, 12, 24, 48, 96};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One bench entry: a name plus heterogeneous numeric fields (latency
/// entries gate on speedup, accuracy entries on err_p95, traffic entries
/// on the fallback window — scripts/bench_compare applies each gate only
/// where its field is present).
struct Entry {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
  void add(const std::string& key, double value) {
    fields.emplace_back(key, value);
  }
  double get(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return v;
    return 0.0;
  }
};

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"grophecy.bench_surrogate.v1\",\n"
      << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "    {\"name\": \"" << entries[i].name << "\"";
    for (const auto& [key, value] : entries[i].fields) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", value);
      out << ", \"" << key << "\": " << buf;
    }
    out << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

std::string request_line(const std::string& id, const Config& config,
                         int iterations) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"id\":\"%s\",\"type\":\"project\",\"workload\":\"%s\","
                "\"size\":\"%s\",\"iterations\":%d}",
                id.c_str(), config.workload, config.size, iterations);
  return buf;
}

bool served_by_surrogate(const std::string& reply) {
  return reply.find("\"tier\":\"surrogate\"") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_surrogate.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--quick]\n", argv[0]);
      return 2;
    }
  }

  const hw::MachineSpec machine = hw::anl_eureka();
  const exec::SweepEngine::JobFn job_fn =
      exec::SweepRequest::on(machine).job_fn();

  std::vector<exec::JobSpec> grid;
  for (const Config& config : kConfigs)
    for (const int iters : kTrainIters)
      grid.push_back({config.workload, config.size, iters, ""});

  // --- exact-tier latency on the warm grid, building the training pool
  // along the way. The first call pays calibration + cold artifact
  // caches; warm it untimed so both tiers are measured in steady state.
  (void)job_fn(grid.front());
  std::vector<double> exact_s;
  std::vector<surrogate::TrainingSample> samples;
  for (const exec::JobSpec& spec : grid) {
    const auto start = Clock::now();
    const core::ProjectionReport report = job_fn(spec);
    exact_s.push_back(seconds_since(start));
    surrogate::TrainingSample sample;
    sample.fingerprint = spec.fingerprint();
    sample.features = surrogate::extract_features(spec.workload,
                                                  spec.size_label,
                                                  spec.iterations, machine);
    sample.targets = surrogate::targets_of(report);
    samples.push_back(std::move(sample));
  }

  // --- surrogate-tier latency through the full engine path (machine
  // resolution + feature extraction + predict + confidence gate).
  core::SurrogateOptions fast_options;
  fast_options.enabled = true;
  fast_options.min_train_points = 8;
  fast_options.refit_interval = 1000;  // fit_now below is the only fit
  fast_options.max_rel_error = 0.25;
  surrogate::SurrogateEngine engine(fast_options, machine);
  for (const surrogate::TrainingSample& sample : samples)
    engine.observe(sample);
  engine.fit_now();

  bool ok = true;
  for (const exec::JobSpec& spec : grid) {  // warm-up + serve check
    if (!engine.try_predict(spec)) {
      std::fprintf(stderr, "FAIL: surrogate refused warm grid point %s\n",
                   spec.key().c_str());
      ok = false;
    }
  }
  const int reps = quick ? 10 : 100;
  std::vector<double> fast_s;
  for (int rep = 0; rep < reps; ++rep) {
    for (const exec::JobSpec& spec : grid) {
      const auto start = Clock::now();
      volatile bool hit = engine.try_predict(spec).has_value();
      (void)hit;
      fast_s.push_back(seconds_since(start));
    }
  }

  std::vector<Entry> entries;
  {
    Entry entry;
    entry.name = "latency/warm_grid";
    const double exact_median = util::median(exact_s);
    const double fast_median = util::median(fast_s);
    entry.add("speedup", exact_median / fast_median);
    entry.add("min_speedup", 50.0);
    entry.add("exact_ms", exact_median * 1e3);
    entry.add("surrogate_us", fast_median * 1e6);
    entries.push_back(std::move(entry));
  }

  // --- held-out accuracy: iteration counts between the training grid,
  // scored against the exact pipeline with the gate bypassed (raw model).
  const std::shared_ptr<const surrogate::SurrogateModel> model =
      engine.model();
  std::vector<double> err_pred;
  std::vector<double> err_meas;
  for (const Config& config : kConfigs) {
    for (const int iters : kHeldoutIters) {
      const exec::JobSpec spec{config.workload, config.size, iters, ""};
      const core::ProjectionReport truth = job_fn(spec);
      const surrogate::Prediction guess = model->predict(
          surrogate::extract_features(spec.workload, spec.size_label,
                                      spec.iterations, machine));
      const double predicted_total =
          guess.targets.values[0] + guess.targets.values[1];
      const double measured_total =
          guess.targets.values[2] + guess.targets.values[3];
      err_pred.push_back(std::abs(predicted_total - truth.predicted_total_s()) /
                         truth.predicted_total_s());
      err_meas.push_back(std::abs(measured_total - truth.measured_total_s()) /
                         truth.measured_total_s());
    }
  }
  {
    Entry entry;
    entry.name = "heldout/rel_error";
    entry.add("err_p95", std::max(util::percentile(err_pred, 95.0),
                                  util::percentile(err_meas, 95.0)));
    entry.add("max_err_p95", 0.10);
    entry.add("err_p50", std::max(util::percentile(err_pred, 50.0),
                                  util::percentile(err_meas, 50.0)));
    entries.push_back(std::move(entry));
  }

  // --- two-tier daemon traffic: novel phase then repeats, mirrored onto
  // a surrogate-disabled daemon for byte-compare of fallback replies.
  {
    serve::DaemonOptions with;
    with.machine = machine;
    with.workers = 2;
    with.projection.surrogate.enabled = true;
    with.projection.surrogate.min_train_points = 12;
    with.projection.surrogate.refit_interval = 8;
    serve::DaemonOptions without = with;
    without.projection.surrogate.enabled = false;
    serve::Daemon fast_daemon(with);
    serve::Daemon exact_daemon(without);
    fast_daemon.start();
    exact_daemon.start();

    int mismatches = 0;
    int compared = 0;
    const auto run_phase = [&](const char* phase) {
      int index = 0;
      for (const Config& config : kConfigs) {
        for (const int iters : kTrainIters) {
          const std::string id =
              std::string(phase) + "-" + std::to_string(index++);
          const std::string line = request_line(id, config, iters);
          const std::string fast_reply = fast_daemon.handle(line);
          const std::string exact_reply = exact_daemon.handle(line);
          if (served_by_surrogate(fast_reply)) continue;
          ++compared;
          if (fast_reply != exact_reply) ++mismatches;
        }
      }
    };
    run_phase("novel");
    // Let the background refit absorb the novel phase before the repeats.
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (Clock::now() < deadline) {
      const serve::DaemonStats stats = fast_daemon.stats();
      if (stats.surrogate_refits >= 1 && stats.surrogate_pool >= 12) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    run_phase("repeat");

    const serve::DaemonStats stats = fast_daemon.stats();
    const double asked = static_cast<double>(stats.surrogate_served +
                                             stats.surrogate_fallbacks);
    Entry entry;
    entry.name = "two_tier/traffic";
    entry.add("fallback_rate",
              asked > 0.0
                  ? static_cast<double>(stats.surrogate_fallbacks) / asked
                  : 1.0);
    entry.add("min_fallback_rate", 0.10);
    entry.add("max_fallback_rate", 0.90);
    entry.add("fallback_exact", compared > 0 && mismatches == 0 ? 1.0 : 0.0);
    entry.add("served", static_cast<double>(stats.surrogate_served));
    entry.add("fallbacks", static_cast<double>(stats.surrogate_fallbacks));
    entry.add("refits", static_cast<double>(stats.surrogate_refits));
    entries.push_back(std::move(entry));

    fast_daemon.shutdown();
    exact_daemon.shutdown();
  }

  std::printf("%-22s %s\n", "entry", "fields");
  for (const Entry& entry : entries) {
    std::printf("%-22s", entry.name.c_str());
    for (const auto& [key, value] : entry.fields)
      std::printf(" %s=%.4g", key.c_str(), value);
    std::printf("\n");
  }
  write_json(entries, out_path);
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());

  // Self-gates: the same bars bench_compare applies to the committed
  // baseline, so the bench fails loudly even when run standalone.
  for (const Entry& entry : entries) {
    if (entry.name == "latency/warm_grid" &&
        entry.get("speedup") < entry.get("min_speedup")) {
      std::fprintf(stderr, "FAIL: %s speedup %.1fx < required %.1fx\n",
                   entry.name.c_str(), entry.get("speedup"),
                   entry.get("min_speedup"));
      ok = false;
    }
    if (entry.name == "heldout/rel_error" &&
        entry.get("err_p95") > entry.get("max_err_p95")) {
      std::fprintf(stderr, "FAIL: %s err_p95 %.4f > ceiling %.4f\n",
                   entry.name.c_str(), entry.get("err_p95"),
                   entry.get("max_err_p95"));
      ok = false;
    }
    if (entry.name == "two_tier/traffic") {
      const double rate = entry.get("fallback_rate");
      if (rate < entry.get("min_fallback_rate") ||
          rate > entry.get("max_fallback_rate")) {
        std::fprintf(stderr,
                     "FAIL: %s fallback_rate %.4f outside [%.2f, %.2f]\n",
                     entry.name.c_str(), rate,
                     entry.get("min_fallback_rate"),
                     entry.get("max_fallback_rate"));
        ok = false;
      }
      if (entry.get("fallback_exact") != 1.0) {
        std::fprintf(stderr,
                     "FAIL: %s — a fallback reply diverged from the "
                     "surrogate-disabled daemon\n",
                     entry.name.c_str());
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
