// Reproduces Figure 6: error magnitude of transfer predictions versus
// error magnitude of kernel predictions, one point per (application, data
// size). The transfer error is the overall error across all of the
// transfers for a single data size; the kernel error likewise aggregates
// all kernels (paper caption).
//
// Shape checks: CFD's kernel error dominates (the model cannot see the
// replay/latency cost of its data-dependent gathers); HotSpot and SRAD sit
// at ~10% or below for both axes at most sizes.
//
// The grid runs through exec::SweepRequest on the SweepEngine worker pool;
// per-job deterministic seeds keep the table byte-identical for any worker
// count.
#include <cstdio>
#include <iostream>

#include "exec/sweep_request.h"
#include "hw/registry.h"
#include "util/table.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  std::vector<std::string> names;
  for (const auto& workload : workloads::paper_workloads())
    names.push_back(workload->name());

  exec::SweepEngine engine;
  const exec::SweepSummary summary = exec::SweepRequest::on(hw::anl_eureka())
                                         .workloads(names)
                                         .sizes(exec::all_sizes)
                                         .run(engine);

  util::TextTable table({"Application", "Data Size", "Kernel error",
                         "Transfer error", "Dominant"});
  for (std::size_t index = 0; index < summary.outcomes.size(); ++index) {
    const exec::JobOutcome& outcome = summary.outcomes[index];
    if (!outcome.ok()) {
      table.add_row({outcome.spec.workload, outcome.spec.size_label,
                     std::string("failed: ") + to_string(outcome.error->kind),
                     "-", "-"});
    } else {
      const core::ProjectionReport& report = *outcome.report;
      const double kernel_err = report.kernel_error_pct();
      const double transfer_err = report.transfer_error_pct();
      table.add_row({outcome.spec.workload, outcome.spec.size_label,
                     strfmt("%.1f%%", kernel_err),
                     strfmt("%.1f%%", transfer_err),
                     kernel_err > transfer_err ? "kernel" : "transfer"});
    }
    if (index + 1 == summary.outcomes.size() ||
        summary.outcomes[index + 1].spec.workload != outcome.spec.workload)
      table.add_separator();
  }

  std::printf("Figure 6 — transfer vs kernel prediction error per "
              "(application, data size)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "fig06_error_scatter");
  return 0;
}
