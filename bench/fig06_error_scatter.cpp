// Reproduces Figure 6: error magnitude of transfer predictions versus
// error magnitude of kernel predictions, one point per (application, data
// size). The transfer error is the overall error across all of the
// transfers for a single data size; the kernel error likewise aggregates
// all kernels (paper caption).
//
// Shape checks: CFD's kernel error dominates (the model cannot see the
// replay/latency cost of its data-dependent gathers); HotSpot and SRAD sit
// at ~10% or below for both axes at most sizes.
#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"
#include "workloads/workload.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  core::ExperimentRunner runner;
  util::TextTable table({"Application", "Data Size", "Kernel error",
                         "Transfer error", "Dominant"});

  for (const auto& workload : workloads::paper_workloads()) {
    for (const workloads::DataSize& size : workload->paper_data_sizes()) {
      core::ProjectionReport report = runner.run(*workload, size);
      const double kernel_err = report.kernel_error_pct();
      const double transfer_err = report.transfer_error_pct();
      table.add_row({workload->name(), size.label,
                     strfmt("%.1f%%", kernel_err),
                     strfmt("%.1f%%", transfer_err),
                     kernel_err > transfer_err ? "kernel" : "transfer"});
    }
    table.add_separator();
  }

  std::printf("Figure 6 — transfer vs kernel prediction error per "
              "(application, data size)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "fig06_error_scatter");
  return 0;
}
