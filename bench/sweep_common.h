// Shared drivers for the speedup-sweep figures (Figs. 7-12): speedup vs
// data size and speedup vs iteration count, each printing measured speedup,
// the prediction with data transfer time, and the prediction without it.
//
// Both drivers declare their grid through exec::SweepRequest and run it on
// exec::SweepEngine: a configuration that fails or hangs becomes a
// structured entry in the sweep summary instead of aborting the bench, and
// the remaining rows still print. Jobs execute on the engine's worker pool
// (all cores by default; GROPHECY_SWEEP_WORKERS=1 forces the serial path)
// with per-job deterministic seeds, so every table is byte-identical for
// any worker count. All jobs of a bench share one calibration via the
// process-wide pcie::CalibrationCache.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exec/sweep_request.h"
#include "hw/registry.h"
#include "util/ascii_chart.h"
#include "util/table.h"

namespace grophecy::bench {

/// Engine options shared by the sweep benches: worker count from
/// GROPHECY_SWEEP_WORKERS when set (0 = all cores), all cores otherwise.
inline exec::SweepOptions bench_sweep_options() {
  exec::SweepOptions options;
  if (const char* env = std::getenv("GROPHECY_SWEEP_WORKERS")) {
    const int workers = std::atoi(env);
    if (workers >= 0) options.workers = workers;
  }
  return options;
}

/// Prints the engine's account of a sweep that did not go cleanly; silent
/// for an all-ok run so healthy benches keep their exact output.
inline void report_sweep_health(const exec::SweepSummary& summary) {
  if (summary.failed > 0 || summary.degraded || summary.retried > 0)
    std::printf("\n%s", summary.describe().c_str());
}

/// Figs. 7/9/11: speedup across the paper's data sizes (one iteration).
inline void print_size_sweep(const std::string& workload_name,
                             const char* figure) {
  exec::SweepEngine engine(bench_sweep_options());
  const exec::SweepSummary summary = exec::SweepRequest::on(hw::anl_eureka())
                                         .workloads({workload_name})
                                         .sizes(exec::all_sizes)
                                         .run(engine);

  util::TextTable table({"Data Size", "Measured", "Predicted w/ transfer",
                         "err", "Predicted w/o transfer", "err"});
  for (const exec::JobOutcome& outcome : summary.outcomes) {
    if (!outcome.ok()) {
      table.add_row({outcome.spec.size_label,
                     std::string("failed: ") + to_string(outcome.error->kind),
                     "-", "-", "-", "-"});
      continue;
    }
    const core::ProjectionReport& report = *outcome.report;
    table.add_row({
        outcome.spec.size_label,
        util::strfmt("%.2fx", report.measured_speedup()),
        util::strfmt("%.2fx", report.predicted_speedup_both()),
        util::strfmt("%.0f%%", report.speedup_error_both_pct()),
        util::strfmt("%.2fx", report.predicted_speedup_kernel_only()),
        util::strfmt("%.0f%%", report.speedup_error_kernel_only_pct()),
    });
  }
  std::printf("%s — measured and predicted GPU speedup for %s across data "
              "sizes\n\n",
              figure, workload_name.c_str());
  table.print(std::cout);
  util::export_csv_if_requested(table, std::string("size_sweep_") + workload_name);
  report_sweep_health(summary);
}

/// Figs. 8/10/12: speedup as a function of iteration count for one data
/// size, including the iteration->infinity limit. Prints how long the
/// transfer-aware prediction stays at least twice as accurate.
inline void print_iteration_sweep(const std::string& workload_name,
                                  const std::string& size_label,
                                  const char* figure,
                                  double paper_limit_error_pct) {
  const std::vector<int> iteration_counts = {1,  2,  4,  8,   16,  32,
                                             64, 128, 256, 512};
  exec::SweepEngine engine(bench_sweep_options());
  const exec::SweepSummary summary = exec::SweepRequest::on(hw::anl_eureka())
                                         .workloads({workload_name})
                                         .sizes({size_label})
                                         .iterations(iteration_counts)
                                         .run(engine);

  util::TextTable table({"Iterations", "Measured", "Pred w/ transfer",
                         "err", "Pred w/o transfer", "err"});
  int twice_as_accurate_until = 0;
  double limit_error = 0.0;
  std::vector<double> xs, measured, with_transfer, without_transfer;
  for (const exec::JobOutcome& outcome : summary.outcomes) {
    const int iterations = outcome.spec.iterations;
    if (!outcome.ok()) {
      table.add_row({util::strfmt("%d", iterations),
                     std::string("failed: ") + to_string(outcome.error->kind),
                     "-", "-", "-", "-"});
      continue;
    }
    const core::ProjectionReport& report = *outcome.report;
    const double with_err = report.speedup_error_both_pct();
    const double without_err = report.speedup_error_kernel_only_pct();
    if (with_err * 2.0 <= without_err)
      twice_as_accurate_until = iterations;
    xs.push_back(iterations);
    measured.push_back(report.measured_speedup());
    with_transfer.push_back(report.predicted_speedup_both());
    without_transfer.push_back(report.predicted_speedup_kernel_only());
    table.add_row({
        util::strfmt("%d", iterations),
        util::strfmt("%.2fx", report.measured_speedup()),
        util::strfmt("%.2fx", report.predicted_speedup_both()),
        util::strfmt("%.0f%%", with_err),
        util::strfmt("%.2fx", report.predicted_speedup_kernel_only()),
        util::strfmt("%.0f%%", without_err),
    });
    limit_error = report.speedup_error_limit_pct();
    if (iterations == iteration_counts.back()) {
      table.add_row({
          "inf",
          util::strfmt("%.2fx", report.measured_speedup_limit()),
          util::strfmt("%.2fx", report.predicted_speedup_limit()),
          util::strfmt("%.1f%%", limit_error),
          util::strfmt("%.2fx", report.predicted_speedup_limit()),
          util::strfmt("%.1f%%", limit_error),
      });
    }
  }

  std::printf("%s — GPU speedup of %s (%s) vs iteration count\n\n", figure,
              workload_name.c_str(), size_label.c_str());
  table.print(std::cout);
  util::export_csv_if_requested(table, std::string("iter_sweep_") + workload_name);

  util::AsciiChart chart(64, 14);
  chart.set_x_log(true);
  chart.set_x_label("iterations (log)");
  chart.set_y_label("GPU speedup");
  // Draw order: measured last so its marker survives overdraw where the
  // transfer-aware prediction coincides with it.
  chart.add_series("pred w/o transfer", '.', xs, without_transfer);
  chart.add_series("pred w/ transfer", '+', xs, with_transfer);
  chart.add_series("measured", 'o', xs, measured);
  std::printf("\n%s", chart.to_string().c_str());

  std::printf("\ntransfer-aware prediction at least 2x more accurate through "
              "%d iterations; limit error %.1f%% (paper: %.2f%%)\n",
              twice_as_accurate_until, limit_error, paper_limit_error_pct);
  report_sweep_health(summary);
}

}  // namespace grophecy::bench
