// Shared drivers for the speedup-sweep figures (Figs. 7-12): speedup vs
// data size and speedup vs iteration count, each printing measured speedup,
// the prediction with data transfer time, and the prediction without it.
//
// Both drivers run their grid through exec::SweepEngine rather than a bare
// serial loop: a configuration that fails or hangs becomes a structured
// entry in the sweep summary instead of aborting the bench, and the
// remaining rows still print. In the fault-free path the engine executes
// the same projections in the same order, so the tables are byte-identical
// to the pre-engine output (and the summary stays silent).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "exec/sweep.h"
#include "util/ascii_chart.h"
#include "util/contracts.h"
#include "util/table.h"
#include "workloads/workload.h"

namespace grophecy::bench {

/// Prints the engine's account of a sweep that did not go cleanly; silent
/// for an all-ok run so healthy benches keep their exact output.
inline void report_sweep_health(const exec::SweepSummary& summary) {
  if (summary.failed > 0 || summary.degraded || summary.retried > 0)
    std::printf("\n%s", summary.describe().c_str());
}

/// Figs. 7/9/11: speedup across the paper's data sizes (one iteration).
inline void print_size_sweep(const std::string& workload_name,
                             const char* figure) {
  const auto all = workloads::paper_workloads();
  const workloads::Workload& workload =
      workloads::find_workload(all, workload_name);
  core::ExperimentRunner runner;

  std::vector<exec::JobSpec> jobs;
  for (const workloads::DataSize& size : workload.paper_data_sizes())
    jobs.push_back({workload_name, size.label, 1});

  exec::SweepEngine engine;
  const exec::SweepSummary summary =
      engine.run(jobs, [&](const exec::JobSpec& spec) {
        return runner.run(workload,
                          workloads::find_data_size(workload, spec.size_label),
                          spec.iterations);
      });

  util::TextTable table({"Data Size", "Measured", "Predicted w/ transfer",
                         "err", "Predicted w/o transfer", "err"});
  for (const exec::JobOutcome& outcome : summary.outcomes) {
    if (!outcome.ok()) {
      table.add_row({outcome.spec.size_label,
                     "failed: " + outcome.error->kind, "-", "-", "-", "-"});
      continue;
    }
    const core::ProjectionReport& report = *outcome.report;
    table.add_row({
        outcome.spec.size_label,
        util::strfmt("%.2fx", report.measured_speedup()),
        util::strfmt("%.2fx", report.predicted_speedup_both()),
        util::strfmt("%.0f%%", report.speedup_error_both_pct()),
        util::strfmt("%.2fx", report.predicted_speedup_kernel_only()),
        util::strfmt("%.0f%%", report.speedup_error_kernel_only_pct()),
    });
  }
  std::printf("%s — measured and predicted GPU speedup for %s across data "
              "sizes\n\n",
              figure, workload_name.c_str());
  table.print(std::cout);
  util::export_csv_if_requested(table, std::string("size_sweep_") + workload_name);
  report_sweep_health(summary);
}

/// Figs. 8/10/12: speedup as a function of iteration count for one data
/// size, including the iteration->infinity limit. Prints how long the
/// transfer-aware prediction stays at least twice as accurate.
inline void print_iteration_sweep(const std::string& workload_name,
                                  const std::string& size_label,
                                  const char* figure,
                                  double paper_limit_error_pct) {
  const auto all = workloads::paper_workloads();
  const workloads::Workload& workload =
      workloads::find_workload(all, workload_name);
  const workloads::DataSize size =
      workloads::find_data_size(workload, size_label);
  GROPHECY_EXPECTS(size.param != 0);

  core::ExperimentRunner runner;
  util::TextTable table({"Iterations", "Measured", "Pred w/ transfer",
                         "err", "Pred w/o transfer", "err"});

  const std::vector<int> iteration_counts = {1,  2,  4,  8,   16,  32,
                                             64, 128, 256, 512};
  std::vector<exec::JobSpec> jobs;
  for (int iterations : iteration_counts)
    jobs.push_back({workload_name, size_label, iterations});

  exec::SweepEngine engine;
  const exec::SweepSummary summary =
      engine.run(jobs, [&](const exec::JobSpec& spec) {
        return runner.run(workload, size, spec.iterations);
      });

  int twice_as_accurate_until = 0;
  double limit_error = 0.0;
  std::vector<double> xs, measured, with_transfer, without_transfer;
  for (const exec::JobOutcome& outcome : summary.outcomes) {
    const int iterations = outcome.spec.iterations;
    if (!outcome.ok()) {
      table.add_row({util::strfmt("%d", iterations),
                     "failed: " + outcome.error->kind, "-", "-", "-", "-"});
      continue;
    }
    const core::ProjectionReport& report = *outcome.report;
    const double with_err = report.speedup_error_both_pct();
    const double without_err = report.speedup_error_kernel_only_pct();
    if (with_err * 2.0 <= without_err)
      twice_as_accurate_until = iterations;
    xs.push_back(iterations);
    measured.push_back(report.measured_speedup());
    with_transfer.push_back(report.predicted_speedup_both());
    without_transfer.push_back(report.predicted_speedup_kernel_only());
    table.add_row({
        util::strfmt("%d", iterations),
        util::strfmt("%.2fx", report.measured_speedup()),
        util::strfmt("%.2fx", report.predicted_speedup_both()),
        util::strfmt("%.0f%%", with_err),
        util::strfmt("%.2fx", report.predicted_speedup_kernel_only()),
        util::strfmt("%.0f%%", without_err),
    });
    limit_error = report.speedup_error_limit_pct();
    if (iterations == iteration_counts.back()) {
      table.add_row({
          "inf",
          util::strfmt("%.2fx", report.measured_speedup_limit()),
          util::strfmt("%.2fx", report.predicted_speedup_limit()),
          util::strfmt("%.1f%%", limit_error),
          util::strfmt("%.2fx", report.predicted_speedup_limit()),
          util::strfmt("%.1f%%", limit_error),
      });
    }
  }

  std::printf("%s — GPU speedup of %s (%s) vs iteration count\n\n", figure,
              workload_name.c_str(), size_label.c_str());
  table.print(std::cout);
  util::export_csv_if_requested(table, std::string("iter_sweep_") + workload_name);

  util::AsciiChart chart(64, 14);
  chart.set_x_log(true);
  chart.set_x_label("iterations (log)");
  chart.set_y_label("GPU speedup");
  // Draw order: measured last so its marker survives overdraw where the
  // transfer-aware prediction coincides with it.
  chart.add_series("pred w/o transfer", '.', xs, without_transfer);
  chart.add_series("pred w/ transfer", '+', xs, with_transfer);
  chart.add_series("measured", 'o', xs, measured);
  std::printf("\n%s", chart.to_string().c_str());

  std::printf("\ntransfer-aware prediction at least 2x more accurate through "
              "%d iterations; limit error %.1f%% (paper: %.2f%%)\n",
              twice_as_accurate_until, limit_error, paper_limit_error_pct);
  report_sweep_health(summary);
}

}  // namespace grophecy::bench
