// Reproduces Figure 4: absolute value of the percent difference between
// predicted and measured transfer times for transfers to and from the GPU
// across all power-of-two sizes from 1 B to 512 MB (pinned memory).
//
// Paper results this bench checks for shape: max error 6.4% (H2D) and 3.3%
// (D2H); mean error 2.0% and 0.8%; error essentially zero above 1 MB.
// Also reproduces the §V-A noise-floor experiment: using one full run of
// measurements to predict a second run yields mean errors of ~1.0%/0.7%,
// showing most residual error is inherent transfer-time variation.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "hw/registry.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace grophecy;
  using hw::Direction;
  using hw::HostMemory;
  using util::strfmt;

  const hw::MachineSpec machine = hw::anl_eureka();
  pcie::SimulatedBus bus(machine.pcie, /*seed=*/2013);
  pcie::TransferCalibrator calibrator;
  pcie::SimulatedBus calibration_bus(machine.pcie, /*seed=*/7);
  const pcie::BusModel model =
      calibrator.calibrate(calibration_bus, HostMemory::kPinned);

  constexpr int kRuns = 10;
  util::TextTable table({"Size", "H2D error", "D2H error"});

  std::vector<double> h2d_errors, d2h_errors;
  std::vector<double> h2d_large, d2h_large;  // > 1 MB
  std::map<Direction, std::map<std::uint64_t, double>> run1, run2;

  for (std::uint64_t bytes = 1; bytes <= 512 * util::kMiB; bytes *= 2) {
    auto err = [&](Direction dir) {
      const double measured =
          bus.measure_mean(bytes, dir, HostMemory::kPinned, kRuns);
      run1[dir][bytes] = measured;
      run2[dir][bytes] =
          bus.measure_mean(bytes, dir, HostMemory::kPinned, kRuns);
      const double predicted = model.predict_seconds(bytes, dir);
      return util::error_magnitude_percent(predicted, measured);
    };
    const double h2d = err(Direction::kHostToDevice);
    const double d2h = err(Direction::kDeviceToHost);
    h2d_errors.push_back(h2d);
    d2h_errors.push_back(d2h);
    if (bytes > util::kMiB) {
      h2d_large.push_back(h2d);
      d2h_large.push_back(d2h);
    }
    table.add_row({util::format_bytes(bytes), strfmt("%.2f%%", h2d),
                   strfmt("%.2f%%", d2h)});
  }

  std::printf("Figure 4 — linear-model error magnitude per transfer size\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "fig04_model_error");

  std::printf("\nmax error:  H2D %.1f%% (paper 6.4%%), D2H %.1f%% (paper 3.3%%)\n",
              util::max_value(h2d_errors), util::max_value(d2h_errors));
  std::printf("mean error: H2D %.1f%% (paper 2.0%%), D2H %.1f%% (paper 0.8%%)\n",
              util::mean(h2d_errors), util::mean(d2h_errors));
  std::printf("mean error above 1MB: H2D %.2f%%, D2H %.2f%% (paper: "
              "essentially zero)\n",
              util::mean(h2d_large), util::mean(d2h_large));

  // Noise floor: run 1 predicts run 2.
  std::vector<double> h2d_noise, d2h_noise;
  for (const auto& [bytes, value] : run1[Direction::kHostToDevice])
    h2d_noise.push_back(util::error_magnitude_percent(
        value, run2[Direction::kHostToDevice][bytes]));
  for (const auto& [bytes, value] : run1[Direction::kDeviceToHost])
    d2h_noise.push_back(util::error_magnitude_percent(
        value, run2[Direction::kDeviceToHost][bytes]));
  std::printf("noise floor (run1 predicts run2): H2D %.1f%% (paper 1.0%%), "
              "D2H %.1f%% (paper 0.7%%)\n",
              util::mean(h2d_noise), util::mean(d2h_noise));
  return 0;
}
