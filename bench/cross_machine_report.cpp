// cross_machine_report — same skeleton, every machine (ROADMAP item 1).
//
// One SweepRequest fans the four paper workloads across every machine in
// hw::MachineRegistry::global() (PCIe gen1 through gen5-class buses), then
// ranks the fleet per (workload, data size) by predicted total GPU time
// and attributes each win to compute, transfer, or occupancy: the paper's
// thesis is that transfer modeling changes porting verdicts, and across a
// gen1->gen5 fleet the *reason* a machine wins flips visibly between bus
// and device.
//
//   ./build/bench/cross_machine_report [--out FILE] [--workers N]
//                                      [--shards N] [--journal FILE]
//
// Attribution (winner vs. runner-up, predicted):
//   * "transfer"  — the bus saves more time than the device does;
//   * "occupancy" — the device saves more, and the winner keeps
//                   meaningfully more of its SMs occupied (the win comes
//                   from geometry, not raw FLOPs/bandwidth);
//   * "compute"   — the device saves more at comparable occupancy.
//
// Emits BENCH_machines.json (schema grophecy.bench_machines.v1) for
// scripts/bench_compare: winners and reasons gate (the projections are
// seeded and deterministic), margins only warn. The sweep runs on the
// shared engine — deterministic per-job seeds, per-machine single-flight
// calibration, optional process sharding — so the gate exercises the
// whole cross-machine path, not a bespoke loop.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "exec/sweep_request.h"
#include "hw/architecture.h"
#include "hw/machine_registry.h"
#include "hw/registry.h"
#include "pcie/calibration_cache.h"
#include "util/table.h"
#include "workloads/workload.h"

namespace {

using namespace grophecy;

/// One machine's projection of one (workload, size) grid point.
struct MachineRow {
  std::string machine;
  double kernel_s = 0.0;
  double transfer_s = 0.0;
  double total_s = 0.0;
  double occupancy = 0.0;  ///< Predicted-time-weighted SM occupancy.
  std::string bound;       ///< Dominant kernel bound, predicted-time-weighted.
};

/// Weighted occupancy and dominant bound over a report's kernels.
void summarize_kernels(const core::ProjectionReport& report, MachineRow& row) {
  double weight = 0.0;
  double occupancy = 0.0;
  std::map<std::string, double> bound_weight;
  for (const core::KernelResult& kernel : report.kernels) {
    occupancy += kernel.projected.time.occupancy.fraction * kernel.predicted_s;
    bound_weight[kernel.projected.time.bound] += kernel.predicted_s;
    weight += kernel.predicted_s;
  }
  if (weight <= 0.0) return;
  row.occupancy = occupancy / weight;
  double best = -1.0;
  for (const auto& [name, w] : bound_weight) {
    if (w > best) {
      best = w;
      row.bound = name;
    }
  }
}

struct Entry {
  std::string workload;
  std::string size;
  int machines = 0;
  std::string winner;
  std::string runner_up;
  std::string reason;      // "compute" | "transfer" | "occupancy"
  double margin_pct = 0.0; ///< Runner-up total over winner total, percent.
  double winner_total_ms = 0.0;
};

/// Why the winner beats the runner-up (see file comment).
std::string attribute(const MachineRow& winner, const MachineRow& runner_up) {
  const double kernel_gain = runner_up.kernel_s - winner.kernel_s;
  const double transfer_gain = runner_up.transfer_s - winner.transfer_s;
  if (transfer_gain > kernel_gain) return "transfer";
  if (winner.occupancy > runner_up.occupancy + 0.10) return "occupancy";
  return "compute";
}

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"grophecy.bench_machines.v1\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << util::strfmt(
        "    {\"workload\": \"%s\", \"size\": \"%s\", \"machines\": %d,"
        " \"winner\": \"%s\", \"runner_up\": \"%s\", \"reason\": \"%s\","
        " \"margin_pct\": %.6g, \"winner_total_ms\": %.6g}%s\n",
        e.workload.c_str(), e.size.c_str(), e.machines, e.winner.c_str(),
        e.runner_up.c_str(), e.reason.c_str(), e.margin_pct,
        e.winner_total_ms, i + 1 < entries.size() ? "," : "");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_machines.json";
  exec::SweepOptions sweep;
  sweep.workers = 0;
  if (const char* env = std::getenv("GROPHECY_SWEEP_WORKERS")) {
    const int workers = std::atoi(env);
    if (workers >= 0) sweep.workers = workers;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      sweep.workers = std::atoi(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      sweep.shards = std::atoi(argv[++i]);
    } else if (arg == "--journal" && i + 1 < argc) {
      sweep.journal_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--workers N] [--shards N] "
                   "[--journal FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  const hw::MachineRegistry& registry = hw::MachineRegistry::global();
  std::printf("Cross-machine projection: %zu registered machines\n\n",
              registry.size());

  std::vector<std::string> workload_names;
  for (const auto& workload : workloads::paper_workloads())
    workload_names.push_back(workload->name());

  // ONE request: (every machine) x (every paper workload) x (every paper
  // size). Per-machine calibration flows through the single-flight
  // pcie::CalibrationCache; per-job seeds keep the result independent of
  // worker/shard count.
  exec::SweepEngine engine(sweep);
  const exec::SweepSummary summary = exec::SweepRequest::on(hw::anl_eureka())
                                         .machines(exec::all_machines)
                                         .workloads(workload_names)
                                         .sizes(exec::all_sizes)
                                         .run(engine);

  // Regroup the outcomes: (workload, size) -> per-machine rows, machines
  // in registry order (the grid's outermost axis).
  std::vector<std::pair<std::string, std::string>> grid_points;
  std::map<std::pair<std::string, std::string>, std::vector<MachineRow>> rows;
  bool all_ok = true;
  for (const exec::JobOutcome& outcome : summary.outcomes) {
    const auto point =
        std::make_pair(outcome.spec.workload, outcome.spec.size_label);
    if (!outcome.ok()) {
      std::fprintf(stderr, "FAIL: job %s [%s]: %s\n",
                   outcome.spec.key().c_str(), to_string(outcome.error->kind),
                   outcome.error->message.c_str());
      all_ok = false;
      continue;
    }
    if (rows.find(point) == rows.end()) grid_points.push_back(point);
    MachineRow row;
    row.machine = outcome.spec.machine;
    row.kernel_s = outcome.report->predicted_kernel_s;
    row.transfer_s = outcome.report->predicted_transfer_s;
    row.total_s = outcome.report->predicted_total_s();
    summarize_kernels(*outcome.report, row);
    rows[point].push_back(row);
  }

  std::vector<Entry> entries;
  for (const auto& point : grid_points) {
    std::vector<MachineRow> ranked = rows[point];
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const MachineRow& a, const MachineRow& b) {
                       return a.total_s < b.total_s;
                     });

    std::printf("== %s %s ==\n", point.first.c_str(), point.second.c_str());
    util::TextTable table({"rank", "machine", "family", "pcie", "kernel ms",
                           "transfer ms", "total ms", "occ", "bound"});
    for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
      const MachineRow& row = ranked[rank];
      const hw::MachineSpec& spec = registry.find(row.machine);
      table.add_row({util::strfmt("%zu", rank + 1), row.machine,
                     spec.gpu.family,
                     util::strfmt("gen%d x%d", spec.pcie.generation,
                                  spec.pcie.lanes),
                     util::strfmt("%.3f", row.kernel_s * 1e3),
                     util::strfmt("%.3f", row.transfer_s * 1e3),
                     util::strfmt("%.3f", row.total_s * 1e3),
                     util::strfmt("%.0f%%", row.occupancy * 100.0),
                     row.bound});
    }
    std::printf("%s", table.to_string().c_str());

    if (ranked.size() >= 2) {
      Entry entry;
      entry.workload = point.first;
      entry.size = point.second;
      entry.machines = static_cast<int>(ranked.size());
      entry.winner = ranked[0].machine;
      entry.runner_up = ranked[1].machine;
      entry.reason = attribute(ranked[0], ranked[1]);
      entry.margin_pct =
          (ranked[1].total_s / ranked[0].total_s - 1.0) * 100.0;
      entry.winner_total_ms = ranked[0].total_s * 1e3;
      std::printf("winner: %s (+%.1f%% over %s) — %s\n\n",
                  entry.winner.c_str(), entry.margin_pct,
                  entry.runner_up.c_str(), entry.reason.c_str());
      entries.push_back(std::move(entry));
    } else {
      std::printf("\n");
    }
  }

  // Per-machine single-flight calibration: one miss per distinct bus.
  const pcie::CalibrationCache::Stats cache =
      pcie::CalibrationCache::instance().stats();
  std::printf("calibrations: %llu (cache served %llu) for %zu machines\n",
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.hits), registry.size());

  write_json(entries, out_path);
  std::printf("wrote %s (%zu entries)\n", out_path.c_str(), entries.size());
  return all_ok ? 0 : 1;
}
