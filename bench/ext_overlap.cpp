// Extension study: can streamed transfer/compute overlap win back the
// offloads the paper's serial model rejects?
//
// For chunkable workloads (element-wise vector add; Stassuij's
// independent-row SpMM) this sweeps chunk counts with the calibrated
// linear bus model and compares the serial projection against the best
// pipelined one. The answer sharpens the paper's conclusion: overlap can
// hide min(kernel, transfer) at best, and since transfer *dominates* every
// paper workload, even perfect pipelining leaves the bus as the bottleneck
// — it narrows the loss but does not flip Stassuij's verdict.
#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "core/overlap.h"
#include "skeleton/builder.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/workload.h"

namespace {

grophecy::skeleton::AppSkeleton vector_add(std::int64_t n) {
  using namespace grophecy::skeleton;
  AppBuilder builder("vector_add");
  const ArrayId a = builder.array("a", ElemType::kF32, {n});
  const ArrayId b = builder.array("b", ElemType::kF32, {n});
  const ArrayId c = builder.array("c", ElemType::kF32, {n});
  KernelBuilder& k = builder.kernel("add");
  k.parallel_loop("i", n);
  k.statement(1.0).load(a, {k.var("i")}).load(b, {k.var("i")}).store(
      c, {k.var("i")});
  return builder.build();
}

}  // namespace

int main() {
  using namespace grophecy;
  using util::strfmt;

  core::Grophecy engine(hw::anl_eureka());
  core::OverlapAnalyzer analyzer(engine.bus_model());

  util::TextTable table({"Workload", "Serial projected", "Best overlapped",
                         "Chunks", "Pipeline speedup", "GPU speedup",
                         "w/ overlap"});

  auto add_row = [&](const std::string& name,
                     const core::ProjectionReport& report) {
    const core::OverlapProjection overlap = analyzer.best(report);
    table.add_row({
        name,
        util::format_time(overlap.serial_s),
        util::format_time(overlap.overlapped_s),
        strfmt("%d", overlap.chunks),
        strfmt("%.2fx", overlap.speedup()),
        strfmt("%.2fx", report.predicted_speedup_both()),
        strfmt("%.2fx", report.measured_cpu_s / overlap.overlapped_s),
    });
  };

  add_row("vector_add 64MB", engine.project(vector_add(16 * 1024 * 1024)));

  const auto all = workloads::paper_workloads();
  const auto& stassuij = *all[3];
  add_row("Stassuij",
          engine.project(stassuij.make_skeleton(
              stassuij.paper_data_sizes().front(), 1)));

  std::printf("Extension: streamed transfer/compute overlap projection\n");
  std::printf("(chunked pipeline priced with the calibrated T(d)=a+b*d "
              "model; per-chunk alpha is why\ninfinite chunking loses)\n\n");
  table.print(std::cout);
  util::export_csv_if_requested(table, "ext_overlap");
  std::printf("\nEven optimally pipelined, transfer-dominated offloads stay "
              "bus-bound: overlap hides\nmin(kernel, transfer), and the "
              "paper showed transfer is the larger term everywhere.\n");
  return 0;
}
