// Command-line projection tool: project a .gskel code skeleton on any
// registered machine without writing C++.
//
//   project_skeleton <file.gskel> [machine] [--iterations N] [--advise]
//                    [--machine-file <file.gmach>]
//   project_skeleton --list-machines
//
//   machine         any registry machine name (default anl_eureka); see
//                   --list-machines for the registered fleet
//   --machine-file  project against a user-defined .gmach machine
//   --iterations    overrides the skeleton's iteration count
//   --advise        also print the pinned/pageable memory-mode plan
//
// Example:
//   build/examples/project_skeleton examples/skeletons/matmul.gskel
#include <cstdio>
#include <cstring>
#include <string>

#include "core/grophecy.h"
#include "util/contracts.h"
#include "core/memory_advisor.h"
#include "hw/machine_file.h"
#include "hw/machine_registry.h"
#include "hw/registry.h"
#include "skeleton/parse.h"
#include "skeleton/print.h"

int main(int argc, char** argv) {
  using namespace grophecy;

  if (argc >= 2 && std::strcmp(argv[1], "--list-machines") == 0) {
    for (const auto& m : hw::MachineRegistry::global().machines())
      std::printf("%-18s %s + %s over %s\n", m->name.c_str(),
                  m->cpu.name.c_str(), m->gpu.name.c_str(),
                  m->pcie.name.c_str());
    return 0;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.gskel> [machine] [--iterations N] "
                 "[--advise]\n       %s --list-machines\n",
                 argv[0], argv[0]);
    return 2;
  }

  std::string machine_name = "anl_eureka";
  std::string machine_file;
  int iterations_override = 0;
  bool advise = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations_override = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--machine-file") == 0 && i + 1 < argc) {
      machine_file = argv[++i];
    } else if (std::strcmp(argv[i], "--advise") == 0) {
      advise = true;
    } else {
      machine_name = argv[i];
    }
  }

  try {
    // The cached entry points serve repeated projections of the same
    // document from the process-wide content-addressed parse caches.
    skeleton::AppSkeleton app = *skeleton::parse_skeleton_file_cached(argv[1]);
    if (iterations_override > 0) app.iterations = iterations_override;

    std::printf("%s\n", skeleton::to_string(app).c_str());

    const hw::MachineSpec machine =
        machine_file.empty() ? hw::machine_by_name(machine_name)
                             : *hw::parse_machine_file_cached(machine_file);
    core::Grophecy engine(machine);
    std::printf("machine: %s (%s, %s)\n", machine.name.c_str(),
                machine.gpu.name.c_str(), machine.pcie.name.c_str());
    std::printf("calibrated bus: H2D %s | D2H %s\n\n",
                engine.bus_model().h2d.describe().c_str(),
                engine.bus_model().d2h.describe().c_str());

    const core::ProjectionReport report = engine.project(app);
    std::printf("%s\n", report.describe().c_str());

    if (advise) {
      core::MemoryModeAdvisor advisor(machine);
      std::printf("%s", advisor.advise(app).describe().c_str());
    }
    return 0;
  } catch (const grophecy::ParseError& e) {
    // what() already names the offending file and line.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const grophecy::Error& e) {
    // An unknown machine name lands here (UsageError, listing the fleet).
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const grophecy::ContractViolation& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
