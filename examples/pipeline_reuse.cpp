// Inter-kernel data reuse and the dataflow analyzer (paper §III-B).
//
// "In some cases, the data transfer overhead is so high that it can only
// be mitigated if the same data is reused by multiple kernels." This
// example builds an image-processing pipeline (blur -> gradient ->
// threshold) two ways:
//
//   * fragmented: each stage offloaded independently — every intermediate
//     crosses the PCIe bus twice;
//   * fused pipeline: all three kernels offloaded together — the data-usage
//     analyzer proves the intermediates never need to move, and hints mark
//     them as GPU-resident temporaries.
//
// The printed transfer plans and projections quantify what reuse buys.
#include <cstdio>
#include <iostream>

#include "core/grophecy.h"
#include "dataflow/usage_analyzer.h"
#include "hw/registry.h"
#include "skeleton/builder.h"
#include "skeleton/print.h"
#include "util/units.h"

namespace {

using namespace grophecy;
using skeleton::AffineExpr;
using skeleton::AppBuilder;
using skeleton::AppSkeleton;
using skeleton::ArrayId;
using skeleton::ElemType;
using skeleton::KernelBuilder;

constexpr std::int64_t kN = 4096;

void add_blur(AppBuilder& app, ArrayId src, ArrayId dst) {
  KernelBuilder& k = app.kernel("blur");
  k.parallel_loop("i", kN).parallel_loop("j", kN);
  const AffineExpr i = k.var("i"), j = k.var("j");
  k.statement(9.0)
      .load(src, {i, j})
      .load(src, {i.shifted(-1), j})
      .load(src, {i.shifted(1), j})
      .load(src, {i, j.shifted(-1)})
      .load(src, {i, j.shifted(1)})
      .store(dst, {i, j});
}

void add_gradient(AppBuilder& app, ArrayId src, ArrayId dst) {
  KernelBuilder& k = app.kernel("gradient");
  k.parallel_loop("i", kN).parallel_loop("j", kN);
  const AffineExpr i = k.var("i"), j = k.var("j");
  k.statement(6.0, 1.0)  // sqrt for the magnitude
      .load(src, {i, j})
      .load(src, {i.shifted(1), j})
      .load(src, {i, j.shifted(1)})
      .store(dst, {i, j});
}

void add_threshold(AppBuilder& app, ArrayId src, ArrayId dst) {
  KernelBuilder& k = app.kernel("threshold");
  k.parallel_loop("i", kN).parallel_loop("j", kN);
  const AffineExpr i = k.var("i"), j = k.var("j");
  k.statement(2.0).load(src, {i, j}).store(dst, {i, j});
}

AppSkeleton single_stage(const char* name,
                         void (*stage)(AppBuilder&, ArrayId, ArrayId)) {
  AppBuilder app(name);
  const ArrayId in = app.array("in", ElemType::kF32, {kN, kN});
  const ArrayId out = app.array("out", ElemType::kF32, {kN, kN});
  stage(app, in, out);
  return app.build();
}

AppSkeleton fused_pipeline() {
  AppBuilder app("fused_pipeline");
  const ArrayId image = app.array("image", ElemType::kF32, {kN, kN});
  const ArrayId blurred = app.array("blurred", ElemType::kF32, {kN, kN});
  const ArrayId grad = app.array("grad", ElemType::kF32, {kN, kN});
  const ArrayId edges = app.array("edges", ElemType::kF32, {kN, kN});
  app.temporary(blurred).temporary(grad);
  add_blur(app, image, blurred);
  add_gradient(app, blurred, grad);
  add_threshold(app, grad, edges);
  return app.build();
}

}  // namespace

int main() {
  core::Grophecy engine(hw::anl_eureka());
  dataflow::UsageAnalyzer analyzer;

  std::printf("=== Fragmented: each stage offloaded on its own ===\n");
  double fragmented_total = 0.0;
  for (const AppSkeleton& stage :
       {single_stage("blur_only", add_blur),
        single_stage("gradient_only", add_gradient),
        single_stage("threshold_only", add_threshold)}) {
    core::ProjectionReport report = engine.project(stage);
    std::printf("%-16s transfers %s, projected total %s\n",
                stage.name.c_str(),
                util::format_bytes(report.plan.total_bytes()).c_str(),
                util::format_time(report.predicted_total_s()).c_str());
    fragmented_total += report.predicted_total_s();
  }
  std::printf("fragmented pipeline total: %s\n\n",
              util::format_time(fragmented_total).c_str());

  std::printf("=== Fused: one offload, intermediates stay on the GPU ===\n");
  const AppSkeleton fused = fused_pipeline();
  std::printf("%s\n", analyzer.analyze(fused).describe().c_str());
  core::ProjectionReport report = engine.project(fused);
  std::printf("fused pipeline total: %s (%.2fx faster than fragmented)\n",
              util::format_time(report.predicted_total_s()).c_str(),
              fragmented_total / report.predicted_total_s());
  std::printf(
      "\nThe analyzer proved 'blurred' and 'grad' never cross the bus: "
      "reads of both are\ncovered by prior on-GPU writes, and the temporary "
      "hints skip their copy-back.\n");
  return 0;
}
