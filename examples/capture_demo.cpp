// Skeleton capture demo: from instrumented CPU code to a GPU projection,
// with no hand-written skeleton at all.
//
// The paper's code skeletons were written by hand (§II-C). This demo
// instruments a real computation — a Gauss-Seidel-flavored red-black
// relaxation, complete with boundary guards and a gather through a
// permutation table — runs it once on a small grid, and lets the Recorder
// infer the skeleton: loop nest, stencil shifts, the strided red/black
// access, and the data-dependent gather with its loop dependences. The
// inferred skeleton is then serialized (so you can inspect exactly what
// was recovered) and projected on the paper's machine.
#include <cstdio>
#include <vector>

#include "capture/recorder.h"
#include "core/grophecy.h"
#include "hw/registry.h"
#include "skeleton/serialize.h"
#include "util/rng.h"

int main() {
  using namespace grophecy;
  using skeleton::ElemType;

  const std::int64_t n = 48;  // capture size: small on purpose
  util::Rng rng(7);
  std::vector<std::int64_t> permutation;
  for (std::int64_t i = 0; i < n; ++i)
    permutation.push_back(rng.uniform_int(0, n - 1));

  capture::Recorder rec("redblack");
  const capture::ArrayHandle grid = rec.array("grid", ElemType::kF32, {n, n});
  const capture::ArrayHandle rhs = rec.array("rhs", ElemType::kF32, {n, n});

  // The instrumented computation: update every red cell (i + 2j pattern)
  // from its neighbors and a permuted row of the right-hand side.
  rec.begin_kernel("relax_red");
  rec.declare_loop("i", 0, n, /*parallel=*/true);
  rec.declare_loop("j", 0, n / 2, /*parallel=*/true);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n / 2; ++j) {
      rec.iteration({i, j});
      const std::int64_t col = 2 * j + (i % 2);  // red cells — but we
      // instrument the even-column half to stay affine: col' = 2j.
      (void)col;
      rec.load(grid, {i, 2 * j}, "center");
      if (i > 0) rec.load(grid, {i - 1, 2 * j}, "north");
      if (i < n - 1) rec.load(grid, {i + 1, 2 * j}, "south");
      rec.load(rhs, {permutation[i], 2 * j}, "gathered_rhs");
      rec.flops(6);
      rec.special(1);  // the relaxation divides by the diagonal
      rec.store(grid, {i, 2 * j}, "update");
    }
  }
  rec.end_kernel();
  rec.iterations(40);  // the real solver would sweep many times

  const skeleton::AppSkeleton inferred = rec.infer();
  std::printf("inferred skeleton (from the instrumented run):\n\n%s\n",
              skeleton::serialize_skeleton(inferred).c_str());

  core::Grophecy engine(hw::anl_eureka());
  const core::ProjectionReport report = engine.project(inferred);
  std::printf("%s", report.describe().c_str());
  std::printf(
      "\nNote what inference recovered without being told: the stride-2 "
      "red sweep, the\nguarded i±1 stencil shifts, and that 'gathered_rhs' "
      "is a gather whose hidden row\ndepends only on loop i (so it is NOT "
      "scatter-class on the GPU: warps stride along\nthe affine column "
      "dimension).\n");
  return 0;
}
