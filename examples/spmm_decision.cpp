// Sparse-times-dense offload decision (the paper's Stassuij story, §V-B4).
//
// Stassuij is the paper's cautionary tale: the kernel-only projection says
// the GPU wins (1.10x), but data transfer turns the port into a 0.39x
// slowdown. This example reproduces that decision for a range of dense
// column counts and shows where (if anywhere) the offload starts paying:
// as the dense operand grows, compute scales with the data and the ratio
// barely moves — SpMM at this sparsity never escapes the bus.
#include <cstdio>
#include <iostream>

#include "core/grophecy.h"
#include "hw/registry.h"
#include "util/table.h"
#include "workloads/stassuij.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  core::Grophecy engine(hw::anl_eureka());

  util::TextTable table({"Dense cols", "Kernel-only", "With transfer",
                         "Verdict from kernel-only", "Honest verdict"});

  for (std::int64_t cols : {512, 2048, 8192, 32768}) {
    workloads::StassuijConfig config;
    config.dense_cols = cols;
    const skeleton::AppSkeleton app =
        workloads::stassuij_skeleton(config, 1);
    core::ProjectionReport report = engine.project(app);
    const double naive = report.predicted_speedup_kernel_only();
    const double honest = report.predicted_speedup_both();
    table.add_row({strfmt("%lld", static_cast<long long>(cols)),
                   strfmt("%.2fx", naive), strfmt("%.2fx", honest),
                   naive > 1.0 ? "offload" : "stay",
                   honest > 1.0 ? "offload" : "stay"});
  }

  std::printf("Sparse x dense offload decision (Stassuij-class kernel, "
              "machine: %s)\n\n",
              engine.machine().name.c_str());
  table.print(std::cout);
  std::printf(
      "\nThe kernel-only column recommends offloading a kernel that would "
      "actually slow the\napplication down — exactly the misprediction "
      "GROPHECY++ was built to prevent (paper §V-B4).\n");
  return 0;
}
