// Machine survey: the same application projected across PCIe generations.
//
// The paper validates on one PCIe v1 machine but argues the technique is
// system independent ("the PCIe bus model is constructed automatically for
// each new system"). This example runs a real workload (the OpenMP SRAD
// reference is also executed once to show the functional code) through
// every machine in the global registry — the three builtins plus every
// shipped `.gmach` spec in src/hw/machines/, PCIe gen1 through gen5 — and
// prints how the offload verdict shifts as the bus and GPU generations
// advance.
#include <cstdio>
#include <iostream>

#include "core/grophecy.h"
#include "hw/machine_registry.h"
#include "util/table.h"
#include "workloads/srad.h"
#include "workloads/srad_ref.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  // First show the actual computation this skeleton stands for: a few
  // iterations of the real OpenMP SRAD on a small image.
  workloads::SradReference ref(256, /*seed=*/1);
  const double variance_before = ref.image_variance();
  ref.run(10);
  std::printf("SRAD reference run (256x256, 10 iters): speckle variance "
              "%.4f -> %.4f\n\n",
              variance_before, ref.image_variance());

  util::TextTable table({"Machine", "Bus", "Calibrated H2D", "Kernel-only",
                         "With transfer", "Verdict"});

  const hw::MachineRegistry& registry = hw::MachineRegistry::global();
  for (const auto& machine : registry.machines()) {
    core::Grophecy engine(*machine);
    const skeleton::AppSkeleton app = workloads::srad_skeleton(2048, 4);
    core::ProjectionReport report = engine.project(app);
    const double honest = report.predicted_speedup_both();
    table.add_row({machine->name, machine->pcie.name,
                   engine.bus_model().h2d.describe(),
                   strfmt("%.1fx", report.predicted_speedup_kernel_only()),
                   strfmt("%.1fx", honest),
                   honest > 1.0 ? "offload" : "stay on CPU"});
  }

  std::printf("SRAD 2048x2048, 4 iterations, projected per machine (%zu "
              "registered):\n\n",
              registry.size());
  table.print(std::cout);
  std::printf(
      "\nThe calibration adapts to each link automatically; no model "
      "parameters were\nedited between rows. Drop a .gmach file in a "
      "GROPHECY_MACHINE_PATH directory\nto add a row for your own system.\n");
  return 0;
}
