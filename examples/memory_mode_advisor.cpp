// Memory-mode planning (the paper's §VII future work, implemented).
//
// The paper assumes pinned memory everywhere because transfers are faster,
// but pinning pages is itself expensive. This example asks the advisor to
// plan host-memory modes for the Stassuij workload — whose plan mixes two
// multi-megabyte dense matrices with three tiny CSR vectors — and prints
// the per-array decision: pin the big buffers, malloc the small ones.
#include <cstdio>

#include "core/memory_advisor.h"
#include "hw/registry.h"
#include "util/units.h"
#include "workloads/stassuij.h"

int main() {
  using namespace grophecy;

  core::MemoryModeAdvisor advisor(hw::anl_eureka());

  std::printf("calibrated transfer models:\n  pinned   H2D %s\n  pageable "
              "H2D %s\n",
              advisor.pinned_model().h2d.describe().c_str(),
              advisor.pageable_model().h2d.describe().c_str());
  std::printf("calibrated allocation models:\n  cudaHostAlloc(64MB) ~ %s | "
              "malloc(64MB) ~ %s | cudaMalloc(64MB) ~ %s\n\n",
              util::format_time(advisor.allocation_model()
                                    .pinned_host.predict_seconds(
                                        64 * util::kMiB))
                  .c_str(),
              util::format_time(advisor.allocation_model()
                                    .pageable_host.predict_seconds(
                                        64 * util::kMiB))
                  .c_str(),
              util::format_time(
                  advisor.allocation_model().device.predict_seconds(
                      64 * util::kMiB))
                  .c_str());

  const core::MemoryModeReport report =
      advisor.advise(workloads::stassuij_skeleton({}, 1));
  std::printf("%s", report.describe().c_str());
  return 0;
}
