// Stencil porting advisor.
//
// The scenario from the paper's HotSpot study: you maintain an iterative
// structured-grid solver and want to know — before writing a line of CUDA —
// at what grid sizes and iteration counts a GPU port pays off. This example
// sweeps both axes with GROPHECY++ and prints a porting recommendation per
// configuration, illustrating the paper's central observation: a kernel-only
// estimate says "port everything", while the transfer-aware projection
// shows the payoff only arrives once transfers amortize over iterations.
#include <cstdio>
#include <iostream>

#include "core/grophecy.h"
#include "hw/registry.h"
#include "util/table.h"
#include "workloads/hotspot.h"

int main() {
  using namespace grophecy;
  using util::strfmt;

  core::Grophecy engine(hw::anl_eureka());

  util::TextTable table({"Grid", "Iterations", "Kernel-only est.",
                         "Transfer-aware est.", "Recommendation"});

  for (std::int64_t grid : {256, 1024, 4096}) {
    for (int iterations : {1, 10, 100}) {
      const skeleton::AppSkeleton app =
          workloads::hotspot_skeleton(grid, iterations);
      core::ProjectionReport report = engine.project(app);
      const double naive = report.predicted_speedup_kernel_only();
      const double honest = report.predicted_speedup_both();
      const char* verdict = honest > 1.5   ? "port it"
                            : honest > 1.0 ? "marginal"
                                           : "keep on CPU";
      table.add_row({strfmt("%lldx%lld", static_cast<long long>(grid),
                            static_cast<long long>(grid)),
                     strfmt("%d", iterations), strfmt("%.1fx", naive),
                     strfmt("%.1fx", honest), verdict});
    }
    table.add_separator();
  }

  std::printf("Stencil porting advisor (machine: %s)\n\n",
              engine.machine().name.c_str());
  table.print(std::cout);
  std::printf(
      "\nNote how the kernel-only column would green-light every single "
      "configuration;\nthe transfer-aware column shows the real payoff "
      "frontier.\n");
  return 0;
}
