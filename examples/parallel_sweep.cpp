// Parallel sweep campaigns with deterministic results.
//
// Demonstrates the three pieces PR 3 added on top of the resilient sweep
// engine:
//
//   1. exec::SweepRequest — the one builder every grid goes through:
//      machine x workloads x sizes x iterations, expanded in a fixed
//      order, each job running on its own engine with a seed derived from
//      the job's identity.
//   2. The worker pool (SweepOptions::workers) — independent grid points
//      run concurrently, yet the summary (and a journal, if enabled) is
//      identical for any worker count, because each job is a pure function
//      of its spec and results are committed in submission order.
//   3. pcie::CalibrationCache — every engine the sweep constructs targets
//      the same machine with the same calibration procedure and seed, so
//      the whole campaign calibrates the bus exactly once.
//
// The second half shows where the pool's wall-clock win actually lives:
// the simulated pipeline is pure compute, so on a single core a pool
// cannot beat serial — but real measurement campaigns are wait-bound
// (timing hardware transfers, waiting on devices), and for wait-bound
// jobs the pool's speedup is near-linear even on one core.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "exec/sweep.h"
#include "exec/sweep_request.h"
#include "hw/registry.h"
#include "pcie/calibration_cache.h"

int main() {
  using namespace grophecy;
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  // --- 1+2+3: the paper grid, serial vs pooled, calibrated once. --------
  exec::SweepRequest request = exec::SweepRequest::on(hw::anl_eureka())
                                   .workloads({"CFD", "HotSpot", "SRAD"})
                                   .sizes(exec::all_sizes)
                                   .iterations({1, 8});

  auto run_with = [&](int workers) {
    exec::SweepOptions options;
    options.workers = workers;
    const auto start = Clock::now();
    const exec::SweepSummary summary = request.run(options);
    std::printf("  workers=%d: %d ok, %d failed in %.3f s\n", workers,
                summary.ok, summary.failed, seconds_since(start));
    return summary;
  };

  std::printf("paper grid (%zu jobs) through SweepRequest:\n",
              request.jobs().size());
  const exec::SweepSummary serial = run_with(1);
  const exec::SweepSummary pooled = run_with(8);
  std::printf("  identical results for 1 and 8 workers: %s\n",
              serial.describe() == pooled.describe() ? "yes" : "NO");

  const pcie::CalibrationCache::Stats stats =
      pcie::CalibrationCache::instance().stats();
  std::printf("  calibration cache: %llu measured, %llu reused\n",
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.hits));

  // --- Wait-bound jobs: the pool's actual wall-clock win. ---------------
  std::vector<exec::JobSpec> waits;
  for (int i = 0; i < 12; ++i)
    waits.push_back({"wait", "job" + std::to_string(i), 1});
  const auto wait_job = [](const exec::JobSpec&) {
    // Stands in for timing a real device: the thread waits, the CPU idles.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return core::ProjectionReport{};
  };

  std::printf("12 wait-bound jobs (20 ms each):\n");
  double serial_s = 0.0;
  for (int workers : {1, 8}) {
    exec::SweepOptions options;
    options.workers = workers;
    exec::SweepEngine engine(options);
    const auto start = Clock::now();
    engine.run(waits, wait_job);
    const double elapsed = seconds_since(start);
    if (workers == 1) {
      serial_s = elapsed;
      std::printf("  workers=1: %.3f s\n", elapsed);
    } else {
      std::printf("  workers=%d: %.3f s (%.1fx vs serial)\n", workers,
                  elapsed, serial_s / elapsed);
    }
  }
  return 0;
}
