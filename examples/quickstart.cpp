// Quickstart: should I port my loop to the GPU?
//
// Builds a vector-addition skeleton (the paper's §II-B motivating example),
// asks GROPHECY++ for the projected GPU speedup with and without data
// transfer, and prints the verdict. Demonstrates the three public steps:
// describe the code as a skeleton, pick a machine, project.
#include <cstdio>

#include "core/grophecy.h"
#include "hw/registry.h"
#include "skeleton/builder.h"
#include "util/units.h"

int main() {
  using namespace grophecy;

  // 1. Describe the CPU code as a skeleton: c[i] = a[i] + b[i].
  const std::int64_t n = 16 * 1024 * 1024;
  skeleton::AppBuilder builder("vector_add");
  const auto a = builder.array("a", skeleton::ElemType::kF32, {n});
  const auto b = builder.array("b", skeleton::ElemType::kF32, {n});
  const auto c = builder.array("c", skeleton::ElemType::kF32, {n});
  skeleton::KernelBuilder& k = builder.kernel("add");
  k.parallel_loop("i", n);
  k.statement(/*flops=*/1.0)
      .load(a, {k.var("i")})
      .load(b, {k.var("i")})
      .store(c, {k.var("i")});
  skeleton::AppSkeleton app = builder.build();

  // 2. Pick the machine (the paper's Argonne node) and build the engine;
  // construction auto-calibrates the PCIe model from two measurements.
  core::Grophecy engine(hw::anl_eureka());
  std::printf("calibrated bus: H2D %s | D2H %s\n",
              engine.bus_model().h2d.describe().c_str(),
              engine.bus_model().d2h.describe().c_str());

  // 3. Project.
  core::ProjectionReport report = engine.project(app);
  std::printf("%s\n", report.describe().c_str());

  if (report.predicted_speedup_both() > 1.0) {
    std::printf("verdict: port it — projected %.2fx end-to-end speedup\n",
                report.predicted_speedup_both());
  } else {
    std::printf(
        "verdict: keep it on the CPU — data transfer erases the GPU win "
        "(projected %.2fx end-to-end; kernel-only looked like %.2fx)\n",
        report.predicted_speedup_both(),
        report.predicted_speedup_kernel_only());
  }
  return 0;
}
