// Porting plan: rank every .gskel skeleton in a directory by projected
// payoff — the workflow the paper's introduction motivates ("application
// developers often ponder ... whether it is indeed worth investing the
// time and effort to port their code", §II-C), run over a whole codebase's
// worth of kernels at once.
//
//   porting_plan [directory] [machine]     (default: examples/skeletons)
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "core/grophecy.h"
#include "hw/registry.h"
#include "skeleton/parse.h"
#include "util/contracts.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace grophecy;
  using util::strfmt;

  const std::string directory = argc > 1 ? argv[1] : "examples/skeletons";
  const std::string machine_name = argc > 2 ? argv[2] : "anl_eureka";

  std::vector<std::filesystem::path> files;
  std::error_code list_error;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, list_error)) {
    if (entry.path().extension() == ".gskel") files.push_back(entry.path());
  }
  if (list_error || files.empty()) {
    std::fprintf(stderr, "no .gskel files found in '%s'\n",
                 directory.c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());

  core::Grophecy engine(hw::machine_by_name(machine_name));

  struct Candidate {
    std::string name;
    core::ProjectionReport report;
  };
  std::vector<Candidate> candidates;
  for (const std::filesystem::path& path : files) {
    try {
      const std::shared_ptr<const skeleton::AppSkeleton> app =
          skeleton::parse_skeleton_file_cached(path.string());
      candidates.push_back({path.filename().string(), engine.project(*app)});
    } catch (const skeleton::ParseError& e) {
      std::fprintf(stderr, "skipping %s: %s\n", path.c_str(), e.what());
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.report.predicted_speedup_both() >
                     b.report.predicted_speedup_both();
            });

  util::TextTable table({"Rank", "Skeleton", "Kernel-only", "With transfer",
                         "Xfer share", "Fits GPU", "Recommendation"});
  int rank = 0;
  for (const Candidate& candidate : candidates) {
    const double honest = candidate.report.predicted_speedup_both();
    table.add_row({
        strfmt("%d", ++rank),
        candidate.name,
        strfmt("%.1fx", candidate.report.predicted_speedup_kernel_only()),
        strfmt("%.1fx", honest),
        strfmt("%.0f%%", candidate.report.predicted_transfer_s /
                             candidate.report.predicted_total_s() * 100.0),
        candidate.report.fits_device_memory ? "yes" : "NO",
        honest > 1.5   ? "port first"
        : honest > 1.0 ? "marginal"
                       : "keep on CPU",
    });
  }

  std::printf("Porting plan for %s on %s (ranked by transfer-aware "
              "projected speedup)\n\n",
              directory.c_str(), machine_name.c_str());
  table.print(std::cout);
  return 0;
}
