// The code-skeleton intermediate representation (GROPHECY's input language).
//
// A code skeleton "summarizes the high level semantics of a kernel,
// including loops, parallelism, computation intensity, and data access
// patterns" (paper §II-C). The IR below captures exactly that:
//
//   AppSkeleton            one application: arrays + an ordered sequence of
//    ├─ ArrayDecl          kernels executed `iterations` times
//    └─ KernelSkeleton     one kernel: a loop nest + statements
//        ├─ Loop           bounds, step, parallel flag
//        └─ Statement      FLOP counts + array references
//            └─ ArrayRef   load/store with affine subscripts (or an
//                          `indirect` flag for data-dependent accesses)
//
// Subscripts are affine expressions over the kernel's loop variables, which
// is what makes Bounded Regular Section analysis (src/brs) exact for
// regular code; `indirect` references and `sparse` arrays trigger the
// paper's conservative whole-array transfer rule (§III-B).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace grophecy::skeleton {

/// Index of a loop within its kernel's `loops` vector (0 = outermost).
using LoopId = int;
/// Index of an array within its application's `arrays` vector.
using ArrayId = int;

/// Element types of modeled arrays. Complex types follow the paper's
/// Stassuij workload (complex numbers in Green's Function Monte Carlo).
enum class ElemType { kF32, kF64, kI32, kI64, kComplexF32, kComplexF64 };

/// Size in bytes of one element of the given type.
std::size_t elem_size_bytes(ElemType type);

/// Short human-readable name ("f32", "c64", ...).
std::string_view elem_type_name(ElemType type);

/// A (dense or sparse) array in host memory that kernels read and write.
struct ArrayDecl {
  std::string name;
  ElemType type = ElemType::kF32;
  /// Extents, outermost first; the last dimension is contiguous (row-major).
  std::vector<std::int64_t> dims;
  /// Irregular array (e.g. the values of a sparse matrix): the set of
  /// elements actually referenced is data dependent, so BRS analysis must
  /// fall back to the conservative whole-array rule.
  bool sparse = false;

  std::int64_t element_count() const;
  std::uint64_t bytes() const;
};

/// Affine expression over loop variables: constant + sum(coeff_i * loop_i).
struct AffineExpr {
  std::int64_t constant = 0;
  /// (loop, coefficient) terms; at most one term per loop.
  std::vector<std::pair<LoopId, std::int64_t>> terms;

  static AffineExpr make_constant(std::int64_t value);
  /// coeff * loop + offset.
  static AffineExpr make_var(LoopId loop, std::int64_t coeff = 1,
                             std::int64_t offset = 0);

  /// This expression shifted by a constant (stencil neighbors: i+1, i-1...).
  AffineExpr shifted(std::int64_t delta) const;

  /// Coefficient of `loop`, 0 if absent.
  std::int64_t coefficient(LoopId loop) const;

  /// True if the expression does not depend on any loop.
  bool is_constant() const { return terms.empty(); }

  /// Evaluates at concrete loop values (index = LoopId).
  std::int64_t evaluate(std::span<const std::int64_t> loop_values) const;
};

/// Whether a reference reads or writes the array.
enum class RefKind { kLoad, kStore };

/// One array reference inside a statement.
///
/// Three flavors of subscripting:
///   * purely affine — `subscripts` only; exact BRS, exact coalescing;
///   * per-dimension gather — `indirect_dims` lists dimensions whose true
///     subscript is data dependent (read through an index array);
///     `indirect_deps` records which loop variables that hidden index is a
///     function of. The BRS widens the indirect dimensions to the full
///     extent; coalescing analysis stays exact for the affine dimensions
///     and only degrades to scattered when the hidden index varies across
///     a warp (i.e. depends on the thread loop). This captures CSR SpMM:
///     B[col[k], j] is a gather yet coalesced along j;
///   * fully indirect (`indirect` = true) — nothing is known; conservative
///     whole-array section and scattered access (sparse structure arrays).
struct ArrayRef {
  ArrayId array = -1;
  RefKind kind = RefKind::kLoad;
  /// One subscript per array dimension (affine part). Ignored when
  /// `indirect` is true; for dims in `indirect_dims` it is a placeholder.
  std::vector<AffineExpr> subscripts;
  /// Dimensions whose subscript is data dependent.
  std::vector<int> indirect_dims;
  /// Loop variables the data-dependent subscript(s) are functions of.
  std::vector<LoopId> indirect_deps;
  /// Fully data-dependent reference (no subscript information at all).
  bool indirect = false;

  bool has_indirection() const {
    return indirect || !indirect_dims.empty();
  }
};

/// A straight-line statement. By default it executes once per innermost
/// iteration of the full loop nest; `depth` lets it live at an outer level
/// (imperfect nests — e.g. an accumulator initialized once per row while
/// the dot-product statement runs once per nonzero).
struct Statement {
  /// Simple arithmetic (add/mul/fma) per execution.
  double flops = 0.0;
  /// Expensive operations (div, sqrt, exp, ...) per execution; these run on
  /// slower units on both CPUs and GPUs.
  double special_ops = 0.0;
  /// Number of enclosing loops (counted from the outermost); -1 means the
  /// full nest. A statement at depth d executes once per iteration of
  /// loops[0..d). Affine refs may only use loops < d.
  int depth = -1;
  std::vector<ArrayRef> refs;
};

/// One level of the kernel's loop nest.
struct Loop {
  std::string name;             ///< Induction variable name ("i", "j", ...).
  std::int64_t lower = 0;       ///< Inclusive lower bound.
  std::int64_t upper = 0;       ///< Exclusive upper bound.
  std::int64_t step = 1;        ///< Positive step.
  bool parallel = false;        ///< Iterations are independent (data parallel).

  std::int64_t trip_count() const;
};

/// A kernel: a perfect loop nest (outermost first) around statements.
struct KernelSkeleton {
  std::string name;
  std::vector<Loop> loops;
  std::vector<Statement> body;

  /// Product of all trip counts (number of innermost executions).
  std::int64_t total_iterations() const;
  /// Executions of one statement (product of trip counts down to its depth).
  std::int64_t statement_iterations(const Statement& stmt) const;
  /// Product of trip counts of parallel loops (available data parallelism).
  std::int64_t parallel_iterations() const;
  /// Total simple FLOPs over the whole kernel.
  double total_flops() const;
  /// Total special-function ops over the whole kernel.
  double total_special_ops() const;
  /// Number of barriers implied per kernel invocation (currently derived
  /// from sequential statement dependencies; kernels may override).
  int explicit_syncs = 0;
};

/// A whole application: arrays + kernel sequence + iteration structure.
///
/// The kernel sequence describes ONE outer iteration; the application runs
/// it `iterations` times (paper §IV-B: CFD invokes three kernels per
/// iteration, HotSpot and SRAD one and two respectively). Input data is
/// transferred to the GPU once before the first iteration and output once
/// after the last, so transfer volume is independent of `iterations`.
struct AppSkeleton {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<KernelSkeleton> kernels;
  /// User hints: arrays whose contents are temporaries and need not be
  /// copied back to the CPU (paper §III-B).
  std::vector<ArrayId> temporaries;
  int iterations = 1;

  /// Finds an array by name; throws ContractViolation if absent.
  ArrayId array_id(std::string_view array_name) const;
  const ArrayDecl& array(ArrayId id) const;
  bool is_temporary(ArrayId id) const;

  /// Checks structural invariants (subscript arity, loop ids in range,
  /// bounds sane); throws ContractViolation on the first violation.
  void validate() const;
};

}  // namespace grophecy::skeleton
