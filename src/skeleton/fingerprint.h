// Content fingerprints of application skeletons.
//
// The shared-artifact caches (util/artifact_cache.h) address derived
// artifacts by what they were derived FROM, so two structurally identical
// skeletons — however they were built — share one cache entry. Two
// fingerprints, differing in exactly one field:
//
//   * usage_fingerprint() hashes everything the data-usage analyzer reads:
//     arrays, temporaries, loop nests, statements, and references — but
//     NOT the iteration count. The analyzer walks a single iteration of
//     the kernel sequence and its transfer plan is provably independent
//     of `iterations` (paper §III-B), so an iteration sweep maps every
//     point to the same key and hits the plan cache after the first.
//   * fingerprint() additionally folds in `iterations`: the full identity
//     of the skeleton, for artifacts that do depend on the repeat count.
//
// Both include the application name (distinct apps never collide on a
// shared key even when structurally identical) and are deterministic
// across processes and platforms (pure FNV-1a over field values).
#pragma once

#include <cstdint>

#include "skeleton/skeleton.h"

namespace grophecy::skeleton {

/// Content hash of everything the usage analyzer reads; independent of
/// `iterations`. Equal fingerprints imply equal TransferPlan/ArrayUsage.
std::uint64_t usage_fingerprint(const AppSkeleton& app);

/// Full content hash: usage_fingerprint plus the iteration count.
std::uint64_t fingerprint(const AppSkeleton& app);

}  // namespace grophecy::skeleton
