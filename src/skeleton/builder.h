// Fluent builders for code skeletons.
//
// Writing AppSkeleton literals by hand is error prone (loop ids are indices,
// subscript arity must match array rank). The builders below keep skeleton
// construction readable; this is the API the bundled workloads and examples
// use. A HotSpot-style stencil looks like:
//
//   AppBuilder app("hotspot");
//   ArrayId t_in  = app.array("temp_in",  ElemType::kF32, {n, n});
//   ArrayId power = app.array("power",    ElemType::kF32, {n, n});
//   ArrayId t_out = app.array("temp_out", ElemType::kF32, {n, n});
//   KernelBuilder& k = app.kernel("hotspot_step");
//   k.parallel_loop("i", n).parallel_loop("j", n);
//   AffineExpr i = k.var("i"), j = k.var("j");
//   k.statement(/*flops=*/12, /*special=*/1)
//      .load(t_in, {i, j})
//      .load(t_in, {i.shifted(-1), j})
//      ...
//      .store(t_out, {i, j});
//   AppSkeleton skel = app.build();   // validates
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "skeleton/skeleton.h"

namespace grophecy::skeleton {

/// Builds one kernel. Obtained from AppBuilder::kernel(); loops must be
/// declared before statements reference them.
class KernelBuilder {
 public:
  /// Appends a sequential loop of `extent` iterations (0..extent-1).
  KernelBuilder& loop(std::string name, std::int64_t extent);

  /// Appends a data-parallel loop of `extent` iterations.
  KernelBuilder& parallel_loop(std::string name, std::int64_t extent);

  /// Appends a loop with explicit bounds and step.
  KernelBuilder& loop_range(std::string name, std::int64_t lower,
                            std::int64_t upper, std::int64_t step,
                            bool parallel);

  /// Affine expression coeff * loop + offset for a declared loop name.
  AffineExpr var(std::string_view loop_name, std::int64_t coeff = 1,
                 std::int64_t offset = 0) const;

  /// LoopId of a declared loop name; throws if unknown.
  LoopId loop_id(std::string_view loop_name) const;

  /// Starts a new statement executed once per innermost iteration.
  KernelBuilder& statement(double flops, double special_ops = 0.0);

  /// Moves the current statement to an outer nesting level: it executes
  /// once per iteration of the first `depth` loops (imperfect nests).
  KernelBuilder& at_depth(int depth);

  /// Adds a load with affine subscripts to the current statement.
  KernelBuilder& load(ArrayId array, std::vector<AffineExpr> subscripts);

  /// Adds a store with affine subscripts to the current statement.
  KernelBuilder& store(ArrayId array, std::vector<AffineExpr> subscripts);

  /// Adds a data-dependent (gather) load of the array.
  KernelBuilder& load_indirect(ArrayId array);

  /// Adds a data-dependent (scatter) store to the array.
  KernelBuilder& store_indirect(ArrayId array);

  /// Adds a load with per-dimension indirection: `subscripts` gives the
  /// affine part, `indirect_dims` the data-dependent dimensions, and
  /// `dep_loops` the loop names the hidden index depends on (e.g. CSR SpMM
  /// B[col[k], j]: indirect_dims={0}, dep_loops={"k"}).
  KernelBuilder& load_gather(ArrayId array, std::vector<AffineExpr> subscripts,
                             std::vector<int> indirect_dims,
                             std::vector<std::string> dep_loops);

  /// Store counterpart of load_gather.
  KernelBuilder& store_scatter(ArrayId array,
                               std::vector<AffineExpr> subscripts,
                               std::vector<int> indirect_dims,
                               std::vector<std::string> dep_loops);

  /// Marks `count` explicit block-wide synchronizations in the kernel.
  KernelBuilder& syncs(int count);

 private:
  friend class AppBuilder;
  KernelBuilder(AppSkeleton* app, std::size_t kernel_index)
      : app_(app), kernel_index_(kernel_index) {}

  KernelBuilder& add_ref(ArrayId array, RefKind kind,
                         std::vector<AffineExpr> subscripts, bool indirect);

  /// Re-resolved on every access: the kernels vector may reallocate while
  /// more kernels are added to the application.
  KernelSkeleton& kernel() const { return app_->kernels[kernel_index_]; }

  AppSkeleton* app_;
  std::size_t kernel_index_;
};

/// Builds a whole application skeleton.
class AppBuilder {
 public:
  explicit AppBuilder(std::string name);

  /// Declares an array; returns its id for use in kernel references.
  ArrayId array(std::string name, ElemType type,
                std::vector<std::int64_t> dims, bool sparse = false);

  /// Id of a previously declared array; throws if unknown.
  ArrayId array_id(std::string_view name) const {
    return app_.array_id(name);
  }

  /// Hints that `array` holds temporary data (not copied back, §III-B).
  AppBuilder& temporary(ArrayId array);

  /// Sets the outer iteration count (kernel sequence repeats).
  AppBuilder& iterations(int count);

  /// Appends a kernel to the per-iteration sequence and returns its builder.
  /// The returned reference stays valid until build() is called.
  KernelBuilder& kernel(std::string name);

  /// Validates and returns the finished skeleton.
  AppSkeleton build();

 private:
  AppSkeleton app_;
  /// Keeps KernelBuilder addresses stable while kernels are added.
  std::vector<std::unique_ptr<KernelBuilder>> kernel_builders_;
};

}  // namespace grophecy::skeleton
