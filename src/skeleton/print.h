// Human-readable rendering of code skeletons.
//
// Used by examples and docs to show what the framework "sees" for a given
// application; the output resembles the original loop nest.
#pragma once

#include <string>

#include "skeleton/skeleton.h"

namespace grophecy::skeleton {

/// Renders an affine expression using the kernel's loop names, e.g. "i+1".
std::string to_string(const AffineExpr& expr, const KernelSkeleton& kernel);

/// Renders one kernel as an indented pseudo-loop-nest.
std::string to_string(const KernelSkeleton& kernel, const AppSkeleton& app);

/// Renders the whole application: arrays, kernels, temporaries, iterations.
std::string to_string(const AppSkeleton& app);

}  // namespace grophecy::skeleton
