#include "skeleton/fingerprint.h"

#include "util/artifact_cache.h"

namespace grophecy::skeleton {

namespace {

void fold_expr(util::KeyBuilder& h, const AffineExpr& expr) {
  h.field(expr.constant);
  h.field(static_cast<std::uint64_t>(expr.terms.size()));
  for (const auto& [loop, coeff] : expr.terms) h.field(loop).field(coeff);
}

void fold_ref(util::KeyBuilder& h, const ArrayRef& ref) {
  h.field(ref.array).field(static_cast<int>(ref.kind)).field(ref.indirect);
  h.field(static_cast<std::uint64_t>(ref.subscripts.size()));
  for (const AffineExpr& subscript : ref.subscripts) fold_expr(h, subscript);
  h.field(static_cast<std::uint64_t>(ref.indirect_dims.size()));
  for (int dim : ref.indirect_dims) h.field(dim);
  h.field(static_cast<std::uint64_t>(ref.indirect_deps.size()));
  for (LoopId dep : ref.indirect_deps) h.field(dep);
}

}  // namespace

std::uint64_t usage_fingerprint(const AppSkeleton& app) {
  util::KeyBuilder h;
  h.field(app.name);
  h.field(static_cast<std::uint64_t>(app.arrays.size()));
  for (const ArrayDecl& array : app.arrays) {
    h.field(array.name).field(static_cast<int>(array.type)).field(array.sparse);
    h.field(static_cast<std::uint64_t>(array.dims.size()));
    for (std::int64_t dim : array.dims) h.field(dim);
  }
  h.field(static_cast<std::uint64_t>(app.temporaries.size()));
  for (ArrayId id : app.temporaries) h.field(id);
  h.field(static_cast<std::uint64_t>(app.kernels.size()));
  for (const KernelSkeleton& kernel : app.kernels) {
    h.field(kernel.name).field(kernel.explicit_syncs);
    h.field(static_cast<std::uint64_t>(kernel.loops.size()));
    for (const Loop& loop : kernel.loops) {
      h.field(loop.name)
          .field(loop.lower)
          .field(loop.upper)
          .field(loop.step)
          .field(loop.parallel);
    }
    h.field(static_cast<std::uint64_t>(kernel.body.size()));
    for (const Statement& stmt : kernel.body) {
      h.field(stmt.flops).field(stmt.special_ops).field(stmt.depth);
      h.field(static_cast<std::uint64_t>(stmt.refs.size()));
      for (const ArrayRef& ref : stmt.refs) fold_ref(h, ref);
    }
  }
  return h.hash();
}

std::uint64_t fingerprint(const AppSkeleton& app) {
  util::KeyBuilder h;
  h.field(usage_fingerprint(app));
  h.field(app.iterations);
  return h.hash();
}

}  // namespace grophecy::skeleton
