#include "skeleton/skeleton.h"

#include <algorithm>

#include "util/contracts.h"

namespace grophecy::skeleton {

std::size_t elem_size_bytes(ElemType type) {
  switch (type) {
    case ElemType::kF32: return 4;
    case ElemType::kF64: return 8;
    case ElemType::kI32: return 4;
    case ElemType::kI64: return 8;
    case ElemType::kComplexF32: return 8;
    case ElemType::kComplexF64: return 16;
  }
  throw ContractViolation("invalid ElemType");
}

std::string_view elem_type_name(ElemType type) {
  switch (type) {
    case ElemType::kF32: return "f32";
    case ElemType::kF64: return "f64";
    case ElemType::kI32: return "i32";
    case ElemType::kI64: return "i64";
    case ElemType::kComplexF32: return "c64";
    case ElemType::kComplexF64: return "c128";
  }
  return "?";
}

std::int64_t ArrayDecl::element_count() const {
  std::int64_t count = 1;
  for (std::int64_t d : dims) count *= d;
  return count;
}

std::uint64_t ArrayDecl::bytes() const {
  return static_cast<std::uint64_t>(element_count()) * elem_size_bytes(type);
}

AffineExpr AffineExpr::make_constant(std::int64_t value) {
  AffineExpr e;
  e.constant = value;
  return e;
}

AffineExpr AffineExpr::make_var(LoopId loop, std::int64_t coeff,
                                std::int64_t offset) {
  GROPHECY_EXPECTS(loop >= 0);
  AffineExpr e;
  e.constant = offset;
  if (coeff != 0) e.terms.emplace_back(loop, coeff);
  return e;
}

AffineExpr AffineExpr::shifted(std::int64_t delta) const {
  AffineExpr e = *this;
  e.constant += delta;
  return e;
}

std::int64_t AffineExpr::coefficient(LoopId loop) const {
  for (const auto& [id, coeff] : terms)
    if (id == loop) return coeff;
  return 0;
}

std::int64_t AffineExpr::evaluate(
    std::span<const std::int64_t> loop_values) const {
  std::int64_t value = constant;
  for (const auto& [id, coeff] : terms) {
    GROPHECY_EXPECTS(static_cast<std::size_t>(id) < loop_values.size());
    value += coeff * loop_values[static_cast<std::size_t>(id)];
  }
  return value;
}

std::int64_t Loop::trip_count() const {
  GROPHECY_EXPECTS(step > 0);
  if (upper <= lower) return 0;
  return (upper - lower + step - 1) / step;
}

std::int64_t KernelSkeleton::total_iterations() const {
  std::int64_t total = 1;
  for (const Loop& loop : loops) total *= loop.trip_count();
  return total;
}

std::int64_t KernelSkeleton::statement_iterations(
    const Statement& stmt) const {
  const std::size_t depth =
      stmt.depth < 0 ? loops.size()
                     : std::min<std::size_t>(stmt.depth, loops.size());
  std::int64_t total = 1;
  for (std::size_t i = 0; i < depth; ++i) total *= loops[i].trip_count();
  return total;
}

std::int64_t KernelSkeleton::parallel_iterations() const {
  std::int64_t total = 1;
  for (const Loop& loop : loops)
    if (loop.parallel) total *= loop.trip_count();
  return total;
}

double KernelSkeleton::total_flops() const {
  double total = 0.0;
  for (const Statement& stmt : body)
    total += stmt.flops * static_cast<double>(statement_iterations(stmt));
  return total;
}

double KernelSkeleton::total_special_ops() const {
  double total = 0.0;
  for (const Statement& stmt : body)
    total +=
        stmt.special_ops * static_cast<double>(statement_iterations(stmt));
  return total;
}

ArrayId AppSkeleton::array_id(std::string_view array_name) const {
  for (std::size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].name == array_name) return static_cast<ArrayId>(i);
  throw ContractViolation("unknown array: " + std::string(array_name));
}

const ArrayDecl& AppSkeleton::array(ArrayId id) const {
  GROPHECY_EXPECTS(id >= 0 &&
                   static_cast<std::size_t>(id) < arrays.size());
  return arrays[static_cast<std::size_t>(id)];
}

bool AppSkeleton::is_temporary(ArrayId id) const {
  return std::find(temporaries.begin(), temporaries.end(), id) !=
         temporaries.end();
}

void AppSkeleton::validate() const {
  GROPHECY_EXPECTS(iterations >= 1);
  for (const ArrayDecl& decl : arrays) {
    GROPHECY_EXPECTS(!decl.name.empty());
    GROPHECY_EXPECTS(!decl.dims.empty());
    for (std::int64_t d : decl.dims) GROPHECY_EXPECTS(d > 0);
  }
  for (ArrayId temp : temporaries) {
    GROPHECY_EXPECTS(temp >= 0 &&
                     static_cast<std::size_t>(temp) < arrays.size());
  }
  for (const KernelSkeleton& kernel : kernels) {
    GROPHECY_EXPECTS(!kernel.name.empty());
    GROPHECY_EXPECTS(!kernel.loops.empty());
    for (const Loop& loop : kernel.loops) {
      GROPHECY_EXPECTS(loop.step > 0);
      GROPHECY_EXPECTS(loop.upper >= loop.lower);
    }
    const auto num_loops = static_cast<LoopId>(kernel.loops.size());
    for (const Statement& stmt : kernel.body) {
      GROPHECY_EXPECTS(stmt.flops >= 0.0 && stmt.special_ops >= 0.0);
      GROPHECY_EXPECTS(stmt.depth >= -1 &&
                       stmt.depth <= static_cast<int>(kernel.loops.size()));
      const LoopId max_loop =
          stmt.depth < 0 ? num_loops : static_cast<LoopId>(stmt.depth);
      for (const ArrayRef& ref : stmt.refs) {
        GROPHECY_EXPECTS(ref.array >= 0 && static_cast<std::size_t>(
                                               ref.array) < arrays.size());
        const ArrayDecl& decl = arrays[static_cast<std::size_t>(ref.array)];
        if (!ref.indirect) {
          GROPHECY_EXPECTS(ref.subscripts.size() == decl.dims.size());
          for (const AffineExpr& expr : ref.subscripts) {
            for (const auto& [loop, coeff] : expr.terms) {
              (void)coeff;
              GROPHECY_EXPECTS(loop >= 0 && loop < max_loop);
            }
          }
          for (int dim : ref.indirect_dims)
            GROPHECY_EXPECTS(dim >= 0 && static_cast<std::size_t>(dim) <
                                             decl.dims.size());
          for (LoopId dep : ref.indirect_deps)
            GROPHECY_EXPECTS(dep >= 0 && dep < max_loop);
          // Dependences without any indirect dimension are meaningless.
          GROPHECY_EXPECTS(ref.indirect_deps.empty() ||
                           !ref.indirect_dims.empty());
        }
      }
    }
  }
}

}  // namespace grophecy::skeleton
