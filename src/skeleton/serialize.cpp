#include "skeleton/serialize.h"

#include <algorithm>
#include <sstream>

#include "util/contracts.h"

namespace grophecy::skeleton {

namespace {

/// Affine expression in the parser's syntax over the kernel's loop names.
std::string affine_text(const AffineExpr& expr,
                        const KernelSkeleton& kernel) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& [loop, coeff] : expr.terms) {
    if (coeff == 0) continue;
    const std::string& name =
        kernel.loops[static_cast<std::size_t>(loop)].name;
    if (coeff < 0) {
      oss << '-';
    } else if (!first) {
      oss << '+';
    }
    const std::int64_t mag = std::abs(coeff);
    if (mag != 1) oss << mag << '*';
    oss << name;
    first = false;
  }
  if (expr.constant != 0 || first) {
    if (!first && expr.constant > 0) oss << '+';
    oss << expr.constant;
  }
  return oss.str();
}

void write_ref(std::ostringstream& oss, const ArrayRef& ref,
               const AppSkeleton& app, const KernelSkeleton& kernel) {
  const ArrayDecl& decl = app.array(ref.array);
  if (ref.indirect) {
    oss << "    " << (ref.kind == RefKind::kLoad ? "load_indirect "
                                                 : "store_indirect ")
        << decl.name << '\n';
    return;
  }
  oss << "    " << (ref.kind == RefKind::kLoad ? "load " : "store ")
      << decl.name;
  auto dim_is_indirect = [&](std::size_t d) {
    return std::find(ref.indirect_dims.begin(), ref.indirect_dims.end(),
                     static_cast<int>(d)) != ref.indirect_dims.end();
  };
  for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
    oss << '[';
    if (dim_is_indirect(d))
      oss << '?';
    else
      oss << affine_text(ref.subscripts[d], kernel);
    oss << ']';
  }
  if (!ref.indirect_deps.empty()) {
    oss << " deps=";
    for (std::size_t i = 0; i < ref.indirect_deps.size(); ++i) {
      if (i) oss << ',';
      oss << kernel.loops[static_cast<std::size_t>(ref.indirect_deps[i])]
                 .name;
    }
  }
  oss << '\n';
}

}  // namespace

std::string serialize_skeleton(const AppSkeleton& app) {
  app.validate();
  std::ostringstream oss;
  oss << "app " << app.name;
  if (app.iterations != 1) oss << " iterations=" << app.iterations;
  oss << '\n';

  for (std::size_t i = 0; i < app.arrays.size(); ++i) {
    const ArrayDecl& decl = app.arrays[i];
    oss << "array " << decl.name << ' ' << elem_type_name(decl.type);
    for (std::int64_t extent : decl.dims) oss << '[' << extent << ']';
    if (decl.sparse) oss << " sparse";
    if (app.is_temporary(static_cast<ArrayId>(i))) oss << " temporary";
    oss << '\n';
  }

  for (const KernelSkeleton& kernel : app.kernels) {
    oss << "\nkernel " << kernel.name;
    if (kernel.explicit_syncs > 0) oss << " syncs=" << kernel.explicit_syncs;
    oss << '\n';
    for (const Loop& loop : kernel.loops) {
      oss << "  " << (loop.parallel ? "parallel for " : "for ") << loop.name
          << " in " << loop.lower << ".." << loop.upper;
      if (loop.step != 1) oss << " step " << loop.step;
      oss << '\n';
    }
    for (const Statement& stmt : kernel.body) {
      oss << "  stmt flops=" << stmt.flops;
      if (stmt.special_ops > 0) oss << " special=" << stmt.special_ops;
      if (stmt.depth >= 0) oss << " depth=" << stmt.depth;
      oss << '\n';
      for (const ArrayRef& ref : stmt.refs) write_ref(oss, ref, app, kernel);
    }
  }
  return oss.str();
}

}  // namespace grophecy::skeleton
