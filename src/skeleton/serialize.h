// Serialization of AppSkeleton back to the .gskel text format.
//
// parse_skeleton(serialize_skeleton(app)) reconstructs an equivalent
// skeleton (the round trip is tested for every bundled workload), which
// makes .gskel a durable interchange format: skeletons built with the C++
// API can be exported, versioned, edited by hand, and re-projected from
// the command line.
#pragma once

#include <string>

#include "skeleton/skeleton.h"

namespace grophecy::skeleton {

/// Renders a validated skeleton as a parseable .gskel document.
std::string serialize_skeleton(const AppSkeleton& app);

}  // namespace grophecy::skeleton
