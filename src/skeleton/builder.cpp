#include "skeleton/builder.h"

#include "util/contracts.h"

namespace grophecy::skeleton {

KernelBuilder& KernelBuilder::loop(std::string name, std::int64_t extent) {
  return loop_range(std::move(name), 0, extent, 1, /*parallel=*/false);
}

KernelBuilder& KernelBuilder::parallel_loop(std::string name,
                                            std::int64_t extent) {
  return loop_range(std::move(name), 0, extent, 1, /*parallel=*/true);
}

KernelBuilder& KernelBuilder::loop_range(std::string name, std::int64_t lower,
                                         std::int64_t upper,
                                         std::int64_t step, bool parallel) {
  GROPHECY_EXPECTS(!name.empty());
  GROPHECY_EXPECTS(step > 0);
  GROPHECY_EXPECTS(upper >= lower);
  GROPHECY_EXPECTS(kernel().body.empty());  // loops before statements
  Loop l;
  l.name = std::move(name);
  l.lower = lower;
  l.upper = upper;
  l.step = step;
  l.parallel = parallel;
  kernel().loops.push_back(std::move(l));
  return *this;
}

LoopId KernelBuilder::loop_id(std::string_view loop_name) const {
  for (std::size_t i = 0; i < kernel().loops.size(); ++i)
    if (kernel().loops[i].name == loop_name) return static_cast<LoopId>(i);
  throw ContractViolation("unknown loop: " + std::string(loop_name));
}

AffineExpr KernelBuilder::var(std::string_view loop_name, std::int64_t coeff,
                              std::int64_t offset) const {
  return AffineExpr::make_var(loop_id(loop_name), coeff, offset);
}

KernelBuilder& KernelBuilder::statement(double flops, double special_ops) {
  GROPHECY_EXPECTS(flops >= 0.0 && special_ops >= 0.0);
  Statement stmt;
  stmt.flops = flops;
  stmt.special_ops = special_ops;
  kernel().body.push_back(std::move(stmt));
  return *this;
}

KernelBuilder& KernelBuilder::at_depth(int depth) {
  GROPHECY_EXPECTS(!kernel().body.empty());
  GROPHECY_EXPECTS(depth >= 0 &&
                   depth <= static_cast<int>(kernel().loops.size()));
  kernel().body.back().depth = depth;
  return *this;
}

KernelBuilder& KernelBuilder::add_ref(ArrayId array, RefKind kind,
                                      std::vector<AffineExpr> subscripts,
                                      bool indirect) {
  GROPHECY_EXPECTS(!kernel().body.empty());  // statement() first
  ArrayRef ref;
  ref.array = array;
  ref.kind = kind;
  ref.subscripts = std::move(subscripts);
  ref.indirect = indirect;
  kernel().body.back().refs.push_back(std::move(ref));
  return *this;
}

KernelBuilder& KernelBuilder::load(ArrayId array,
                                   std::vector<AffineExpr> subscripts) {
  return add_ref(array, RefKind::kLoad, std::move(subscripts), false);
}

KernelBuilder& KernelBuilder::store(ArrayId array,
                                    std::vector<AffineExpr> subscripts) {
  return add_ref(array, RefKind::kStore, std::move(subscripts), false);
}

KernelBuilder& KernelBuilder::load_indirect(ArrayId array) {
  return add_ref(array, RefKind::kLoad, {}, true);
}

KernelBuilder& KernelBuilder::store_indirect(ArrayId array) {
  return add_ref(array, RefKind::kStore, {}, true);
}

KernelBuilder& KernelBuilder::load_gather(ArrayId array,
                                          std::vector<AffineExpr> subscripts,
                                          std::vector<int> indirect_dims,
                                          std::vector<std::string> dep_loops) {
  add_ref(array, RefKind::kLoad, std::move(subscripts), false);
  ArrayRef& ref = kernel().body.back().refs.back();
  ref.indirect_dims = std::move(indirect_dims);
  for (const std::string& loop : dep_loops)
    ref.indirect_deps.push_back(loop_id(loop));
  return *this;
}

KernelBuilder& KernelBuilder::store_scatter(
    ArrayId array, std::vector<AffineExpr> subscripts,
    std::vector<int> indirect_dims, std::vector<std::string> dep_loops) {
  add_ref(array, RefKind::kStore, std::move(subscripts), false);
  ArrayRef& ref = kernel().body.back().refs.back();
  ref.indirect_dims = std::move(indirect_dims);
  for (const std::string& loop : dep_loops)
    ref.indirect_deps.push_back(loop_id(loop));
  return *this;
}

KernelBuilder& KernelBuilder::syncs(int count) {
  GROPHECY_EXPECTS(count >= 0);
  kernel().explicit_syncs = count;
  return *this;
}

AppBuilder::AppBuilder(std::string name) { app_.name = std::move(name); }

ArrayId AppBuilder::array(std::string name, ElemType type,
                          std::vector<std::int64_t> dims, bool sparse) {
  ArrayDecl decl;
  decl.name = std::move(name);
  decl.type = type;
  decl.dims = std::move(dims);
  decl.sparse = sparse;
  app_.arrays.push_back(std::move(decl));
  return static_cast<ArrayId>(app_.arrays.size() - 1);
}

AppBuilder& AppBuilder::temporary(ArrayId array) {
  app_.temporaries.push_back(array);
  return *this;
}

AppBuilder& AppBuilder::iterations(int count) {
  GROPHECY_EXPECTS(count >= 1);
  app_.iterations = count;
  return *this;
}

KernelBuilder& AppBuilder::kernel(std::string name) {
  KernelSkeleton kernel;
  kernel.name = std::move(name);
  app_.kernels.push_back(std::move(kernel));
  kernel_builders_.push_back(std::unique_ptr<KernelBuilder>(
      new KernelBuilder(&app_, app_.kernels.size() - 1)));
  return *kernel_builders_.back();
}

AppSkeleton AppBuilder::build() {
  app_.validate();
  return app_;
}

}  // namespace grophecy::skeleton
