// Text format for code skeletons (.gskel).
//
// GROPHECY's input is "a simplified description of the corresponding CPU
// code" (paper §II-C). The C++ builder API is one way to write that
// description; this module provides the other: a small, line-oriented
// language so users can describe kernels without writing C++. The
// quickstart example in this syntax:
//
//   app vector_add
//   array a f32[16777216]
//   array b f32[16777216]
//   array c f32[16777216]
//
//   kernel add
//     parallel for i in 0..16777216
//     stmt flops=1
//       load a[i]
//       load b[i]
//       store c[i]
//
// Grammar (line oriented; '#' starts a comment; indentation is ignored):
//
//   app <name> [iterations=<int>]
//   array <name> <type>[<extent>]... [sparse] [temporary]
//   kernel <name> [syncs=<int>]
//     [parallel] for <var> in <lo>..<hi> [step <int>]
//     stmt flops=<num> [special=<num>] [depth=<int>]
//       load  <array>[<subscript>]...  [deps=<var>,...]
//       store <array>[<subscript>]...  [deps=<var>,...]
//       load_indirect <array>
//       store_indirect <array>
//
// <type> is one of f32 f64 i32 i64 c64 c128. A <subscript> is an affine
// expression over loop variables (e.g. `i`, `i+1`, `2*i-3`, `i+2*j`), or
// `?` for a data-dependent dimension; `deps=` names the loops the hidden
// index depends on (CSR SpMM: `load B[?][j] deps=i,k`).
//
// Parse errors throw skeleton::ParseError (a grophecy::ParseError, kind
// ErrorKind::kParse) with the source name, line number, and message.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "skeleton/skeleton.h"
#include "util/artifact_cache.h"
#include "util/error.h"

namespace grophecy::skeleton {

/// Error in a .gskel document. what() is "<file>: line <N>: <message>";
/// the file part is present when the document came from a file
/// (parse_skeleton_file attaches the path on rethrow).
class ParseError : public grophecy::ParseError {
 public:
  ParseError(int line, const std::string& message)
      : grophecy::ParseError("", line, message) {}
  ParseError(std::string file, int line, std::string message)
      : grophecy::ParseError(std::move(file), line, std::move(message)) {}
};

/// Parses a .gskel document into a validated AppSkeleton.
AppSkeleton parse_skeleton(std::string_view text);

/// Reads and parses a .gskel file; throws ParseError (with the file path
/// attached) / ContractViolation.
AppSkeleton parse_skeleton_file(const std::string& path);

/// Content-addressed cached parse: the cache key is the hash of the
/// document bytes, so identical documents — whatever file they came from —
/// share one immutable parsed skeleton. Same errors as parse_skeleton.
std::shared_ptr<const AppSkeleton> parse_skeleton_cached(
    std::string_view text);

/// Reads a .gskel file and serves the parse from the content-addressed
/// cache (the file is still read each call: content addressing means an
/// edited file re-parses, an untouched one never does). Same errors as
/// parse_skeleton_file.
std::shared_ptr<const AppSkeleton> parse_skeleton_file_cached(
    const std::string& path);

/// The process-wide cache behind the cached parse entry points
/// (accounting and tests; see util/artifact_cache.h).
util::ArtifactCache<AppSkeleton>& skeleton_parse_cache();

}  // namespace grophecy::skeleton
