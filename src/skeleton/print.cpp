#include "skeleton/print.h"

#include <sstream>

#include "util/table.h"
#include "util/units.h"

namespace grophecy::skeleton {

std::string to_string(const AffineExpr& expr, const KernelSkeleton& kernel) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& [loop, coeff] : expr.terms) {
    if (coeff == 0) continue;
    const std::string& name =
        kernel.loops[static_cast<std::size_t>(loop)].name;
    if (!first && coeff > 0) oss << '+';
    if (coeff == -1)
      oss << '-' << name;
    else if (coeff == 1)
      oss << name;
    else
      oss << coeff << '*' << name;
    first = false;
  }
  if (expr.constant != 0 || first) {
    if (!first && expr.constant > 0) oss << '+';
    oss << expr.constant;
  }
  return oss.str();
}

namespace {

std::string ref_to_string(const ArrayRef& ref, const KernelSkeleton& kernel,
                          const AppSkeleton& app) {
  std::ostringstream oss;
  oss << app.array(ref.array).name;
  if (ref.indirect) {
    oss << "[<data-dependent>]";
    return oss.str();
  }
  oss << '[';
  for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
    if (d) oss << "][";
    oss << to_string(ref.subscripts[d], kernel);
  }
  oss << ']';
  return oss.str();
}

}  // namespace

std::string to_string(const KernelSkeleton& kernel, const AppSkeleton& app) {
  std::ostringstream oss;
  oss << "kernel " << kernel.name << ":\n";
  std::string indent = "  ";
  for (const Loop& loop : kernel.loops) {
    oss << indent << (loop.parallel ? "parallel_for " : "for ") << loop.name
        << " in [" << loop.lower << ", " << loop.upper << ")";
    if (loop.step != 1) oss << " step " << loop.step;
    oss << ":\n";
    indent += "  ";
  }
  for (const Statement& stmt : kernel.body) {
    oss << indent << util::strfmt("stmt(flops=%.1f", stmt.flops);
    if (stmt.special_ops > 0)
      oss << util::strfmt(", special=%.1f", stmt.special_ops);
    oss << "): ";
    bool first = true;
    for (const ArrayRef& ref : stmt.refs) {
      if (!first) oss << ", ";
      oss << (ref.kind == RefKind::kStore ? "store " : "load ")
          << ref_to_string(ref, kernel, app);
      first = false;
    }
    oss << '\n';
  }
  if (kernel.explicit_syncs > 0)
    oss << indent << "syncs: " << kernel.explicit_syncs << '\n';
  return oss.str();
}

std::string to_string(const AppSkeleton& app) {
  std::ostringstream oss;
  oss << "app " << app.name << " (iterations=" << app.iterations << "):\n";
  for (std::size_t i = 0; i < app.arrays.size(); ++i) {
    const ArrayDecl& a = app.arrays[i];
    oss << "  array " << a.name << ": " << elem_type_name(a.type);
    for (std::int64_t d : a.dims) oss << '[' << d << ']';
    oss << " (" << util::format_bytes(a.bytes()) << ')';
    if (a.sparse) oss << " sparse";
    if (app.is_temporary(static_cast<ArrayId>(i))) oss << " temporary";
    oss << '\n';
  }
  for (const KernelSkeleton& kernel : app.kernels)
    oss << to_string(kernel, app);
  return oss.str();
}

}  // namespace grophecy::skeleton
