#include "skeleton/parse.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "skeleton/builder.h"
#include "util/contracts.h"

namespace grophecy::skeleton {

namespace {

/// One whitespace-split token of a line, with subscript brackets intact.
struct Line {
  int number = 0;
  std::vector<std::string> tokens;
};

/// Splits the document into comment-stripped, tokenized lines.
std::vector<Line> tokenize(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    std::string_view raw =
        text.substr(pos, end == std::string_view::npos ? text.size() - pos
                                                       : end - pos);
    ++number;
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;

    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);

    Line line;
    line.number = number;
    std::string token;
    for (char ch : raw) {
      if (std::isspace(static_cast<unsigned char>(ch))) {
        if (!token.empty()) line.tokens.push_back(std::move(token));
        token.clear();
      } else {
        token += ch;
      }
    }
    if (!token.empty()) line.tokens.push_back(std::move(token));
    if (!line.tokens.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

std::optional<ElemType> parse_type(std::string_view name) {
  if (name == "f32") return ElemType::kF32;
  if (name == "f64") return ElemType::kF64;
  if (name == "i32") return ElemType::kI32;
  if (name == "i64") return ElemType::kI64;
  if (name == "c64") return ElemType::kComplexF32;
  if (name == "c128") return ElemType::kComplexF64;
  return std::nullopt;
}

std::int64_t parse_int(const std::string& token, int line) {
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw ParseError(line, "expected integer, got '" + token + "'");
  }
}

double parse_number(const std::string& token, int line) {
  double value = 0.0;
  try {
    std::size_t consumed = 0;
    value = std::stod(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
  } catch (const std::exception&) {
    throw ParseError(line, "expected number, got '" + token + "'");
  }
  // "nan" and "inf" are valid doubles but meaningless work amounts; a
  // skeleton containing them is malformed input, not a modeling choice.
  if (!std::isfinite(value))
    throw ParseError(line, "expected finite number, got '" + token + "'");
  return value;
}

/// key=value attribute, or nullopt if the token has no '='.
std::optional<std::pair<std::string, std::string>> split_attr(
    const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return std::nullopt;
  return std::make_pair(token.substr(0, eq), token.substr(eq + 1));
}

/// Parses an affine expression like "2*i-3+j" over declared loop names.
AffineExpr parse_affine(std::string_view text, const KernelBuilder& kernel,
                        int line) {
  AffineExpr expr;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    std::int64_t sign = 1;
    if (text[pos] == '+') {
      ++pos;
    } else if (text[pos] == '-') {
      sign = -1;
      ++pos;
    } else if (!first) {
      throw ParseError(line, "expected '+' or '-' in subscript '" +
                                 std::string(text) + "'");
    }
    first = false;
    if (pos >= text.size())
      throw ParseError(line, "dangling sign in subscript");

    // Term: INT ['*' IDENT] | IDENT ['*' INT]
    auto read_int = [&]() -> std::int64_t {
      std::size_t start = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
      if (start == pos)
        throw ParseError(line, "expected integer in subscript '" +
                                   std::string(text) + "'");
      return std::stoll(std::string(text.substr(start, pos - start)));
    };
    auto read_ident = [&]() -> std::string {
      std::size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_'))
        ++pos;
      if (start == pos)
        throw ParseError(line, "expected identifier in subscript '" +
                                   std::string(text) + "'");
      return std::string(text.substr(start, pos - start));
    };

    if (std::isdigit(static_cast<unsigned char>(text[pos]))) {
      const std::int64_t value = read_int();
      if (pos < text.size() && text[pos] == '*') {
        ++pos;
        const std::string var = read_ident();
        const LoopId loop = kernel.loop_id(var);
        expr.terms.emplace_back(loop, sign * value);
      } else {
        expr.constant += sign * value;
      }
    } else {
      const std::string var = read_ident();
      const LoopId loop = kernel.loop_id(var);
      std::int64_t coeff = 1;
      if (pos < text.size() && text[pos] == '*') {
        ++pos;
        coeff = read_int();
      }
      expr.terms.emplace_back(loop, sign * coeff);
    }
  }
  if (first) throw ParseError(line, "empty subscript");
  return expr;
}

/// Splits "name[sub][sub]..." into the name and bracketed pieces.
struct RefSpec {
  std::string array;
  std::vector<std::string> subscripts;
};

RefSpec parse_ref_spec(const std::string& token, int line) {
  RefSpec spec;
  const std::size_t bracket = token.find('[');
  if (bracket == std::string::npos) {
    spec.array = token;
    return spec;
  }
  spec.array = token.substr(0, bracket);
  std::size_t pos = bracket;
  while (pos < token.size()) {
    if (token[pos] != '[')
      throw ParseError(line, "malformed subscripts in '" + token + "'");
    const std::size_t close = token.find(']', pos);
    if (close == std::string::npos)
      throw ParseError(line, "unterminated '[' in '" + token + "'");
    spec.subscripts.push_back(token.substr(pos + 1, close - pos - 1));
    pos = close + 1;
  }
  if (spec.array.empty())
    throw ParseError(line, "missing array name in '" + token + "'");
  return spec;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char ch : text) {
    if (ch == ',') {
      out.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace

AppSkeleton parse_skeleton(std::string_view text) {
  const std::vector<Line> lines = tokenize(text);
  if (lines.empty()) throw ParseError(1, "empty document (no 'app' line)");

  std::optional<AppBuilder> app;
  KernelBuilder* kernel = nullptr;
  bool have_statement = false;
  std::string kernel_name;
  int kernel_line = 0;
  std::set<std::string> array_names;
  std::set<std::string> kernel_names;
  std::vector<std::pair<std::string, int>> pending_temporaries;

  // A kernel with no statements does no work and almost always means the
  // document was cut off mid-kernel; reject it at the kernel's own line.
  const auto check_kernel_complete = [&]() {
    if (kernel && !have_statement)
      throw ParseError(kernel_line, "kernel '" + kernel_name +
                                        "' has no statements (truncated?)");
  };

  for (const Line& line : lines) {
    const std::string& head = line.tokens.front();
    const int n = line.number;

    if (head == "app") {
      if (app) throw ParseError(n, "duplicate 'app' line");
      if (line.tokens.size() < 2) throw ParseError(n, "app needs a name");
      app.emplace(line.tokens[1]);
      for (std::size_t i = 2; i < line.tokens.size(); ++i) {
        const auto attr = split_attr(line.tokens[i]);
        if (attr && attr->first == "iterations") {
          try {
            app->iterations(static_cast<int>(parse_int(attr->second, n)));
          } catch (const ContractViolation& e) {
            throw ParseError(n, e.what());
          }
        } else {
          throw ParseError(n, "unknown app attribute '" + line.tokens[i] +
                                  "'");
        }
      }
      continue;
    }
    if (!app) throw ParseError(n, "expected 'app' before '" + head + "'");

    if (head == "array") {
      if (kernel)
        throw ParseError(n, "arrays must be declared before kernels");
      if (line.tokens.size() < 3)
        throw ParseError(n, "array needs a name and a type");
      const RefSpec spec = parse_ref_spec(line.tokens[2], n);
      const auto type = parse_type(spec.array);
      if (!type)
        throw ParseError(n, "unknown element type '" + spec.array + "'");
      if (spec.subscripts.empty())
        throw ParseError(n, "array needs at least one extent");
      std::vector<std::int64_t> dims;
      std::int64_t total_elements = 1;
      for (const std::string& extent : spec.subscripts) {
        const std::int64_t dim = parse_int(extent, n);
        if (dim <= 0)
          throw ParseError(n, "array extent must be positive, got '" +
                                  extent + "'");
        // Cap the element count so bytes() (elements x up-to-16-byte
        // elements) cannot overflow 64 bits further down the pipeline.
        if (dim > (std::int64_t{1} << 58) / total_elements)
          throw ParseError(n, "array too large (element count exceeds 2^58)");
        total_elements *= dim;
        dims.push_back(dim);
      }
      bool sparse = false, temporary = false;
      for (std::size_t i = 3; i < line.tokens.size(); ++i) {
        if (line.tokens[i] == "sparse")
          sparse = true;
        else if (line.tokens[i] == "temporary")
          temporary = true;
        else
          throw ParseError(n, "unknown array attribute '" + line.tokens[i] +
                                  "'");
      }
      if (!array_names.insert(line.tokens[1]).second)
        throw ParseError(n, "duplicate array '" + line.tokens[1] + "'");
      try {
        const ArrayId id =
            app->array(line.tokens[1], *type, std::move(dims), sparse);
        if (temporary) app->temporary(id);
      } catch (const ContractViolation& e) {
        throw ParseError(n, e.what());
      }
      continue;
    }

    if (head == "kernel") {
      if (line.tokens.size() < 2) throw ParseError(n, "kernel needs a name");
      check_kernel_complete();
      if (!kernel_names.insert(line.tokens[1]).second)
        throw ParseError(n, "duplicate kernel '" + line.tokens[1] + "'");
      try {
        kernel = &app->kernel(line.tokens[1]);
      } catch (const ContractViolation& e) {
        throw ParseError(n, e.what());
      }
      kernel_name = line.tokens[1];
      kernel_line = n;
      have_statement = false;
      for (std::size_t i = 2; i < line.tokens.size(); ++i) {
        const auto attr = split_attr(line.tokens[i]);
        if (attr && attr->first == "syncs")
          kernel->syncs(static_cast<int>(parse_int(attr->second, n)));
        else
          throw ParseError(n, "unknown kernel attribute '" + line.tokens[i] +
                                  "'");
      }
      continue;
    }
    if (!kernel)
      throw ParseError(n, "expected 'kernel' before '" + head + "'");

    if (head == "parallel" || head == "for") {
      std::size_t idx = 0;
      bool parallel = false;
      if (head == "parallel") {
        parallel = true;
        if (line.tokens.size() < 2 || line.tokens[1] != "for")
          throw ParseError(n, "'parallel' must be followed by 'for'");
        idx = 1;
      }
      // for <var> in <lo>..<hi> [step <s>]
      if (line.tokens.size() < idx + 4 || line.tokens[idx + 2] != "in")
        throw ParseError(n, "loop syntax: [parallel] for v in lo..hi");
      const std::string& var = line.tokens[idx + 1];
      const std::string& range = line.tokens[idx + 3];
      const std::size_t dots = range.find("..");
      if (dots == std::string::npos)
        throw ParseError(n, "loop range must be lo..hi, got '" + range + "'");
      const std::int64_t lo = parse_int(range.substr(0, dots), n);
      const std::int64_t hi = parse_int(range.substr(dots + 2), n);
      std::int64_t step = 1;
      if (line.tokens.size() >= idx + 6 && line.tokens[idx + 4] == "step")
        step = parse_int(line.tokens[idx + 5], n);
      try {
        kernel->loop_range(var, lo, hi, step, parallel);
      } catch (const ContractViolation& e) {
        throw ParseError(n, e.what());
      }
      continue;
    }

    if (head == "stmt") {
      double flops = 0.0, special = 0.0;
      std::optional<int> depth;
      for (std::size_t i = 1; i < line.tokens.size(); ++i) {
        const auto attr = split_attr(line.tokens[i]);
        if (!attr)
          throw ParseError(n, "stmt attributes must be key=value");
        if (attr->first == "flops")
          flops = parse_number(attr->second, n);
        else if (attr->first == "special")
          special = parse_number(attr->second, n);
        else if (attr->first == "depth")
          depth = static_cast<int>(parse_int(attr->second, n));
        else
          throw ParseError(n, "unknown stmt attribute '" + attr->first + "'");
      }
      try {
        kernel->statement(flops, special);
        if (depth) kernel->at_depth(*depth);
      } catch (const ContractViolation& e) {
        throw ParseError(n, e.what());
      }
      have_statement = true;
      continue;
    }

    if (head == "load" || head == "store" || head == "load_indirect" ||
        head == "store_indirect") {
      if (!have_statement)
        throw ParseError(n, "'" + head + "' before any 'stmt'");
      if (line.tokens.size() < 2)
        throw ParseError(n, "'" + head + "' needs an array reference");
      const RefSpec spec = parse_ref_spec(line.tokens[1], n);
      ArrayId array = -1;
      try {
        array = app->array_id(spec.array);
      } catch (const ContractViolation&) {
        throw ParseError(n, "unknown array '" + spec.array + "'");
      }

      if (head == "load_indirect" || head == "store_indirect") {
        if (!spec.subscripts.empty())
          throw ParseError(n, head + " takes no subscripts");
        if (head == "load_indirect")
          kernel->load_indirect(array);
        else
          kernel->store_indirect(array);
        continue;
      }

      std::vector<AffineExpr> subscripts;
      std::vector<int> indirect_dims;
      for (std::size_t d = 0; d < spec.subscripts.size(); ++d) {
        if (spec.subscripts[d] == "?") {
          indirect_dims.push_back(static_cast<int>(d));
          subscripts.push_back(AffineExpr::make_constant(0));
        } else {
          try {
            subscripts.push_back(parse_affine(spec.subscripts[d], *kernel, n));
          } catch (const ContractViolation& e) {
            throw ParseError(n, e.what());
          }
        }
      }
      std::vector<std::string> deps;
      for (std::size_t i = 2; i < line.tokens.size(); ++i) {
        const auto attr = split_attr(line.tokens[i]);
        if (attr && attr->first == "deps")
          deps = split_commas(attr->second);
        else
          throw ParseError(n, "unknown reference attribute '" +
                                  line.tokens[i] + "'");
      }
      try {
        if (!indirect_dims.empty()) {
          if (head == "load")
            kernel->load_gather(array, std::move(subscripts),
                                std::move(indirect_dims), deps);
          else
            kernel->store_scatter(array, std::move(subscripts),
                                  std::move(indirect_dims), deps);
        } else {
          if (!deps.empty())
            throw ParseError(n, "deps= requires a '?' subscript");
          if (head == "load")
            kernel->load(array, std::move(subscripts));
          else
            kernel->store(array, std::move(subscripts));
        }
      } catch (const ContractViolation& e) {
        throw ParseError(n, e.what());
      }
      continue;
    }

    throw ParseError(n, "unknown directive '" + head + "'");
  }

  if (!app) throw ParseError(1, "missing 'app' line");
  check_kernel_complete();
  try {
    return app->build();
  } catch (const ContractViolation& e) {
    throw ParseError(lines.back().number, std::string("validation: ") +
                                              e.what());
  }
}

AppSkeleton parse_skeleton_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw ParseError(path, 0, "cannot open file");
  std::ostringstream contents;
  contents << file.rdbuf();
  try {
    return parse_skeleton(contents.str());
  } catch (const ParseError& e) {
    throw ParseError(path, e.line(), e.message());
  }
}

util::ArtifactCache<AppSkeleton>& skeleton_parse_cache() {
  static util::ArtifactCache<AppSkeleton> cache;
  return cache;
}

std::shared_ptr<const AppSkeleton> parse_skeleton_cached(
    std::string_view text) {
  util::KeyBuilder key;
  key.field("gskel").field(text);
  return skeleton_parse_cache().get_or_build(
      key.hash(), [&] { return parse_skeleton(text); });
}

std::shared_ptr<const AppSkeleton> parse_skeleton_file_cached(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) throw ParseError(path, 0, "cannot open file");
  std::ostringstream contents;
  contents << file.rdbuf();
  try {
    return parse_skeleton_cached(contents.str());
  } catch (const ParseError& e) {
    throw ParseError(path, e.line(), e.message());
  }
}

}  // namespace grophecy::skeleton
