#include "faults/fault_injector.h"

#include <cmath>
#include <cstdlib>

#include "util/contracts.h"
#include "util/error.h"

namespace grophecy::faults {

FaultPlan FaultPlan::paper_outliers(double probability, double factor,
                                    std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.slow_probability = probability;
  plan.slow_factor = factor;
  return plan;
}

FaultPlan FaultPlan::flaky(double failure_probability,
                           double hang_probability, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.failure_probability = failure_probability;
  plan.hang_probability = hang_probability;
  return plan;
}

FaultPlan FaultPlan::broken(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.always_fail = true;
  return plan;
}

FaultEngine::FaultEngine(FaultPlan plan) : plan_(plan), rng_(plan.seed) {
  GROPHECY_EXPECTS(plan_.slow_probability >= 0.0 &&
                   plan_.slow_probability <= 1.0);
  GROPHECY_EXPECTS(plan_.slow_factor > 0.0);
  GROPHECY_EXPECTS(plan_.heavy_tail_probability >= 0.0 &&
                   plan_.heavy_tail_probability <= 1.0);
  GROPHECY_EXPECTS(plan_.heavy_tail_shape > 0.0);
  GROPHECY_EXPECTS(plan_.heavy_tail_cap >= 1.0);
  GROPHECY_EXPECTS(plan_.failure_probability >= 0.0 &&
                   plan_.failure_probability <= 1.0);
  GROPHECY_EXPECTS(plan_.fail_first >= 0);
  GROPHECY_EXPECTS(plan_.hang_probability >= 0.0 &&
                   plan_.hang_probability <= 1.0);
  GROPHECY_EXPECTS(plan_.hang_factor > 1.0);
  GROPHECY_EXPECTS(plan_.drift_per_call >= 0.0);
  GROPHECY_EXPECTS(plan_.abort_after >= -1);
  GROPHECY_EXPECTS(plan_.abort_probability >= 0.0 &&
                   plan_.abort_probability <= 1.0);
  GROPHECY_EXPECTS(plan_.loop_after >= -1);
  GROPHECY_EXPECTS(plan_.loop_probability >= 0.0 &&
                   plan_.loop_probability <= 1.0);
}

namespace {

/// A well-defined infinite loop: the volatile access is observable
/// behaviour, so the compiler may not assume termination (a bare `for(;;)`
/// with an empty body is undefined in C++20). From outside the process it
/// is pure silence — alive to waitpid, dead to heartbeats.
[[noreturn]] void spin_forever() {
  volatile unsigned long long spin = 0;
  for (;;) ++spin;
}

}  // namespace

double FaultEngine::transform(double clean_seconds) {
  const std::uint64_t index = stats_.calls++;  // 0-based observation index

  // Process faults first: they model the whole process dying, so nothing
  // downstream (including the failure faults) gets a say. The bernoulli
  // draws are guarded by probability > 0 so plans without process faults
  // consume exactly the same RNG stream as before these kinds existed.
  if ((plan_.abort_after >= 0 &&
       index >= static_cast<std::uint64_t>(plan_.abort_after)) ||
      (plan_.abort_probability > 0.0 &&
       rng_.bernoulli(plan_.abort_probability))) {
    ++stats_.aborts;
    std::abort();
  }
  if ((plan_.loop_after >= 0 &&
       index >= static_cast<std::uint64_t>(plan_.loop_after)) ||
      (plan_.loop_probability > 0.0 &&
       rng_.bernoulli(plan_.loop_probability))) {
    ++stats_.loops;
    spin_forever();
  }

  if (plan_.always_fail ||
      index < static_cast<std::uint64_t>(plan_.fail_first) ||
      (plan_.failure_probability > 0.0 &&
       rng_.bernoulli(plan_.failure_probability))) {
    ++stats_.failures;
    throw MeasurementError("injected measurement failure (observation " +
                           std::to_string(index) + ")");
  }

  double t = clean_seconds;

  if (plan_.drift_per_call > 0.0) {
    t *= std::pow(1.0 + plan_.drift_per_call, static_cast<double>(index));
  }
  if (plan_.slow_probability > 0.0 &&
      rng_.bernoulli(plan_.slow_probability)) {
    t *= plan_.slow_factor;
    ++stats_.slow;
  }
  if (plan_.heavy_tail_probability > 0.0 &&
      rng_.bernoulli(plan_.heavy_tail_probability)) {
    // Pareto with minimum 1: factor = (1 - u)^(-1/shape), capped.
    const double u = rng_.uniform();
    const double factor =
        std::min(plan_.heavy_tail_cap,
                 std::pow(1.0 - u, -1.0 / plan_.heavy_tail_shape));
    t *= factor;
    ++stats_.heavy_tail;
  }
  if (plan_.hang_probability > 0.0 &&
      rng_.bernoulli(plan_.hang_probability)) {
    t *= plan_.hang_factor;
    ++stats_.hangs;
  }

  ++stats_.returned;
  return t;
}

FaultInjector::FaultInjector(pcie::TransferTimer& inner, FaultPlan plan)
    : inner_(inner), engine_(plan) {}

double FaultInjector::time_transfer(std::uint64_t bytes, hw::Direction dir,
                                    hw::HostMemory mem) {
  return engine_.transform(inner_.time_transfer(bytes, dir, mem));
}

FaultyKernelTimer::FaultyKernelTimer(sim::KernelTimer& inner, FaultPlan plan)
    : inner_(inner), engine_(plan) {}

double FaultyKernelTimer::run_launch_seconds(
    const gpumodel::KernelCharacteristics& kc) {
  return engine_.transform(inner_.run_launch_seconds(kc));
}

}  // namespace grophecy::faults
