// Deterministic fault injection for the measurement layer.
//
// The paper's own measurements were noisy: §V-A reports CFD transfers that
// "inexplicably" took about twice the expected time. A calibration pipeline
// that averages a handful of runs (§III-C averages ten) silently bakes such
// outliers into alpha and beta, corrupting every downstream prediction.
// Before trusting the robust pipeline in pcie::TransferCalibrator, we need
// a way to *script* the failure modes it defends against.
//
// FaultInjector wraps any pcie::TransferTimer (and FaultyKernelTimer wraps
// any sim::KernelTimer) and perturbs the wrapped observations according to
// a FaultPlan:
//
//   slow outliers     occasional transfers take `slow_factor` x as long
//                     (the §V-A anomaly; the scenario the acceptance tests
//                     and bench/ablation_calibration.cpp reproduce)
//   heavy tail        occasional Pareto-distributed slowdowns — rare but
//                     extreme, the regime where means are meaningless
//   transient failures observations fail outright with MeasurementError
//                     (probabilistically, or the first `fail_first` calls,
//                     or always) — exercises retry/backoff and fallback
//   hangs             observations take `hang_factor` x as long; the
//                     calibrator's watchdog surfaces them as timeouts
//   drift             every observation is (1 + drift_per_call)^n slower —
//                     a warming link or a busy host, defeating "measure
//                     once, trust forever" calibration
//
// Everything is seeded: the same (plan, wrapped-timer seed) pair replays
// the same fault sequence, so tests can assert exact behaviour. Fault
// decisions consume a dedicated RNG stream; the wrapped timer's stream is
// untouched, so a plan with all faults disabled is observation-for-
// observation identical to the bare timer.
#pragma once

#include <cstdint>

#include "pcie/bus.h"
#include "sim/gpu_sim.h"
#include "util/rng.h"

namespace grophecy::faults {

/// Scripts which faults fire and how hard. Default: no faults at all.
struct FaultPlan {
  std::uint64_t seed = 0xFA17ULL;  ///< Seed of the fault-decision stream.

  /// --- slow outliers (paper §V-A) ---
  double slow_probability = 0.0;  ///< Per-observation outlier probability.
  double slow_factor = 2.0;       ///< Slowdown of an outlier observation.

  /// --- heavy-tailed slowdowns ---
  /// With probability `heavy_tail_probability`, multiply the observation by
  /// a Pareto(shape) factor >= 1, capped at `heavy_tail_cap`. Smaller shape
  /// = heavier tail (shape <= 1 has no finite mean before the cap).
  double heavy_tail_probability = 0.0;
  double heavy_tail_shape = 1.5;
  double heavy_tail_cap = 50.0;

  /// --- transient measurement failures (thrown MeasurementError) ---
  double failure_probability = 0.0;  ///< Per-observation failure chance.
  int fail_first = 0;                ///< The first N observations fail.
  bool always_fail = false;          ///< Every observation fails.

  /// --- stuck/hung observations ---
  /// With probability `hang_probability` the observation takes
  /// `hang_factor` x the clean time. A measurement harness with a watchdog
  /// (RobustnessOptions::timeout_s) surfaces these as timeouts.
  double hang_probability = 0.0;
  double hang_factor = 1000.0;

  /// --- slow drift ---
  /// Observation n (0-based) is additionally scaled by
  /// (1 + drift_per_call)^n.
  double drift_per_call = 0.0;

  /// --- process faults (for process-sharded execution) ---
  /// These do not perturb the observation: they take down the whole
  /// process, which is the failure mode SweepOptions::shards exists to
  /// survive. A thread pool cannot contain them — only the shard
  /// supervisor (exec/shard/supervisor.h) can, by reaping the dead
  /// worker and re-assigning its job. Useless (and fatal) outside a
  /// sacrificial worker process; the chaos suite is their only customer.
  ///
  /// abort: observation >= abort_after (0-based; -1 disables), or with
  /// probability abort_probability, calls std::abort() — SIGABRT, the
  /// stand-in for a segfault or OOM kill.
  int abort_after = -1;
  double abort_probability = 0.0;
  /// loop: observation >= loop_after (-1 disables), or with probability
  /// loop_probability, spins forever (a volatile counter, so the loop is
  /// well-defined C++). Never returns, never throws, never yields — the
  /// only external symptom is heartbeat silence, exercising the
  /// supervisor's heartbeat-timeout kill.
  int loop_after = -1;
  double loop_probability = 0.0;

  /// The paper's §V-A scenario: `probability` of a `factor`-times-slow
  /// transfer, everything else clean.
  static FaultPlan paper_outliers(double probability = 0.05,
                                  double factor = 2.0,
                                  std::uint64_t seed = 0xFA17ULL);

  /// A flaky link: transient failures plus occasional hangs.
  static FaultPlan flaky(double failure_probability = 0.2,
                         double hang_probability = 0.02,
                         std::uint64_t seed = 0xFA17ULL);

  /// A dead measurement path: every observation throws.
  static FaultPlan broken(std::uint64_t seed = 0xFA17ULL);
};

/// Counts of what the injector actually did (telemetry for tests/benches).
struct FaultStats {
  std::uint64_t calls = 0;         ///< Observations requested.
  std::uint64_t returned = 0;      ///< Observations that produced a value.
  std::uint64_t slow = 0;          ///< Slow-outlier faults injected.
  std::uint64_t heavy_tail = 0;    ///< Heavy-tail faults injected.
  std::uint64_t failures = 0;      ///< MeasurementErrors thrown.
  std::uint64_t hangs = 0;         ///< Hang faults injected.
  /// Process faults started (the process rarely survives to report them;
  /// they are observable only through shared memory or a core dump).
  std::uint64_t aborts = 0;
  std::uint64_t loops = 0;
};

/// The fault logic itself, independent of what is being measured: feed it
/// a clean observation, get back a perturbed one (or MeasurementError).
/// Shared by FaultInjector (transfers) and FaultyKernelTimer (kernels).
class FaultEngine {
 public:
  explicit FaultEngine(FaultPlan plan);

  /// Applies the plan to one clean observation. Throws MeasurementError
  /// for failure faults; otherwise returns the perturbed duration.
  double transform(double clean_seconds);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  util::Rng rng_;
  FaultStats stats_;
};

/// A TransferTimer that injects faults into another TransferTimer.
/// Drop-in: calibration code cannot tell it from real (mis)behaving
/// hardware, which is the point.
class FaultInjector final : public pcie::TransferTimer {
 public:
  /// Wraps `inner` (not owned; must outlive the injector).
  FaultInjector(pcie::TransferTimer& inner, FaultPlan plan);

  double time_transfer(std::uint64_t bytes, hw::Direction dir,
                       hw::HostMemory mem) override;

  const FaultStats& stats() const { return engine_.stats(); }
  const FaultPlan& plan() const { return engine_.plan(); }

 private:
  pcie::TransferTimer& inner_;
  FaultEngine engine_;
};

/// A KernelTimer that injects faults into another KernelTimer (the GPU
/// simulators' launch timings).
class FaultyKernelTimer final : public sim::KernelTimer {
 public:
  /// Wraps `inner` (not owned; must outlive the wrapper).
  FaultyKernelTimer(sim::KernelTimer& inner, FaultPlan plan);

  double run_launch_seconds(
      const gpumodel::KernelCharacteristics& kc) override;

  const FaultStats& stats() const { return engine_.stats(); }
  const FaultPlan& plan() const { return engine_.plan(); }

 private:
  sim::KernelTimer& inner_;
  FaultEngine engine_;
};

}  // namespace grophecy::faults
