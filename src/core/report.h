// Projection reports: everything GROPHECY++ predicts and everything the
// machine "measures" for one application offload, plus the paper's derived
// metrics (speedups and error magnitudes).
#pragma once

#include <string>
#include <vector>

#include "dataflow/transfer_plan.h"
#include "gpumodel/explorer.h"
#include "pcie/calibrator.h"

namespace grophecy::core {

/// Model-vs-machine results for one kernel of the application.
struct KernelResult {
  std::string name;
  gpumodel::ProjectedKernel projected;  ///< Chosen variant + model breakdown.
  std::int64_t launches = 1;            ///< Launches over the whole app run.
  double predicted_s = 0.0;             ///< Total predicted time, all launches.
  double measured_s = 0.0;              ///< Total simulated time, all launches.
};

/// Model-vs-machine results for one transfer of the plan.
struct TransferResult {
  dataflow::Transfer transfer;
  double predicted_s = 0.0;
  double measured_s = 0.0;
};

/// The complete projection of one application on one machine.
struct ProjectionReport {
  std::string app_name;
  std::string machine_name;
  int iterations = 1;

  dataflow::TransferPlan plan;
  std::vector<KernelResult> kernels;
  std::vector<TransferResult> transfers;

  /// Health of the bus-model calibration behind every transfer prediction.
  /// When calibration.used_fallback is true, transfer predictions rest on
  /// the spec-derived model, not on measurements — treat them accordingly.
  pcie::CalibrationSummary calibration;

  /// Accounting of the shared-artifact caches behind this projection
  /// (docs/performance.md, "Artifact caches"). Content-addressed keys
  /// make a cached plan bit-identical to a freshly analyzed one, so these
  /// fields record provenance, never a result difference. Which concurrent
  /// job takes the miss is scheduling dependent, so `plan_from_cache` is
  /// diagnostic only — it is excluded from journals and summaries.
  struct ArtifactSummary {
    bool caches_enabled = false;
    bool plan_from_cache = false;  ///< Plan served from the usage cache.
    std::uint64_t usage_key = 0;   ///< Content key of the analyzed skeleton.
  };
  ArtifactSummary artifacts;

  /// Device-resident footprint: every array any kernel touches must live
  /// in GPU memory for the whole offload (paper §II-B allocation model).
  std::uint64_t device_footprint_bytes = 0;
  /// False when the footprint exceeds the GPU's memory: the projection is
  /// then optimistic — the real port would need chunked offloads.
  bool fits_device_memory = true;

  double predicted_kernel_s = 0.0;    ///< Sum over kernels (all launches).
  double measured_kernel_s = 0.0;
  double predicted_transfer_s = 0.0;  ///< Sum over the transfer plan.
  double measured_transfer_s = 0.0;
  double measured_cpu_s = 0.0;        ///< The ported region on the CPU.

  // --- totals (paper §IV-A: total GPU time = kernel + transfer) ---
  double predicted_total_s() const {
    return predicted_kernel_s + predicted_transfer_s;
  }
  double measured_total_s() const {
    return measured_kernel_s + measured_transfer_s;
  }
  double measured_percent_transfer() const;

  // --- speedups (total CPU time / total GPU time) ---
  double measured_speedup() const;
  /// Prediction using only the projected kernel time (no transfers).
  double predicted_speedup_kernel_only() const;
  /// Prediction using only the projected transfer time.
  double predicted_speedup_transfer_only() const;
  /// Prediction using kernel + transfer time (GROPHECY++).
  double predicted_speedup_both() const;

  /// Iteration-count -> infinity limits (transfers amortize away).
  double measured_speedup_limit() const;
  double predicted_speedup_limit() const;

  /// Analytic speedup curve: projects this report to a different iteration
  /// count without re-running the pipeline, using the paper's structure
  /// (kernel and CPU time scale with iterations, transfers do not).
  /// Requires n >= 1. Note: re-projecting with the engine may differ
  /// slightly when iteration fusion changes the chosen variant.
  double predicted_speedup_at_iterations(int n) const;
  double measured_speedup_at_iterations(int n) const;

  // --- error magnitudes, percent (paper §V-A definition) ---
  double kernel_error_pct() const;
  double transfer_error_pct() const;
  double speedup_error_kernel_only_pct() const;
  double speedup_error_transfer_only_pct() const;
  double speedup_error_both_pct() const;
  double speedup_error_limit_pct() const;

  /// Multi-line human-readable summary.
  std::string describe() const;
};

}  // namespace grophecy::core
