// Transfer/compute overlap projection (streamed offload).
//
// The paper models the offload as strictly serial: all input moves, the
// kernels run, all output moves back — which is how its benchmarks were
// coded (cudaMemcpy + kernel launches). CUDA streams allow a pipelined
// alternative for chunkable kernels: split the data into c chunks and
// overlap H2D(i+1) with kernel(i) and D2H(i-1). This analyzer answers the
// natural follow-up question to the paper's verdicts: *if transfers turn
// your GPU win into a loss, could streaming win it back?*
//
// The projection reuses the calibrated linear bus model. Chunking is a
// two-edged sword under T(d) = alpha + beta*d: more chunks shrink the
// pipeline fill/drain but pay the per-transfer alpha more often, so the
// analyzer sweeps the chunk count and reports the optimum.
//
// Applicability is the caller's responsibility: the timing model assumes
// the kernel's work and data partition cleanly by chunk (true for
// element-wise kernels and independent-row kernels like Stassuij's SpMM;
// stencils need halo exchange that this model ignores).
#pragma once

#include <cstdint>

#include "core/report.h"
#include "pcie/linear_model.h"

namespace grophecy::core {

/// Projected timing of one chunked, streamed offload.
struct OverlapProjection {
  int chunks = 1;
  double serial_s = 0.0;      ///< input + kernel + output, back to back.
  double overlapped_s = 0.0;  ///< pipelined estimate at this chunk count.

  double speedup() const { return serial_s / overlapped_s; }
  bool profitable() const { return overlapped_s < serial_s * 0.999; }
};

/// Sweeps chunk counts for a projected application and returns the best.
class OverlapAnalyzer {
 public:
  /// `max_chunks` bounds the sweep (streams and buffers are not free).
  explicit OverlapAnalyzer(pcie::BusModel bus, int max_chunks = 64);

  /// Projects the pipeline from an application's projection report
  /// (predicted kernel time + transfer plan). Requires a report with at
  /// least one transfer and non-zero predicted kernel time.
  OverlapProjection best(const ProjectionReport& report) const;

  /// Projects one specific chunk count.
  OverlapProjection at_chunks(const ProjectionReport& report,
                              int chunks) const;

  /// Minimum chunk count at which a double-buffered streamed offload's
  /// per-chunk resident footprint (two chunks in flight) fits the device
  /// memory — chunking is also the remedy when the projection flags
  /// `fits_device_memory == false`. Requires memory_bytes > 0.
  int min_chunks_for_memory(const ProjectionReport& report,
                            std::uint64_t memory_bytes) const;

 private:
  pcie::BusModel bus_;
  int max_chunks_;
};

}  // namespace grophecy::core
