#include "core/memory_advisor.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "dataflow/usage_analyzer.h"
#include "util/rng.h"
#include "util/units.h"

namespace grophecy::core {

MemoryModeAdvisor::MemoryModeAdvisor(hw::MachineSpec machine,
                                     std::uint64_t seed)
    : machine_(std::move(machine)) {
  util::Rng rng(seed);
  pcie::SimulatedBus bus(machine_.pcie, rng.next_u64());
  pcie::TransferCalibrator calibrator;
  pinned_ = calibrator.calibrate(bus, hw::HostMemory::kPinned);
  pageable_ = calibrator.calibrate(bus, hw::HostMemory::kPageable);
  pcie::SimulatedAllocator allocator(machine_.alloc, rng.next_u64());
  alloc_ = pcie::AllocationCalibrator().calibrate(allocator);
}

MemoryModeReport MemoryModeAdvisor::advise(
    const skeleton::AppSkeleton& app) const {
  dataflow::UsageAnalyzer analyzer;
  const dataflow::TransferPlan plan = analyzer.analyze(app);

  // Group the plan by array: one host buffer per array, transfers in both
  // directions priced per mode.
  std::map<skeleton::ArrayId, ArrayModeChoice> by_array;
  auto accumulate = [&](const dataflow::Transfer& transfer) {
    ArrayModeChoice& choice = by_array[transfer.array];
    choice.array = transfer.array;
    choice.array_name = transfer.array_name;
    choice.bytes = std::max(choice.bytes, transfer.bytes);
    choice.pinned_transfer_s +=
        pinned_.predict_seconds(transfer.bytes, transfer.direction);
    choice.pageable_transfer_s +=
        pageable_.predict_seconds(transfer.bytes, transfer.direction);
  };
  for (const dataflow::Transfer& t : plan.host_to_device) accumulate(t);
  for (const dataflow::Transfer& t : plan.device_to_host) accumulate(t);

  MemoryModeReport report;
  for (auto& [array_id, choice] : by_array) {
    choice.pinned_alloc_s =
        alloc_.pinned_host.predict_seconds(choice.bytes);
    choice.pageable_alloc_s =
        alloc_.pageable_host.predict_seconds(choice.bytes);
    choice.recommended = choice.pinned_total_s() <= choice.pageable_total_s()
                             ? hw::HostMemory::kPinned
                             : hw::HostMemory::kPageable;
    report.device_alloc_s += alloc_.device.predict_seconds(choice.bytes);
    report.all_pinned_s += choice.pinned_total_s();
    report.all_pageable_s += choice.pageable_total_s();
    report.mixed_s +=
        std::min(choice.pinned_total_s(), choice.pageable_total_s());
    report.choices.push_back(choice);
  }
  report.uniform_recommendation =
      report.all_pinned_s <= report.all_pageable_s
          ? hw::HostMemory::kPinned
          : hw::HostMemory::kPageable;
  return report;
}

std::string MemoryModeReport::describe() const {
  std::ostringstream oss;
  oss << "memory-mode advice (transfer + host allocation per array):\n";
  for (const ArrayModeChoice& choice : choices) {
    oss << "  " << choice.array_name << " ("
        << util::format_bytes(choice.bytes) << "): pinned "
        << util::format_time(choice.pinned_total_s()) << " (xfer "
        << util::format_time(choice.pinned_transfer_s) << " + pin "
        << util::format_time(choice.pinned_alloc_s) << "), pageable "
        << util::format_time(choice.pageable_total_s()) << " -> "
        << (choice.recommended == hw::HostMemory::kPinned ? "pinned"
                                                          : "pageable")
        << '\n';
  }
  oss << "  uniform pinned " << util::format_time(all_pinned_s)
      << " | uniform pageable " << util::format_time(all_pageable_s)
      << " | per-array mix " << util::format_time(mixed_s) << '\n';
  oss << "  device allocations (cudaMalloc): "
      << util::format_time(device_alloc_s) << '\n';
  oss << "  recommendation: "
      << (uniform_recommendation == hw::HostMemory::kPinned ? "pinned"
                                                            : "pageable")
      << " (uniform), mixed saves "
      << util::format_time(std::min(all_pinned_s, all_pageable_s) - mixed_s)
      << '\n';
  return oss.str();
}

}  // namespace grophecy::core
