#include "core/grophecy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dataflow/usage_analyzer.h"
#include "dataflow/usage_cache.h"
#include "pcie/calibration_cache.h"
#include "skeleton/fingerprint.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace grophecy::core {

namespace {

/// Derives decorrelated seeds for the pipeline's stochastic components.
struct Seeds {
  std::uint64_t calibration_bus;
  std::uint64_t measurement_bus;
  std::uint64_t gpu;
  std::uint64_t cpu;
};

Seeds derive_seeds(std::uint64_t master) {
  util::Rng rng(master);
  Seeds seeds{};
  seeds.calibration_bus = rng.next_u64();
  seeds.measurement_bus = rng.next_u64();
  seeds.gpu = rng.next_u64();
  seeds.cpu = rng.next_u64();
  return seeds;
}

pcie::CalibrationReport calibrate(const hw::MachineSpec& machine,
                                  const ProjectionOptions& options,
                                  std::uint64_t seed) {
  // Calibration runs on its own bus instance: on real hardware it is a
  // separate synthetic-benchmark invocation with its own noise. The
  // machine spec serves as the degradation fallback, so engine
  // construction survives a measurement path that cannot converge.
  auto measure = [&] {
    pcie::SimulatedBus bus(machine.pcie, seed);
    pcie::TransferCalibrator calibrator(options.calibration);
    return calibrator.calibrate_robust(bus, options.memory, &machine.pcie);
  };
  if (!options.use_calibration_cache) return measure();
  const std::string key = pcie::calibration_cache_key(
      machine.pcie, options.calibration, options.memory, seed);
  return pcie::CalibrationCache::instance().get_or_calibrate(key, measure);
}

/// Pass-through used in the constructor initializer list so invalid
/// options surface as UsageError *before* any member (notably the
/// calibrator, which enforces the same ranges as hard contracts) runs.
ProjectionOptions validated(ProjectionOptions options) {
  options.validate();
  return options;
}

}  // namespace

void ProjectionOptions::validate() const {
  auto require = [](bool ok, const char* field, const std::string& why) {
    if (!ok)
      throw UsageError(util::strfmt("ProjectionOptions.%s %s", field,
                                    why.c_str()));
  };
  require(measurement_runs > 0, "measurement_runs",
          util::strfmt("must be positive, got %d", measurement_runs));
  require(calibration.replicates > 0, "calibration.replicates",
          util::strfmt("must be positive, got %d", calibration.replicates));
  require(calibration.small_bytes > 0, "calibration.small_bytes",
          "must be positive");
  require(calibration.small_bytes < calibration.large_bytes,
          "calibration.large_bytes", "must exceed small_bytes");
  const pcie::RobustnessOptions& r = calibration.robustness;
  require(r.max_retries >= 0, "calibration.robustness.max_retries",
          util::strfmt("must be non-negative, got %d", r.max_retries));
  require(r.timeout_s > 0.0, "calibration.robustness.timeout_s",
          util::strfmt("must be positive, got %g", r.timeout_s));
  require(r.backoff_initial_s > 0.0, "calibration.robustness.backoff_initial_s",
          "must be positive");
  require(r.backoff_max_s >= r.backoff_initial_s,
          "calibration.robustness.backoff_max_s",
          "must be >= backoff_initial_s");
  require(r.outlier_z > 0.0, "calibration.robustness.outlier_z",
          "must be positive");
  require(r.target_rel_half_width > 0.0,
          "calibration.robustness.target_rel_half_width", "must be positive");
  require(r.max_replicates >= calibration.replicates,
          "calibration.robustness.max_replicates",
          "must be >= calibration.replicates");
  for (std::uint64_t bytes : calibration.sweep_bytes)
    require(bytes > 0, "calibration.sweep_bytes", "entries must be positive");
  require(event_sim.jitter_quantum >= 0.0, "event_sim.jitter_quantum",
          util::strfmt("must be non-negative, got %g",
                       event_sim.jitter_quantum));
  for (int fuse : fusion_candidates)
    require(fuse >= 1, "fusion_candidates",
            util::strfmt("entries must be >= 1, got %d", fuse));
  require(surrogate.min_train_points >= 2, "surrogate.min_train_points",
          util::strfmt("must be >= 2, got %d", surrogate.min_train_points));
  require(surrogate.max_rel_error > 0.0, "surrogate.max_rel_error",
          util::strfmt("must be positive, got %g", surrogate.max_rel_error));
  require(surrogate.refit_interval > 0, "surrogate.refit_interval",
          util::strfmt("must be positive, got %d", surrogate.refit_interval));
  require(surrogate.lambda > 0.0, "surrogate.lambda",
          util::strfmt("must be positive, got %g", surrogate.lambda));
  require(surrogate.max_pool_points >=
              static_cast<std::size_t>(surrogate.min_train_points),
          "surrogate.max_pool_points", "must be >= min_train_points");
}

Grophecy::Grophecy(hw::MachineSpec machine, ProjectionOptions options)
    : machine_(std::move(machine)),
      options_(validated(std::move(options))),
      measurement_bus_(machine_.pcie,
                       derive_seeds(options_.seed).measurement_bus),
      calibration_report_(calibrate(
          machine_, options_,
          options_.calibration_seed.value_or(
              derive_seeds(options_.seed).calibration_bus))),
      explorer_(machine_.gpu, options_.explorer),
      gpu_sim_(machine_.gpu, derive_seeds(options_.seed).gpu),
      event_sim_(machine_.gpu, derive_seeds(options_.seed).gpu,
                 options_.event_sim),
      cpu_sim_(machine_.cpu, derive_seeds(options_.seed).cpu) {
  if (options_.measurement_noise)
    measurement_bus_.set_noise(*options_.measurement_noise);
  GROPHECY_LOG(kInfo) << "calibrated " << machine_.name << ": H2D "
                      << bus_model().h2d.describe() << ", D2H "
                      << bus_model().d2h.describe();
  if (calibration_report_.used_fallback) {
    GROPHECY_LOG(kWarn) << machine_.name
                        << ": calibration degraded to spec-derived model — "
                        << calibration_report_.warning;
  }
}

ProjectionReport Grophecy::project(const skeleton::AppSkeleton& app) {
  if (options_.use_artifact_caches)
    return project_impl(app, skeleton::usage_fingerprint(app));
  return project_impl(app, std::nullopt);
}

ProjectionReport Grophecy::project(const skeleton::AppSkeleton& app,
                                   std::uint64_t usage_key) {
  if (!options_.use_artifact_caches) return project_impl(app, std::nullopt);
  return project_impl(app, usage_key);
}

ProjectionReport Grophecy::project_impl(
    const skeleton::AppSkeleton& app,
    std::optional<std::uint64_t> usage_key) {
  app.validate();

  ProjectionReport report;
  report.app_name = app.name;
  report.machine_name = machine_.name;
  report.iterations = app.iterations;
  report.calibration = calibration_report_.summary();

  // --- transfer plan (data usage analysis) ---
  if (usage_key) {
    bool from_cache = false;
    const std::shared_ptr<const dataflow::UsageArtifact> artifact =
        dataflow::cached_usage(*usage_key, app, &from_cache);
    report.plan = artifact->plan;
    report.artifacts.caches_enabled = true;
    report.artifacts.plan_from_cache = from_cache;
    report.artifacts.usage_key = *usage_key;
  } else {
    dataflow::UsageAnalyzer analyzer;
    report.plan = analyzer.analyze(app);
  }

  // --- device footprint: every array a kernel touches stays resident ---
  std::vector<bool> touched(app.arrays.size(), false);
  for (const skeleton::KernelSkeleton& kernel : app.kernels)
    for (const skeleton::Statement& stmt : kernel.body)
      for (const skeleton::ArrayRef& ref : stmt.refs)
        touched[static_cast<std::size_t>(ref.array)] = true;
  for (std::size_t i = 0; i < app.arrays.size(); ++i)
    if (touched[i]) report.device_footprint_bytes += app.arrays[i].bytes();
  report.fits_device_memory =
      report.device_footprint_bytes <= machine_.gpu.memory_bytes;
  if (!report.fits_device_memory) {
    GROPHECY_LOG(kWarn) << app.name << ": device footprint "
                        << util::format_bytes(report.device_footprint_bytes)
                        << " exceeds " << machine_.gpu.name << " memory ("
                        << util::format_bytes(machine_.gpu.memory_bytes)
                        << "); projection assumes chunk-free residency";
  }

  // --- kernel projection: explore, pick the best, then "hand-code" the
  // same transformation on the machine (paper §IV-A) ---
  const bool try_fusion = app.kernels.size() == 1 && app.iterations > 1;
  for (const skeleton::KernelSkeleton& kernel : app.kernels) {
    KernelResult result;
    result.name = kernel.name;

    gpumodel::ProjectedKernel best{};
    double best_total = std::numeric_limits<double>::infinity();
    std::int64_t best_launches = app.iterations;
    std::vector<int> fusions =
        try_fusion ? options_.fusion_candidates : std::vector<int>{1};
    for (int fuse : fusions) {
      if (fuse < 1 || fuse > app.iterations) continue;
      gpumodel::ProjectedKernel candidate =
          explorer_.best(app, kernel, fuse);
      const std::int64_t launches = (app.iterations + fuse - 1) / fuse;
      const double total = candidate.time.total_s *
                           static_cast<double>(launches);
      if (total < best_total) {
        best_total = total;
        best = std::move(candidate);
        best_launches = launches;
      }
    }
    GROPHECY_ENSURES(std::isfinite(best_total));

    result.projected = std::move(best);
    result.launches = best_launches;
    result.predicted_s = best_total;
    const double per_launch =
        options_.detailed_sim
            ? event_sim_.measure_launch_seconds(
                  result.projected.characteristics,
                  options_.measurement_runs)
            : gpu_sim_.measure_launch_seconds(
                  result.projected.characteristics,
                  options_.measurement_runs);
    result.measured_s = per_launch * static_cast<double>(best_launches);
    report.predicted_kernel_s += result.predicted_s;
    report.measured_kernel_s += result.measured_s;
    report.kernels.push_back(std::move(result));
  }

  // --- transfer projection and measurement ---
  auto process_transfers = [&](const std::vector<dataflow::Transfer>& list) {
    for (const dataflow::Transfer& transfer : list) {
      TransferResult result;
      result.transfer = transfer;
      result.predicted_s =
          bus_model().predict_seconds(transfer.bytes, transfer.direction);
      result.measured_s = measurement_bus_.measure_mean(
          transfer.bytes, transfer.direction, options_.memory,
          options_.measurement_runs);
      report.predicted_transfer_s += result.predicted_s;
      report.measured_transfer_s += result.measured_s;
      report.transfers.push_back(std::move(result));
    }
  };
  process_transfers(report.plan.host_to_device);
  process_transfers(report.plan.device_to_host);

  // --- CPU baseline measurement ---
  report.measured_cpu_s =
      cpu_sim_.measure_app_seconds(app, options_.measurement_runs);

  return report;
}

}  // namespace grophecy::core
