// Pinned-vs-pageable memory-mode advisor — the paper's future work (§VII:
// "explore the tradeoffs of using different types of memory (i.e., pinned
// and pageable) and account for the overhead of memory allocation").
//
// The paper assumes pinned memory because it is faster for most transfer
// sizes (§III-C), but pinning is not free: cudaHostAlloc must lock and
// register every page, so a buffer that is transferred once may be cheaper
// as plain malloc memory, and tiny host-to-device transfers are actually
// faster pageable. The advisor calibrates bus models under BOTH memory
// modes plus a linear allocation-cost model, prices each transfer of the
// application's plan under each mode including the host-buffer allocation,
// and recommends a per-array choice as well as the best uniform policy.
#pragma once

#include <string>
#include <vector>

#include "dataflow/transfer_plan.h"
#include "hw/machine.h"
#include "pcie/allocation.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "skeleton/skeleton.h"

namespace grophecy::core {

/// Per-array mode decision with its cost breakdown, seconds.
struct ArrayModeChoice {
  skeleton::ArrayId array = -1;
  std::string array_name;
  std::uint64_t bytes = 0;        ///< Host buffer size.
  double pinned_transfer_s = 0.0;   ///< All transfers of this array, pinned.
  double pageable_transfer_s = 0.0;
  double pinned_alloc_s = 0.0;      ///< cudaHostAlloc of the host buffer.
  double pageable_alloc_s = 0.0;    ///< malloc of the host buffer.
  hw::HostMemory recommended = hw::HostMemory::kPinned;

  double pinned_total_s() const { return pinned_transfer_s + pinned_alloc_s; }
  double pageable_total_s() const {
    return pageable_transfer_s + pageable_alloc_s;
  }
};

/// Whole-application memory-mode recommendation.
struct MemoryModeReport {
  std::vector<ArrayModeChoice> choices;
  double device_alloc_s = 0.0;    ///< cudaMalloc overhead (mode independent).
  double all_pinned_s = 0.0;      ///< Uniform pinned: transfers + allocation.
  double all_pageable_s = 0.0;
  double mixed_s = 0.0;           ///< Per-array best.
  hw::HostMemory uniform_recommendation = hw::HostMemory::kPinned;

  std::string describe() const;
};

/// Calibrates both memory modes and the allocator, then advises per app.
class MemoryModeAdvisor {
 public:
  explicit MemoryModeAdvisor(hw::MachineSpec machine,
                             std::uint64_t seed = 42);

  /// Analyzes the app's transfer plan and prices it under both modes.
  MemoryModeReport advise(const skeleton::AppSkeleton& app) const;

  const pcie::BusModel& pinned_model() const { return pinned_; }
  const pcie::BusModel& pageable_model() const { return pageable_; }
  const pcie::AllocationModel& allocation_model() const { return alloc_; }

 private:
  hw::MachineSpec machine_;
  pcie::BusModel pinned_;
  pcie::BusModel pageable_;
  pcie::AllocationModel alloc_;
};

}  // namespace grophecy::core
