#include "core/overlap.h"

#include <algorithm>

#include "util/contracts.h"

namespace grophecy::core {

OverlapAnalyzer::OverlapAnalyzer(pcie::BusModel bus, int max_chunks)
    : bus_(std::move(bus)), max_chunks_(max_chunks) {
  GROPHECY_EXPECTS(max_chunks_ >= 1);
}

OverlapProjection OverlapAnalyzer::at_chunks(const ProjectionReport& report,
                                             int chunks) const {
  GROPHECY_EXPECTS(chunks >= 1);
  GROPHECY_EXPECTS(report.predicted_kernel_s > 0.0);
  GROPHECY_EXPECTS(!report.plan.host_to_device.empty() ||
                   !report.plan.device_to_host.empty());

  OverlapProjection out;
  out.chunks = chunks;

  // Chunked transfer stages: every array splits into `chunks` pieces, each
  // paying the per-transfer latency (alpha) — this is where over-chunking
  // loses.
  auto chunked_total = [&](const std::vector<dataflow::Transfer>& list) {
    double total = 0.0;
    for (const dataflow::Transfer& t : list) {
      const std::uint64_t piece =
          std::max<std::uint64_t>(1, t.bytes / chunks);
      total += bus_.predict_seconds(piece, t.direction) * chunks;
    }
    return total;
  };
  const double h2d = chunked_total(report.plan.host_to_device);
  const double d2h = chunked_total(report.plan.device_to_host);
  const double kernel = report.predicted_kernel_s;

  out.serial_s = report.predicted_total_s();

  // Three-stage pipeline over c chunks: fill with the first chunk's input,
  // drain with the last chunk's output, and in steady state every chunk
  // costs the slowest stage. Per-chunk kernel launches add overhead that
  // the serial version pays only once per kernel; approximate it inside
  // the kernel stage (kernel time already includes one launch; scale by
  // chunks conservatively only for the steady-state term).
  const double stage =
      std::max({h2d / chunks, kernel / chunks, d2h / chunks});
  out.overlapped_s = h2d / chunks + stage * std::max(0, chunks - 1) +
                     kernel / chunks + d2h / chunks;
  return out;
}

int OverlapAnalyzer::min_chunks_for_memory(
    const ProjectionReport& report, std::uint64_t memory_bytes) const {
  GROPHECY_EXPECTS(memory_bytes > 0);
  const std::uint64_t footprint = report.device_footprint_bytes;
  // Double buffering keeps two chunks resident at once.
  const std::uint64_t needed = 2 * footprint;
  if (needed <= memory_bytes) return 1;
  return static_cast<int>((needed + memory_bytes - 1) / memory_bytes);
}

OverlapProjection OverlapAnalyzer::best(
    const ProjectionReport& report) const {
  OverlapProjection best_projection = at_chunks(report, 1);
  for (int chunks = 2; chunks <= max_chunks_; chunks *= 2) {
    const OverlapProjection candidate = at_chunks(report, chunks);
    if (candidate.overlapped_s < best_projection.overlapped_s)
      best_projection = candidate;
  }
  return best_projection;
}

}  // namespace grophecy::core
