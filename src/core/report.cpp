#include "core/report.h"

#include <sstream>

#include "util/contracts.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace grophecy::core {

double ProjectionReport::measured_percent_transfer() const {
  return measured_transfer_s / measured_total_s() * 100.0;
}

double ProjectionReport::measured_speedup() const {
  return measured_cpu_s / measured_total_s();
}

double ProjectionReport::predicted_speedup_kernel_only() const {
  return measured_cpu_s / predicted_kernel_s;
}

double ProjectionReport::predicted_speedup_transfer_only() const {
  return measured_cpu_s / predicted_transfer_s;
}

double ProjectionReport::predicted_speedup_both() const {
  return measured_cpu_s / predicted_total_s();
}

double ProjectionReport::measured_speedup_limit() const {
  return measured_cpu_s / measured_kernel_s;
}

double ProjectionReport::predicted_speedup_at_iterations(int n) const {
  GROPHECY_EXPECTS(n >= 1);
  const double scale = static_cast<double>(n) / iterations;
  return measured_cpu_s * scale /
         (predicted_kernel_s * scale + predicted_transfer_s);
}

double ProjectionReport::measured_speedup_at_iterations(int n) const {
  GROPHECY_EXPECTS(n >= 1);
  const double scale = static_cast<double>(n) / iterations;
  return measured_cpu_s * scale /
         (measured_kernel_s * scale + measured_transfer_s);
}

double ProjectionReport::predicted_speedup_limit() const {
  return measured_cpu_s / predicted_kernel_s;
}

double ProjectionReport::kernel_error_pct() const {
  return util::error_magnitude_percent(predicted_kernel_s,
                                       measured_kernel_s);
}

double ProjectionReport::transfer_error_pct() const {
  return util::error_magnitude_percent(predicted_transfer_s,
                                       measured_transfer_s);
}

double ProjectionReport::speedup_error_kernel_only_pct() const {
  return util::error_magnitude_percent(predicted_speedup_kernel_only(),
                                       measured_speedup());
}

double ProjectionReport::speedup_error_transfer_only_pct() const {
  return util::error_magnitude_percent(predicted_speedup_transfer_only(),
                                       measured_speedup());
}

double ProjectionReport::speedup_error_both_pct() const {
  return util::error_magnitude_percent(predicted_speedup_both(),
                                       measured_speedup());
}

double ProjectionReport::speedup_error_limit_pct() const {
  return util::error_magnitude_percent(predicted_speedup_limit(),
                                       measured_speedup_limit());
}

std::string ProjectionReport::describe() const {
  std::ostringstream oss;
  oss << "=== " << app_name << " on " << machine_name
      << " (iterations=" << iterations << ") ===\n";
  if (calibration.used_fallback) {
    oss << "WARNING: calibration degraded to spec-derived bus model — "
        << calibration.warning << '\n';
  }
  oss << "transfers: " << util::format_bytes(plan.input_bytes()) << " in, "
      << util::format_bytes(plan.output_bytes()) << " out\n";
  for (const KernelResult& k : kernels) {
    oss << "  kernel " << k.name << " [" << k.projected.variant.describe()
        << ", bound=" << k.projected.time.bound << "]: predicted "
        << util::format_time(k.predicted_s) << ", measured "
        << util::format_time(k.measured_s) << " (" << k.launches
        << " launches)\n";
  }
  for (const TransferResult& t : transfers) {
    oss << "  transfer "
        << (t.transfer.direction == hw::Direction::kHostToDevice ? "H2D "
                                                                  : "D2H ")
        << t.transfer.array_name << " ("
        << util::format_bytes(t.transfer.bytes) << "): predicted "
        << util::format_time(t.predicted_s) << ", measured "
        << util::format_time(t.measured_s) << '\n';
  }
  oss << util::strfmt(
      "kernel:   predicted %s, measured %s (err %.1f%%)\n",
      util::format_time(predicted_kernel_s).c_str(),
      util::format_time(measured_kernel_s).c_str(), kernel_error_pct());
  oss << util::strfmt(
      "transfer: predicted %s, measured %s (err %.1f%%)\n",
      util::format_time(predicted_transfer_s).c_str(),
      util::format_time(measured_transfer_s).c_str(), transfer_error_pct());
  oss << util::strfmt("cpu:      measured %s\n",
                      util::format_time(measured_cpu_s).c_str());
  oss << util::strfmt(
      "speedup:  measured %.2fx | predicted kernel-only %.2fx (err %.0f%%), "
      "with transfer %.2fx (err %.0f%%)\n",
      measured_speedup(), predicted_speedup_kernel_only(),
      speedup_error_kernel_only_pct(), predicted_speedup_both(),
      speedup_error_both_pct());
  return oss.str();
}

}  // namespace grophecy::core
