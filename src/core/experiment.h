// Experiment drivers shared by the reproduction benches and tests.
//
// ExperimentRunner wires a Grophecy engine to the paper's workload suite on
// a chosen machine (the Argonne testbed by default) so every bench asks the
// same question the same way: "project workload W at data size S for N
// iterations".
#pragma once

#include "core/grophecy.h"
#include "hw/registry.h"
#include "workloads/workload.h"

namespace grophecy::core {

/// Runs paper experiments against one machine.
///
/// Construction validates the options (ProjectionOptions::validate) so a
/// bad knob fails fast with a UsageError naming the field instead of a
/// contract violation deep inside the calibrator.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(hw::MachineSpec machine = hw::anl_eureka(),
                            ProjectionOptions options = {});

  /// Projects one (workload, data size, iterations) configuration.
  ProjectionReport run(const workloads::Workload& workload,
                       const workloads::DataSize& size, int iterations = 1);

  /// Projects every paper data size of one workload at one iteration.
  std::vector<ProjectionReport> run_all_sizes(
      const workloads::Workload& workload, int iterations = 1);

  Grophecy& engine() { return engine_; }
  /// Read-only access for callers that only inspect calibration or
  /// options (project() mutates measurement streams, so it needs the
  /// mutable accessor).
  const Grophecy& engine() const { return engine_; }

 private:
  Grophecy engine_;
};

}  // namespace grophecy::core
