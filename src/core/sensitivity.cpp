#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "core/grophecy.h"
#include "hw/machine_file.h"
#include "util/contracts.h"

namespace grophecy::core {

namespace {

double projected_speedup(const hw::MachineSpec& machine,
                         const skeleton::AppSkeleton& app,
                         std::uint64_t seed) {
  ProjectionOptions options;
  options.seed = seed;
  Grophecy engine(machine, options);
  return engine.project(app).predicted_speedup_both();
}

}  // namespace

std::vector<ParameterSensitivity> analyze_sensitivity(
    const hw::MachineSpec& machine, const skeleton::AppSkeleton& app,
    const SensitivityOptions& options) {
  GROPHECY_EXPECTS(options.perturbation > 0.0 && options.perturbation < 1.0);
  const double baseline =
      projected_speedup(machine, app, options.seed);
  GROPHECY_EXPECTS(baseline > 0.0);

  std::vector<ParameterSensitivity> results;
  for (const std::string& field : hw::machine_field_names()) {
    hw::MachineSpec perturbed = machine;
    // Skip string fields and parameters currently at zero (a relative
    // perturbation of zero is still zero).
    if (!hw::scale_machine_field(perturbed, field,
                                 1.0 + options.perturbation))
      continue;
    if (hw::serialize_machine(perturbed) == hw::serialize_machine(machine))
      continue;

    ParameterSensitivity entry;
    entry.field = field;
    entry.baseline_value_scaled = 1.0 + options.perturbation;
    entry.baseline_speedup = baseline;
    entry.perturbed_speedup =
        projected_speedup(perturbed, app, options.seed);
    entry.elasticity = ((entry.perturbed_speedup - baseline) / baseline) /
                       options.perturbation;
    if (std::abs(entry.elasticity) >= options.min_elasticity)
      results.push_back(std::move(entry));
  }

  std::sort(results.begin(), results.end(),
            [](const ParameterSensitivity& a, const ParameterSensitivity& b) {
              return std::abs(a.elasticity) > std::abs(b.elasticity);
            });
  return results;
}

}  // namespace grophecy::core
