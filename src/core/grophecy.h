// GROPHECY++ — the top-level projection facade (paper contribution 3).
//
// Given a machine description and an application skeleton, Grophecy:
//
//   1. calibrates the PCIe linear model with the two-point synthetic
//      benchmark ("automatically invoked when run on a new system", §III-C),
//   2. explores GPU code transformations per kernel and projects the best
//      achievable kernel time (GROPHECY, §II-C), including temporal fusion
//      for single-kernel iterative apps,
//   3. runs the data-usage analyzer to obtain the transfer plan (§III-B)
//      and prices it with the calibrated bus model,
//   4. "measures" the same configuration on the simulated machine (GPU
//      simulator + stochastic bus + CPU simulator, means of N runs), and
//   5. returns a ProjectionReport with predicted/measured times, speedups,
//      and the paper's error metrics.
//
// On a real system, step 4 would be actual hardware runs; the report and
// everything above it would not change (see DESIGN.md).
#pragma once

#include <optional>

#include "core/report.h"
#include "cpumodel/cpu_sim.h"
#include "gpumodel/explorer.h"
#include "hw/machine.h"
#include "pcie/bus.h"
#include "pcie/calibrator.h"
#include "sim/event_sim.h"
#include "sim/gpu_sim.h"
#include "skeleton/skeleton.h"

namespace grophecy::core {

/// Knobs of the learned surrogate fast tier (src/surrogate): a ridge
/// model self-distilled from exact projections that answers warm traffic
/// in microseconds and falls through to the cohort simulator whenever its
/// binned-residual uncertainty exceeds the gate. Plain data here so the
/// core options stay dependency-free; the machinery lives in
/// surrogate::SurrogateEngine. See docs/performance.md, "Surrogate fast
/// tier".
struct SurrogateOptions {
  /// Off by default: the exact pipeline answers everything, as before.
  bool enabled = false;
  /// Training-pool floor before the surrogate may answer at all.
  int min_train_points = 16;
  /// Confidence gate: serve from the surrogate only when its per-query
  /// error bound (residual p95 of the nearest training-density bucket)
  /// is at or below this relative error.
  double max_rel_error = 0.10;
  /// Refit the model after this many new observations since the last
  /// fit. Refits run on a background thread behind a single-flight
  /// guard, so the serve path never blocks on one.
  int refit_interval = 32;
  /// Ridge regularization strength (normal equations).
  double lambda = 1e-4;
  /// Cap on the self-distillation pool; the oldest samples are dropped
  /// beyond it so a long-running daemon's refit cost stays bounded.
  std::size_t max_pool_points = 4096;
};

/// Knobs of the projection pipeline; defaults follow the paper.
struct ProjectionOptions {
  /// Runs averaged per reported measurement (paper: ten).
  int measurement_runs = 10;
  /// Master seed; all stochastic components derive their streams from it.
  std::uint64_t seed = 42;
  /// Host memory mode assumed for transfers (paper assumes pinned).
  hw::HostMemory memory = hw::HostMemory::kPinned;
  pcie::CalibrationOptions calibration;
  gpumodel::ExplorerOptions explorer;
  /// Temporal-fusion factors tried for single-kernel iterative apps.
  std::vector<int> fusion_candidates{1, 2, 4};
  /// Overrides the bus noise for the measurement phase only (used to
  /// reproduce the paper's outlier-afflicted CFD transfers, §V-A).
  std::optional<hw::PcieNoiseProfile> measurement_noise;
  /// Measure kernels with the discrete-event fluid simulator
  /// (sim::EventGpuSimulator) instead of the wave-based one: greedy block
  /// scheduling + chip-wide DRAM contention.
  bool detailed_sim = false;
  /// Engine selection and tuning for the detailed simulator (cohort fast
  /// path by default; SimEngine::kReference restores the original loop).
  sim::EventSimOptions event_sim;
  /// Serve calibration from the process-wide pcie::CalibrationCache: one
  /// synthetic-benchmark run per (machine, calibration options, memory
  /// mode, calibration seed) per process, as the paper intends ("invoked
  /// when run on a new system", §III-C). Results are identical either way;
  /// only repeated measurement work is skipped.
  bool use_calibration_cache = true;
  /// Serve built skeletons and usage-analysis artifacts from the
  /// process-wide artifact caches (util/artifact_cache.h): the transfer
  /// plan is keyed by the skeleton's content fingerprint WITHOUT the
  /// iteration count (plans are iteration independent, §III-B), so
  /// iteration sweeps analyze each data size once. Content-addressed keys
  /// make results identical either way; only repeated analysis work is
  /// skipped. See docs/performance.md, "Artifact caches".
  bool use_artifact_caches = true;
  /// Seed for the calibration bus stream. Unset (the default) derives it
  /// from `seed` as before. Sweeps that give every job its own master seed
  /// set this to a shared value so all jobs on one machine hit the same
  /// cache entry — calibration is per-system, measurement streams per-job.
  std::optional<std::uint64_t> calibration_seed;
  /// Learned surrogate fast tier (serve::Daemon two-tier serving);
  /// disabled by default. The exact pipeline itself never consults the
  /// surrogate — only bulk-traffic layers (the daemon) do.
  SurrogateOptions surrogate;

  /// Throws UsageError naming the offending field when a knob is out of
  /// range (e.g. non-positive measurement_runs or replicates). Grophecy
  /// and ExperimentRunner call this at construction.
  void validate() const;
};

/// The projection engine for one machine.
class Grophecy {
 public:
  explicit Grophecy(hw::MachineSpec machine, ProjectionOptions options = {});

  /// The bus model calibrated at construction.
  const pcie::BusModel& bus_model() const {
    return calibration_report_.model;
  }

  /// Full account of how that model was obtained: fit quality, per-probe
  /// telemetry (retries, rejected samples, timeouts), and whether the
  /// pipeline degraded to the spec-derived fallback. Construction never
  /// throws on calibration failure — it degrades and records why here.
  const pcie::CalibrationReport& calibration_report() const {
    return calibration_report_;
  }

  /// Projects (and "measures") one application. Stochastic measurement
  /// streams advance with every call; calling twice yields independent
  /// observations of the same expected values.
  ProjectionReport project(const skeleton::AppSkeleton& app);

  /// Same, with the skeleton's precomputed usage fingerprint
  /// (skeleton::usage_fingerprint) so a skeleton hashed once at build —
  /// e.g. by workloads::cached_skeleton — is never re-hashed here.
  ProjectionReport project(const skeleton::AppSkeleton& app,
                           std::uint64_t usage_key);

  const hw::MachineSpec& machine() const { return machine_; }
  const ProjectionOptions& options() const { return options_; }

 private:
  ProjectionReport project_impl(const skeleton::AppSkeleton& app,
                                std::optional<std::uint64_t> usage_key);

  hw::MachineSpec machine_;
  ProjectionOptions options_;
  pcie::SimulatedBus measurement_bus_;
  pcie::CalibrationReport calibration_report_;
  gpumodel::Explorer explorer_;
  sim::GpuSimulator gpu_sim_;
  sim::EventGpuSimulator event_sim_;
  cpumodel::CpuSimulator cpu_sim_;
};

}  // namespace grophecy::core
