// Machine-parameter sensitivity analysis.
//
// Which hardware characteristics actually decide an offload verdict? The
// analyzer perturbs every numeric field of the machine description (via
// the hw::machine_file field registry) by a relative factor, re-runs the
// full projection, and ranks parameters by the elasticity of the
// transfer-aware predicted speedup:
//
//     elasticity = (d speedup / speedup) / (d param / param)
//
// For the paper's transfer-dominated workloads, the PCIe bandwidth and the
// CPU's memory system dominate — GPU compute parameters barely register,
// which is the paper's thesis expressed as derivatives.
//
// This doubles as a model-robustness audit: a parameter with outsized
// elasticity is where a calibration error hurts the most.
#pragma once

#include <string>
#include <vector>

#include "hw/machine.h"
#include "skeleton/skeleton.h"

namespace grophecy::core {

/// Sensitivity of the projection to one machine parameter.
struct ParameterSensitivity {
  std::string field;
  double baseline_value_scaled = 1.0;  ///< Perturbation factor applied.
  double baseline_speedup = 0.0;       ///< Transfer-aware predicted speedup.
  double perturbed_speedup = 0.0;
  double elasticity = 0.0;  ///< %change in speedup per %change in param.
};

/// Options for the sweep.
struct SensitivityOptions {
  /// Relative perturbation applied to each parameter (default +10%).
  double perturbation = 0.10;
  /// Keep only parameters with |elasticity| above this in the report.
  double min_elasticity = 0.01;
  /// Projection seed (deterministic like everything else).
  std::uint64_t seed = 42;
};

/// Perturbs every numeric machine field and ranks the impact on the
/// transfer-aware predicted speedup of `app`. Results are sorted by
/// |elasticity|, largest first.
std::vector<ParameterSensitivity> analyze_sensitivity(
    const hw::MachineSpec& machine, const skeleton::AppSkeleton& app,
    const SensitivityOptions& options = {});

}  // namespace grophecy::core
