#include "core/experiment.h"

namespace grophecy::core {

ExperimentRunner::ExperimentRunner(hw::MachineSpec machine,
                                   ProjectionOptions options)
    : engine_(std::move(machine), std::move(options)) {}

ProjectionReport ExperimentRunner::run(const workloads::Workload& workload,
                                       const workloads::DataSize& size,
                                       int iterations) {
  skeleton::AppSkeleton app = workload.make_skeleton(size, iterations);
  ProjectionReport report = engine_.project(app);
  report.app_name = workload.name() + " " + size.label;
  return report;
}

std::vector<ProjectionReport> ExperimentRunner::run_all_sizes(
    const workloads::Workload& workload, int iterations) {
  std::vector<ProjectionReport> reports;
  for (const workloads::DataSize& size : workload.paper_data_sizes())
    reports.push_back(run(workload, size, iterations));
  return reports;
}

}  // namespace grophecy::core
