#include "core/experiment.h"

#include "workloads/skeleton_cache.h"

namespace grophecy::core {

ExperimentRunner::ExperimentRunner(hw::MachineSpec machine,
                                   ProjectionOptions options)
    : engine_(std::move(machine), std::move(options)) {}

ProjectionReport ExperimentRunner::run(const workloads::Workload& workload,
                                       const workloads::DataSize& size,
                                       int iterations) {
  ProjectionReport report;
  if (engine_.options().use_artifact_caches) {
    // Build (or fetch) the shared immutable skeleton; its precomputed
    // usage fingerprint lets project() hit the plan cache without
    // re-hashing the skeleton.
    const std::shared_ptr<const workloads::BuiltSkeleton> built =
        workloads::cached_skeleton(workload, size, iterations);
    report = engine_.project(built->app, built->usage_key);
  } else {
    const skeleton::AppSkeleton app =
        workload.make_skeleton(size, iterations);
    report = engine_.project(app);
  }
  report.app_name = workload.name() + " " + size.label;
  return report;
}

std::vector<ProjectionReport> ExperimentRunner::run_all_sizes(
    const workloads::Workload& workload, int iterations) {
  std::vector<ProjectionReport> reports;
  for (const workloads::DataSize& size : workload.paper_data_sizes())
    reports.push_back(run(workload, size, iterations));
  return reports;
}

}  // namespace grophecy::core
