// Set-associative cache hierarchy simulator (CPU memory-side verifier).
//
// The CPU roofline model prices memory with a closed-form traffic
// heuristic (`cpu_memory_traffic_bytes`: unique bytes when the working set
// fits the LLC, damped dynamic traffic beyond, a per-gather charge).
// This module provides the instrument that heuristic is verified against:
// an L1 + LLC hierarchy of set-associative LRU caches, driven by the
// exact program-order address trace of a kernel skeleton — concrete
// addresses from affine subscripts, seeded-random addresses for gathers,
// write-allocate + dirty write-back accounting.
//
// The trace simulation is exact but slow (every executed reference is one
// cache access), so tests and the `ablation_cpu_cache` bench run it on
// proportionally scaled-down instances; miss behaviour for streaming and
// for footprint-vs-capacity effects is scale-invariant when array extents
// and cache capacities shrink together.
#pragma once

#include <cstdint>
#include <vector>

#include "skeleton/skeleton.h"

namespace grophecy::cpumodel {

/// Geometry of one cache level.
struct CacheConfig {
  std::uint64_t capacity_bytes = 32 * 1024;
  int ways = 8;
  int line_bytes = 64;
};

/// One set-associative LRU cache level.
class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  /// Accesses the line containing `address`; returns true on hit. On a
  /// store the line is marked dirty; evictions of dirty lines are counted
  /// (write-back traffic).
  bool access(std::uint64_t address, bool is_store);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t dirty_evictions() const { return dirty_evictions_; }
  /// Valid dirty lines currently resident (eventual write-backs).
  std::uint64_t dirty_resident() const;
  int line_bytes() const { return config_.line_bytes; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::uint64_t num_sets_;
  std::vector<Line> lines_;  ///< num_sets_ * ways, row major.
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dirty_evictions_ = 0;
};

/// L1 (per-core, private) backed by a shared LLC. DRAM traffic = LLC miss
/// fills + LLC dirty write-backs, in bytes.
class CacheHierarchy {
 public:
  CacheHierarchy(CacheConfig l1, CacheConfig llc);

  void access(std::uint64_t address, bool is_store);

  /// Bytes that crossed the memory bus: fills, write-backs, plus the
  /// final flush of lines still dirty in the LLC.
  std::uint64_t dram_bytes() const;
  std::uint64_t accesses() const { return accesses_; }

 private:
  CacheSim l1_;
  CacheSim llc_;
  std::uint64_t accesses_ = 0;
};

/// Runs the exact program-order trace of `kernel` through a hierarchy and
/// returns the DRAM traffic in bytes. Arrays are laid out contiguously;
/// gather addresses are uniform-random within the gathered array (seeded,
/// deterministic). Requires the kernel's iteration space to be small
/// enough to enumerate (tests use scaled-down instances).
std::uint64_t trace_kernel_dram_bytes(const skeleton::AppSkeleton& app,
                                      const skeleton::KernelSkeleton& kernel,
                                      CacheConfig l1, CacheConfig llc,
                                      std::uint64_t seed);

}  // namespace grophecy::cpumodel
