#include "cpumodel/cache_sim.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/rng.h"

namespace grophecy::cpumodel {

namespace {

bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  GROPHECY_EXPECTS(config_.ways >= 1);
  GROPHECY_EXPECTS(is_power_of_two(config_.line_bytes));
  const std::uint64_t lines =
      config_.capacity_bytes /
      static_cast<std::uint64_t>(config_.line_bytes);
  GROPHECY_EXPECTS(lines >= static_cast<std::uint64_t>(config_.ways));
  num_sets_ = lines / config_.ways;
  GROPHECY_EXPECTS(num_sets_ >= 1);
  lines_.resize(num_sets_ * config_.ways);
}

bool CacheSim::access(std::uint64_t address, bool is_store) {
  ++clock_;
  const std::uint64_t line_address =
      address / static_cast<std::uint64_t>(config_.line_bytes);
  const std::uint64_t set = line_address % num_sets_;
  const std::uint64_t tag = line_address / num_sets_;
  Line* const begin = lines_.data() + set * config_.ways;

  Line* lru = begin;
  for (int way = 0; way < config_.ways; ++way) {
    Line& line = begin[way];
    if (line.valid && line.tag == tag) {
      line.last_use = clock_;
      line.dirty = line.dirty || is_store;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      lru = &line;  // free way wins outright
      break;
    }
    if (line.last_use < lru->last_use) lru = &line;
  }

  ++misses_;
  if (lru->valid && lru->dirty) ++dirty_evictions_;
  lru->valid = true;
  lru->dirty = is_store;
  lru->tag = tag;
  lru->last_use = clock_;
  return false;
}

std::uint64_t CacheSim::dirty_resident() const {
  std::uint64_t count = 0;
  for (const Line& line : lines_)
    if (line.valid && line.dirty) ++count;
  return count;
}

CacheHierarchy::CacheHierarchy(CacheConfig l1, CacheConfig llc)
    : l1_(l1), llc_(llc) {
  GROPHECY_EXPECTS(llc.capacity_bytes >= l1.capacity_bytes);
  GROPHECY_EXPECTS(llc.line_bytes == l1.line_bytes);
}

void CacheHierarchy::access(std::uint64_t address, bool is_store) {
  ++accesses_;
  if (l1_.access(address, is_store)) return;
  // L1 miss: look up (and fill from) the LLC. Dirty L1 evictions are
  // absorbed by the LLC (write-back caches), so only LLC-level misses and
  // LLC dirty evictions reach DRAM.
  llc_.access(address, is_store);
}

std::uint64_t CacheHierarchy::dram_bytes() const {
  return (llc_.misses() + llc_.dirty_evictions() + llc_.dirty_resident()) *
         static_cast<std::uint64_t>(llc_.line_bytes());
}

std::uint64_t trace_kernel_dram_bytes(const skeleton::AppSkeleton& app,
                                      const skeleton::KernelSkeleton& kernel,
                                      CacheConfig l1, CacheConfig llc,
                                      std::uint64_t seed) {
  app.validate();
  CacheHierarchy hierarchy(l1, llc);
  util::Rng rng(seed);

  // Contiguous array layout with line-aligned bases.
  std::vector<std::uint64_t> base(app.arrays.size(), 0);
  std::uint64_t next = 0;
  for (std::size_t a = 0; a < app.arrays.size(); ++a) {
    base[a] = next;
    const std::uint64_t bytes = app.arrays[a].bytes();
    next += (bytes + 63) / 64 * 64;
  }

  // Row-major element strides per array dimension.
  auto element_offset = [&](const skeleton::ArrayDecl& decl,
                            const std::vector<std::int64_t>& coords) {
    std::uint64_t index = 0;
    for (std::size_t d = 0; d < decl.dims.size(); ++d) {
      std::int64_t c = std::clamp<std::int64_t>(coords[d], 0,
                                               decl.dims[d] - 1);
      index = index * static_cast<std::uint64_t>(decl.dims[d]) +
              static_cast<std::uint64_t>(c);
    }
    return index * skeleton::elem_size_bytes(decl.type);
  };

  // Program-order odometer over the full loop nest; statements execute at
  // their depth (same walk as the dataflow oracle).
  for (const skeleton::Statement& stmt : kernel.body) {
    const std::size_t depth =
        stmt.depth < 0
            ? kernel.loops.size()
            : std::min<std::size_t>(stmt.depth, kernel.loops.size());
    std::vector<std::int64_t> values(kernel.loops.size(), 0);
    for (std::size_t d = 0; d < depth; ++d) values[d] = kernel.loops[d].lower;

    bool done = false;
    bool executed_once = false;
    while (!done) {
      if (depth == 0 && executed_once) break;
      executed_once = true;
      for (const skeleton::ArrayRef& ref : stmt.refs) {
        const skeleton::ArrayDecl& decl = app.array(ref.array);
        std::uint64_t address = 0;
        if (ref.indirect || decl.sparse) {
          address = base[static_cast<std::size_t>(ref.array)] +
                    static_cast<std::uint64_t>(
                        rng.uniform_int(0, decl.element_count() - 1)) *
                        skeleton::elem_size_bytes(decl.type);
        } else {
          std::vector<std::int64_t> coords;
          coords.reserve(ref.subscripts.size());
          for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
            bool hidden = false;
            for (int indirect_dim : ref.indirect_dims)
              if (static_cast<std::size_t>(indirect_dim) == d) hidden = true;
            coords.push_back(
                hidden ? rng.uniform_int(0, decl.dims[d] - 1)
                       : ref.subscripts[d].evaluate(values));
          }
          address = base[static_cast<std::size_t>(ref.array)] +
                    element_offset(decl, coords);
        }
        hierarchy.access(address,
                         ref.kind == skeleton::RefKind::kStore);
      }
      if (depth == 0) break;
      std::size_t d = depth;
      while (d-- > 0) {
        values[d] += kernel.loops[d].step;
        if (values[d] < kernel.loops[d].upper) break;
        values[d] = kernel.loops[d].lower;
        if (d == 0) done = true;
      }
    }
  }
  return hierarchy.dram_bytes();
}

}  // namespace grophecy::cpumodel
