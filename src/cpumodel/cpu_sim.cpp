#include "cpumodel/cpu_sim.h"

#include <algorithm>
#include <cmath>

#include "brs/footprint.h"
#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::cpumodel {

namespace {
constexpr double kOmpRegionOverheadS = 6e-6;
constexpr double kSpecialOpCost = 14.0;
}  // namespace

CpuSimulator::CpuSimulator(hw::CpuSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {}

double CpuSimulator::expected_app_seconds(
    const skeleton::AppSkeleton& app) const {
  double per_iteration = 0.0;
  for (const skeleton::KernelSkeleton& kernel : app.kernels) {
    const brs::KernelFootprint fp = brs::kernel_footprint(app, kernel);

    const double active_cores =
        static_cast<double>(std::min(spec_.threads, spec_.total_cores()));
    // A real run does not vectorize every statement perfectly; charge a
    // fraction of the SIMD peak.
    constexpr double kVectorEfficiency = 0.70;
    const double flop_rate = spec_.clock_ghz * 1e9 *
                             spec_.flops_per_cycle_per_core * active_cores *
                             kVectorEfficiency;
    const double special_rate =
        spec_.clock_ghz * 1e9 * active_cores / kSpecialOpCost;
    const double compute_s =
        fp.flops / flop_rate + fp.special_ops / special_rate;

    const double traffic = cpu_memory_traffic_bytes(fp, spec_.llc_bytes);
    const double usable_bw = std::min(
        spec_.mem_bandwidth_gbps * spec_.achieved_bw_fraction,
        spec_.per_core_bw_gbps * active_cores);
    const double memory_s = traffic / (usable_bw * util::kGB);

    per_iteration += std::max(compute_s, memory_s) /
                         spec_.parallel_efficiency +
                     kOmpRegionOverheadS;
  }
  return per_iteration * app.iterations;
}

double CpuSimulator::run_app_seconds(const skeleton::AppSkeleton& app) {
  const double base = expected_app_seconds(app);
  return rng_.lognormal(base, spec_.timing_jitter_sigma);
}

double CpuSimulator::measure_app_seconds(const skeleton::AppSkeleton& app,
                                         int runs) {
  GROPHECY_EXPECTS(runs > 0);
  double sum = 0.0;
  for (int i = 0; i < runs; ++i) sum += run_app_seconds(app);
  return sum / runs;
}

}  // namespace grophecy::cpumodel
