#include "cpumodel/cpu_model.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::cpumodel {

namespace {
/// OpenMP parallel-region fork/join cost per kernel invocation.
constexpr double kOmpRegionOverheadS = 4e-6;
/// Throughput ratio of special-function ops (div/sqrt/exp) to simple FLOPs.
constexpr double kSpecialOpCost = 12.0;
}  // namespace

double cpu_memory_traffic_bytes(const brs::KernelFootprint& fp,
                                std::uint64_t llc_bytes) {
  // Unique data must stream from memory at least once; dynamic references
  // beyond that hit in cache iff the working set fits in the LLC. Stores
  // are charged twice (write-allocate: fill + write-back).
  // Unamortized random gathers defeat hardware prefetching even when the
  // target fits in outer cache levels: each lands on a fresh address, and
  // the core pays roughly a quarter cache line of effective bandwidth per
  // gather (L2-resident latency expressed as occupancy on the FSB/core).
  constexpr double kRandomGatherBytes = 16.0;
  const double gather_traffic =
      static_cast<double>(fp.dynamic_random_gathers) * kRandomGatherBytes;
  const double unique =
      static_cast<double>(fp.unique_bytes_read) +
      2.0 * static_cast<double>(fp.unique_bytes_written) + gather_traffic;
  if (fp.unique_bytes() <= llc_bytes) return unique;
  // Working set exceeds cache: repeated references progressively stream
  // again. Neighboring references in one sweep still share cache lines.
  const double dynamic =
      static_cast<double>(fp.dynamic_load_bytes) +
      2.0 * static_cast<double>(fp.dynamic_store_bytes);
  constexpr double kLineReuse = 0.35;
  const double capacity_traffic = std::max(unique, dynamic * kLineReuse);
  // Smooth transition: a working set barely over the LLC still hits mostly
  // in cache; by ~4x the LLC the reuse is gone.
  const double excess =
      static_cast<double>(fp.unique_bytes() - llc_bytes);
  const double blend =
      std::min(1.0, excess / (3.0 * static_cast<double>(llc_bytes)));
  return unique + blend * std::max(0.0, capacity_traffic - unique);
}

CpuModel::CpuModel(hw::CpuSpec spec) : spec_(std::move(spec)) {
  GROPHECY_EXPECTS(spec_.clock_ghz > 0.0);
  GROPHECY_EXPECTS(spec_.mem_bandwidth_gbps > 0.0);
  GROPHECY_EXPECTS(spec_.threads >= 1);
}

CpuKernelEstimate CpuModel::estimate_kernel(
    const skeleton::AppSkeleton& app,
    const skeleton::KernelSkeleton& kernel) const {
  const brs::KernelFootprint fp = brs::kernel_footprint(app, kernel);

  CpuKernelEstimate est;
  const double active_cores =
      static_cast<double>(std::min(spec_.threads, spec_.total_cores()));
  const double peak_flops =
      spec_.clock_ghz * 1e9 * spec_.flops_per_cycle_per_core * active_cores;
  const double special_rate =
      spec_.clock_ghz * 1e9 * active_cores / kSpecialOpCost;
  est.compute_s = fp.flops / peak_flops + fp.special_ops / special_rate;

  const double traffic = cpu_memory_traffic_bytes(fp, spec_.llc_bytes);
  // A few threads cannot saturate the memory system on their own.
  const double usable_bw =
      std::min(spec_.mem_bandwidth_gbps,
               spec_.per_core_bw_gbps * active_cores);
  est.memory_s = traffic / (usable_bw * util::kGB);

  est.overhead_s = kOmpRegionOverheadS;
  est.total_s = std::max(est.compute_s, est.memory_s) /
                    spec_.parallel_efficiency +
                est.overhead_s;
  return est;
}

double CpuModel::estimate_app_seconds(
    const skeleton::AppSkeleton& app) const {
  double per_iteration = 0.0;
  for (const skeleton::KernelSkeleton& kernel : app.kernels)
    per_iteration += estimate_kernel(app, kernel).total_s;
  return per_iteration * app.iterations;
}

}  // namespace grophecy::cpumodel
