// Analytical CPU performance model (roofline with cache awareness).
//
// The paper *measures* CPU time — the OpenMP baseline exists — so the
// projection pipeline uses the CPU simulator (cpu_sim.h) as "the machine".
// This analytical model exists for what-if studies on systems the user does
// not have (examples use it) and mirrors the GPU model's level of
// abstraction: per-kernel roofline max(compute, memory) with a parallel
// efficiency term.
#pragma once

#include "brs/footprint.h"
#include "hw/machine.h"
#include "skeleton/skeleton.h"

namespace grophecy::cpumodel {

/// Per-kernel timing breakdown, exposed for reports and tests.
struct CpuKernelEstimate {
  double compute_s = 0.0;   ///< FLOP-throughput bound.
  double memory_s = 0.0;    ///< Bandwidth bound (after cache filtering).
  double overhead_s = 0.0;  ///< Parallel region launch overhead.
  double total_s = 0.0;     ///< max(compute, memory)/efficiency + overhead.
};

/// Roofline-style analytical model of a CpuSpec.
class CpuModel {
 public:
  explicit CpuModel(hw::CpuSpec spec);

  /// Time for one invocation of `kernel`.
  CpuKernelEstimate estimate_kernel(const skeleton::AppSkeleton& app,
                                    const skeleton::KernelSkeleton& kernel) const;

  /// Time for the whole application (kernel sequence x iterations).
  double estimate_app_seconds(const skeleton::AppSkeleton& app) const;

  const hw::CpuSpec& spec() const { return spec_; }

 private:
  hw::CpuSpec spec_;
};

/// Memory traffic a cache hierarchy must move for a kernel: dynamic bytes
/// filtered down to unique bytes when the working set fits in the LLC,
/// write-allocate charged on stores. Shared by the model and the simulator.
double cpu_memory_traffic_bytes(const brs::KernelFootprint& fp,
                                std::uint64_t llc_bytes);

}  // namespace grophecy::cpumodel
