// CPU timing simulator — the "measured" side of the baseline.
//
// Plays the role of actually running the OpenMP baseline on the modeled
// machine: it starts from the same roofline skeleton analysis as CpuModel
// but charges the realism effects a live run exhibits (achieved rather than
// peak bandwidth, imperfect parallel scaling, per-sweep cache cold misses)
// and adds seeded run-to-run jitter. Reported times are means of N runs,
// mirroring the paper's methodology (§IV-A: arithmetic mean of ten runs).
#pragma once

#include <cstdint>

#include "cpumodel/cpu_model.h"
#include "hw/machine.h"
#include "skeleton/skeleton.h"
#include "util/rng.h"

namespace grophecy::cpumodel {

/// Stochastic simulator of the host CPU executing an application skeleton.
class CpuSimulator {
 public:
  CpuSimulator(hw::CpuSpec spec, std::uint64_t seed);

  /// Deterministic expected wall time for the whole application (the value
  /// jitter is applied around).
  double expected_app_seconds(const skeleton::AppSkeleton& app) const;

  /// One noisy "run" of the application.
  double run_app_seconds(const skeleton::AppSkeleton& app);

  /// Arithmetic mean of `runs` independent runs.
  double measure_app_seconds(const skeleton::AppSkeleton& app, int runs);

  const hw::CpuSpec& spec() const { return spec_; }

 private:
  hw::CpuSpec spec_;
  util::Rng rng_;
};

}  // namespace grophecy::cpumodel
