#include "serve/socket_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/daemon.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/table.h"

namespace grophecy::serve {

namespace {

/// Writes the whole buffer, tolerating short writes and EINTR. Returns
/// false once the peer is gone. MSG_NOSIGNAL: a dead peer is a return
/// code here, never a process-wide SIGPIPE.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path))
    throw UsageError(util::strfmt("socket path too long (%zu bytes, max %zu)",
                                  path.size(),
                                  sizeof(address.sun_path) - 1));
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

/// One live client connection. Outlives its fd: reply callbacks hold a
/// shared_ptr to it, and `closed` (under `write_mutex`) makes a late
/// reply a no-op instead of a write to a recycled descriptor.
struct SocketServer::Connection {
  int fd = -1;
  std::mutex write_mutex;
  bool closed = false;

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (closed) return;
    std::string framed = line;
    framed.push_back('\n');
    if (!send_all(fd, framed.data(), framed.size())) close_locked();
  }

  void close() {
    std::lock_guard<std::mutex> lock(write_mutex);
    close_locked();
  }

  void close_locked() {
    if (closed) return;
    closed = true;
    ::shutdown(fd, SHUT_RDWR);  // unblocks the reader thread's recv
    ::close(fd);
  }
};

SocketServer::SocketServer(Daemon& daemon, SocketServerOptions options)
    : daemon_(daemon), options_(std::move(options)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  if (running_.load()) return;
  const sockaddr_un address = make_address(options_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw UsageError(util::strfmt("socket() failed: %s",
                                  std::strerror(errno)));
  ::unlink(options_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw UsageError(util::strfmt("cannot listen on %s: %s",
                                  options_.socket_path.c_str(),
                                  std::strerror(saved)));
  }
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Closing the listener makes accept() fail, ending the accept loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
    threads.swap(connection_threads_);
  }
  for (const std::shared_ptr<Connection>& connection : connections)
    connection->close();
  for (std::thread& thread : threads)
    if (thread.joinable()) thread.join();
  ::unlink(options_.socket_path.c_str());
}

void SocketServer::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      connection->close();
      return;
    }
    connections_.push_back(connection);
    connection_threads_.emplace_back(
        [this, connection] { serve_connection(connection); });
  }
}

void SocketServer::serve_connection(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[4096];
  // When a line overruns max_line_bytes we answer once and then discard
  // bytes until its newline, so a hostile client cannot make the server
  // buffer without bound — and cannot starve its own later requests.
  bool discarding = false;
  while (true) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or connection closed by stop()
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t i = start; i < buffer.size(); ++i) {
      if (buffer[i] != '\n') continue;
      if (discarding) {
        discarding = false;
      } else {
        std::string line = buffer.substr(start, i - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty())
          daemon_.handle_line(std::move(line),
                              [connection](std::string reply) {
                                connection->write_line(reply);
                              });
      }
      start = i + 1;
    }
    buffer.erase(0, start);

    if (!discarding && buffer.size() > options_.max_line_bytes) {
      connection->write_line(error_reply(
          "", ErrorKind::kParse,
          util::strfmt("request line exceeds %zu bytes; discarded",
                       options_.max_line_bytes)));
      buffer.clear();
      discarding = true;
    }
    if (discarding) buffer.clear();
  }
  connection->close();
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

bool Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un address{};
  try {
    address = make_address(socket_path);
  } catch (const UsageError&) {
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  buffer_.clear();
  return true;
}

bool Client::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  if (send_all(fd_, framed.data(), framed.size())) return true;
  close();
  return false;
}

bool Client::recv_line(std::string* line) {
  if (fd_ < 0) return false;
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> Client::request(const std::string& line) {
  std::string reply;
  if (!send_line(line) || !recv_line(&reply)) return std::nullopt;
  return reply;
}

void Client::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

}  // namespace grophecy::serve
