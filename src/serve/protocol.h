// Wire protocol of the projection daemon (docs/serving.md).
//
// One request is one line of flat JSON (util/jsonl); one reply is one
// line of flat JSON. The daemon guarantees exactly one reply per request
// line, whatever happens to the work behind it:
//
//   {"id":"7","type":"project","workload":"CFD","size":"97K",
//    "iterations":1,"deadline_ms":250}
//   -> {"id":"7","status":"ok","degraded":false,...scalars...}
//   -> {"id":"7","status":"error","error":"timeout","message":"..."}
//   -> {"id":"7","status":"error","error":"overloaded",
//       "retry_after_ms":12,"message":"..."}
//
// A line that is not valid flat JSON — or is missing/mistyping required
// fields — yields a typed "parse"/"usage" error reply (the id echoed when
// it could be salvaged), never a crash or a dropped connection. Error
// codes are the stable lowercase names of grophecy::ErrorKind, so the
// wire speaks the same taxonomy as the sweep journal.
//
// Parsing is split from the daemon so the framing rules are testable
// without threads and reusable by clients (serve::Client, the load
// generator) verbatim.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "core/report.h"
#include "surrogate/model.h"
#include "util/error.h"

namespace grophecy::serve {

/// What a well-formed request line asks for.
enum class RequestType {
  kProject,   ///< Run (or coalesce onto) one projection.
  kStats,     ///< Introspection snapshot; served even under overload.
  kPing,      ///< Liveness probe; served even under overload.
  kShutdown,  ///< Ask the daemon to drain and exit (socket deployments).
};

/// A parsed request line.
struct Request {
  RequestType type = RequestType::kPing;
  std::string id;  ///< Client-chosen correlation id, echoed verbatim.

  // --- type == kProject ---
  std::string workload;    ///< Workload name (e.g. "CFD").
  std::string size_label;  ///< Data-size label (e.g. "97K").
  int iterations = 1;
  /// Registry name of the machine to project on (e.g. "hopper_h100");
  /// empty (the default) projects on the daemon's configured machine —
  /// today's behaviour. Unknown names are rejected at admission with a
  /// typed "usage" error reply listing the registered fleet.
  std::string machine;
  /// Client deadline covering queue wait + execution; 0 = server default.
  double deadline_ms = 0.0;
};

/// Why a request line could not become a Request. `kind` is kParse for
/// malformed framing/JSON and kUsage for well-formed JSON with bad
/// fields; `id` is echoed when the line parsed far enough to salvage it.
struct WireError {
  ErrorKind kind = ErrorKind::kParse;
  std::string message;
  std::string id;
};

/// Parses one request line. Never throws: every malformed input becomes
/// a WireError the daemon turns into exactly one typed error reply.
std::variant<Request, WireError> parse_request(std::string_view line);

/// One reply line (no trailing newline) with status "error". The code is
/// to_string(kind); `retry_after_ms`, when set, tells a shed client how
/// long to back off before retrying (admission-control hint).
std::string error_reply(std::string_view id, ErrorKind kind,
                        std::string_view message,
                        std::optional<double> retry_after_ms = std::nullopt);

/// One reply line with status "ok" carrying the projection scalars every
/// client-side decision derives from, plus the degradation flag: true
/// when the calibration behind the transfer predictions fell back to the
/// spec-derived model (the reply is served, not failed — see
/// docs/serving.md, "Graceful degradation"). Tagged "tier":"exact": the
/// answer came from the full pipeline, whether or not a surrogate was
/// consulted first. A pure function of (id, report, attempts), so
/// coalesced requests sharing one computation get byte-identical replies
/// — and a surrogate-enabled daemon's fallback replies are byte-identical
/// to a surrogate-disabled daemon's.
std::string projection_reply(std::string_view id,
                             const core::ProjectionReport& report,
                             int attempts);

/// One reply line with status "ok" served by the surrogate fast tier:
/// the same field shape as projection_reply (clients need no second
/// parser) with "tier":"surrogate", attempts 0, and one extra field —
/// "rel_error_bound", the model's error bound for this query (the p95
/// residual of its training-density bucket; docs/serving.md, "The tier
/// field").
std::string surrogate_reply(std::string_view id, std::string_view workload,
                            std::string_view machine, int iterations,
                            const surrogate::Prediction& prediction);

/// One reply line with status "ok" for a ping.
std::string pong_reply(std::string_view id);

}  // namespace grophecy::serve
