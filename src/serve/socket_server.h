// Local-socket transport for the projection daemon.
//
// serve::Daemon is transport-agnostic (a line in, a reply callback out);
// this module adds the deployment framing: a SocketServer that listens on
// an AF_UNIX stream socket and speaks line-delimited JSON per
// docs/serving.md, and a small blocking Client used by the load
// generator, the smoke script, and tests.
//
// Robustness posture at the framing layer (the daemon handles the rest):
//
//   * one reader thread per connection, replies serialized per
//     connection by a write mutex — daemon workers fan replies out
//     concurrently and interleaved lines would corrupt the stream;
//   * a hard cap on request-line length: a client streaming an unbounded
//     line (hostile or broken) gets one typed "parse" reply and the
//     oversized line is discarded, without the server ever buffering it;
//   * a reply that arrives after its connection died is dropped, never
//     written to a recycled fd (the connection object outlives the fd by
//     design and carries a closed flag);
//   * SIGPIPE is never raised (MSG_NOSIGNAL): a client that disconnects
//     mid-reply costs the server one failed send, nothing more.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace grophecy::serve {

class Daemon;

/// Server knobs.
struct SocketServerOptions {
  /// Filesystem path of the AF_UNIX socket. Unlinked (if stale) on
  /// start and on stop.
  std::string socket_path;
  /// Longest request line accepted, in bytes. Beyond this the line is
  /// answered with a typed "parse" error and discarded unread.
  std::size_t max_line_bytes = 1 << 20;
  int listen_backlog = 64;
};

/// Accepts connections and pumps lines between clients and a Daemon.
/// start() spawns the accept thread; stop() (or destruction) closes the
/// listening socket and every live connection and joins all threads.
class SocketServer {
 public:
  SocketServer(Daemon& daemon, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Throws UsageError when
  /// the socket cannot be created or bound.
  void start();

  /// Closes the listener and all connections, joins every thread,
  /// unlinks the socket path. Idempotent. In-flight daemon work keeps
  /// running (its replies are dropped); call Daemon::shutdown for that.
  void stop();

  /// True between start() and stop().
  bool running() const { return running_.load(); }

  const SocketServerOptions& options() const { return options_; }

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> connection);

  Daemon& daemon_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> connection_threads_;
};

/// Blocking line-oriented client for the daemon socket. Not thread-safe;
/// the load generator gives each concurrent stream its own Client.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to the daemon socket. Returns false (with the socket
  /// closed) when the path does not accept connections.
  bool connect(const std::string& socket_path);

  /// Sends one request line (newline appended). Returns false when the
  /// connection is gone.
  bool send_line(const std::string& line);

  /// Reads one reply line (newline stripped). Returns false on EOF or
  /// error.
  bool recv_line(std::string* line);

  /// Convenience: send_line + recv_line. Empty optional when either
  /// direction failed.
  std::optional<std::string> request(const std::string& line);

  bool connected() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace grophecy::serve
