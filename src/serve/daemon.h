// Projection-as-a-service: the overload-safe projection daemon.
//
// The ROADMAP north star is a system that serves heavy concurrent traffic,
// which means the projection pipeline has to stay correct and responsive
// under *overload and partial failure*, not just in one-shot sweeps. The
// Daemon wraps the same job construction the SweepRequest batch path uses
// behind a bounded async request queue with explicit robustness
// semantics:
//
//   admission     the queue depth is bounded (DaemonOptions::
//   control       max_queue_depth); a request that would exceed it is
//                 *shed* with a typed "overloaded" reply carrying a
//                 retry_after_ms hint derived from the observed service
//                 rate — the daemon degrades by answering fast, never by
//                 queueing without bound;
//
//   deadlines     each request carries (or inherits) a wall-clock
//                 deadline covering queue wait + execution. A request
//                 whose deadline passes while queued is answered
//                 "timeout" without running; one that expires mid-
//                 execution has its attempt abandoned to a reaper —
//                 mirroring the sweep engine's watchdog — so a hung
//                 projection can never wedge a worker;
//
//   coalescing    requests with identical job fingerprints collapse onto
//                 one in-flight computation (the PR 5 sweep dedupe
//                 pre-pass, extended across clients): one execution, one
//                 reply payload fanned out to every waiter, byte-
//                 identical for identical ids;
//
//   graceful      calibration failure inside the pipeline degrades to the
//   degradation   spec-derived bus model (the PR 1 calibrate_robust
//                 ladder) and the reply is served with "degraded":true
//                 rather than failed — capacity shrinks before it
//                 vanishes;
//
//   introspection a "stats" request answers from the admission path —
//                 never the queue — so the dashboard stays readable
//                 precisely when the daemon is too busy to serve.
//
// Every request line receives exactly one reply line (ok / degraded /
// timeout / overloaded / parse / usage), including on shutdown. The
// daemon is transport-agnostic: handle_line() takes a wire line and a
// reply callback, and serve::SocketServer adds the local-socket framing.
// See docs/serving.md for the protocol and policy write-up.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/grophecy.h"
#include "exec/sweep.h"
#include "hw/registry.h"
#include "serve/protocol.h"
#include "surrogate/engine.h"

namespace grophecy::serve {

/// Daemon knobs. Defaults serve the paper testbed with a small worker
/// pool and an effectively unbounded deadline — admission control is the
/// only default backpressure; deployments add deadlines per request.
struct DaemonOptions {
  /// Machine every projection targets (multi-tenant: the calibration and
  /// artifact caches are shared across all requests).
  hw::MachineSpec machine = hw::anl_eureka();
  /// Base projection knobs; per-request measurement seeds are derived
  /// exactly like SweepRequest does (stream_seed of the job identity), so
  /// the daemon and a batch sweep of the same grid measure identical
  /// values. projection.surrogate.enabled additionally turns on the
  /// two-tier serve path: confident queries are answered by the learned
  /// surrogate in microseconds ("tier":"surrogate"), everything else runs
  /// the exact pipeline as before and feeds the training pool
  /// (docs/performance.md, "Surrogate fast tier"). Ignored when job_fn is
  /// overridden — the surrogate models the canonical pipeline only.
  core::ProjectionOptions projection;
  std::uint64_t base_seed = core::ProjectionOptions{}.seed;

  /// Worker pool size; 0 = std::thread::hardware_concurrency().
  int workers = 2;
  /// Admission bound: project requests beyond this many *queued* (not yet
  /// running) jobs are shed with a typed "overloaded" reply. Coalesced
  /// requests attach to the in-flight job and are never shed.
  std::size_t max_queue_depth = 256;
  /// Deadline applied when a request does not carry deadline_ms.
  double default_deadline_s = std::numeric_limits<double>::infinity();
  /// Upper clamp on client-supplied deadlines (a client cannot pin a
  /// worker longer than the operator allows).
  double max_deadline_s = std::numeric_limits<double>::infinity();
  /// Transient-failure retries per request (within its deadline), same
  /// classification as the sweep engine.
  int max_retries = 0;

  /// Overrides the projection job function (chaos/soak tests and the
  /// machinery bench inject faults or stub work here). Must be
  /// thread-safe and tolerate watchdog abandonment, exactly like a
  /// SweepEngine job function. Empty = the canonical pipeline function
  /// (PaperSuite lookup + ExperimentRunner), which validates names with
  /// typed UsageErrors.
  exec::SweepEngine::JobFn job_fn;

  /// Invoked (once, from a worker or admission thread) when a client
  /// sends a "shutdown" request; the transport layer uses it to stop its
  /// accept loop. The daemon itself keeps running until shutdown().
  std::function<void()> on_shutdown_request;
};

/// Counters the "/stats" request reports; all monotonic since start()
/// except the gauges at the bottom. Sum rule under any load and fault
/// mix: received == replies == ok + timeouts + shed + parse_errors +
/// usage_errors + failed + stats/ping/shutdown control replies.
struct DaemonStats {
  std::uint64_t received = 0;       ///< Request lines seen.
  std::uint64_t replies = 0;        ///< Reply lines issued (exactly one each).
  std::uint64_t ok = 0;             ///< Projections served (incl. degraded).
  std::uint64_t degraded = 0;       ///< ...of which calibration degraded.
  std::uint64_t timeouts = 0;       ///< Deadline expiries (queued or running).
  std::uint64_t shed = 0;           ///< Admission-control rejections.
  std::uint64_t failed = 0;         ///< Permanent job failures (typed).
  std::uint64_t parse_errors = 0;   ///< Malformed request lines.
  std::uint64_t usage_errors = 0;   ///< Well-formed lines with bad fields.
  std::uint64_t coalesce_hits = 0;  ///< Requests attached to in-flight jobs.
  std::uint64_t executed = 0;       ///< Jobs actually run (post-coalesce).
  std::uint64_t expired_unrun = 0;  ///< Jobs whose waiters all expired queued.
  std::uint64_t abandoned = 0;      ///< Attempts handed to the reaper.

  std::size_t queue_depth = 0;      ///< Gauge: queued jobs right now.
  std::size_t inflight = 0;         ///< Gauge: queued + running jobs.
  double ema_exec_s = 0.0;          ///< Smoothed per-job execution time.

  // Surrogate fast tier (all zero unless projection.surrogate.enabled).
  // Served replies count in `ok` too — the sum rule above is unchanged.
  std::uint64_t surrogate_served = 0;     ///< Replies answered by the model.
  std::uint64_t surrogate_fallbacks = 0;  ///< Queries gated through to exact.
  std::uint64_t surrogate_observed = 0;   ///< Exact results absorbed as
                                          ///< training samples.
  std::uint64_t surrogate_refits = 0;     ///< Completed background refits.
  std::size_t surrogate_pool = 0;         ///< Gauge: training pool size.

  // Warm multi-tenant tier, straight from the process-wide caches.
  std::uint64_t calibration_hits = 0;
  std::uint64_t calibration_misses = 0;
  std::uint64_t skeleton_cache_hits = 0;
  std::uint64_t skeleton_cache_misses = 0;
  std::uint64_t usage_cache_hits = 0;
  std::uint64_t usage_cache_misses = 0;
};

/// The daemon. Construct, start(), feed lines, shutdown(). Thread-safe:
/// handle_line may be called from any number of transport threads.
class Daemon {
 public:
  using ReplyFn = std::function<void(std::string)>;

  explicit Daemon(DaemonOptions options = {});
  /// Shuts down (draining) if still running; joins every thread,
  /// including reaped abandoned attempts (which must terminate
  /// eventually, as with SweepEngine).
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Spawns the worker pool. Must be called before handle_line.
  void start();

  /// Stops admission, then — with drain=true — lets the workers finish
  /// every queued job (deadline rules still apply) before joining; with
  /// drain=false, queued jobs are answered "overloaded" immediately.
  /// Either way every pending request still gets exactly one reply.
  /// Idempotent.
  void shutdown(bool drain = true);

  /// Handles one request line; `reply` is invoked exactly once with the
  /// reply line (inline for control/shed/parse paths, from a worker for
  /// executed projections). Never throws.
  void handle_line(std::string line, ReplyFn reply);

  /// Synchronous convenience for tests and in-process clients: blocks
  /// until the reply is ready. Must not be called from a daemon worker.
  std::string handle(const std::string& line);

  DaemonStats stats() const;
  const DaemonOptions& options() const { return options_; }

 private:
  struct Waiter {
    std::string id;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    ReplyFn reply;
  };

  /// One queued/running job and everyone waiting on it. Guarded by
  /// mutex_ except `spec`, which is immutable after construction.
  struct Task {
    exec::JobSpec spec;
    std::vector<Waiter> waiters;
    bool running = false;
  };

  struct ExecResult {
    std::optional<core::ProjectionReport> report;
    exec::JobError error;  ///< Meaningful when report is empty.
    int attempts = 0;
  };

  void worker_loop();
  /// Runs one job with the retry loop + deadline watchdog; never throws.
  ExecResult execute(const exec::JobSpec& spec,
                     std::chrono::steady_clock::time_point deadline,
                     bool has_deadline);
  /// One supervised attempt (thread + watchdog when a deadline applies).
  ExecResult run_attempt(const exec::JobSpec& spec, double remaining_s);
  void fan_out(const std::shared_ptr<Task>& task, const ExecResult& result);
  void reply_now(const ReplyFn& reply, std::string text);
  /// Joins reaped attempt threads that have since finished (opportunistic;
  /// called with mutex_ held).
  void sweep_reaper_locked();
  double retry_after_hint_locked() const;
  exec::SweepEngine::JobFn make_pipeline_job_fn() const;

  DaemonOptions options_;
  exec::SweepEngine::JobFn job_fn_;
  int workers_ = 1;
  /// The two-tier fast path; null unless projection.surrogate.enabled
  /// and the canonical pipeline is in use. Thread-safe on its own locks.
  std::unique_ptr<surrogate::SurrogateEngine> surrogate_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Task>> queue_;
  /// Fingerprint -> queued or running task; the coalescing index.
  std::map<std::string, std::shared_ptr<Task>> inflight_;
  std::vector<std::thread> pool_;
  bool started_ = false;
  bool stopping_ = false;
  bool drain_ = true;

  /// Abandoned supervised attempts: thread + a future that becomes ready
  /// when the attempt function returns, so finished strays are joined
  /// opportunistically instead of only at shutdown.
  struct Abandoned {
    std::thread thread;
    std::shared_future<core::ProjectionReport> done;
  };
  std::vector<Abandoned> reaper_;

  DaemonStats stats_;
  bool ema_seeded_ = false;
};

}  // namespace grophecy::serve
