#include "serve/protocol.h"

#include <cmath>
#include <utility>

#include "util/jsonl.h"

namespace grophecy::serve {

namespace {

/// Reads a positive integer field that may be absent (returns fallback).
/// Returns std::nullopt — meaning "reject" — for wrong types, non-finite
/// values, non-integers, and out-of-range magnitudes.
std::optional<int> positive_int_field(const util::FlatJson& object,
                                      std::string_view key, int fallback) {
  for (const auto& [name, value] : object) {
    if (name != key) continue;
    const double* d = std::get_if<double>(&value);
    if (d == nullptr) return std::nullopt;
    if (!std::isfinite(*d) || *d < 1.0 || *d > 1e9 ||
        *d != std::floor(*d))
      return std::nullopt;
    return static_cast<int>(*d);
  }
  return fallback;
}

}  // namespace

std::variant<Request, WireError> parse_request(std::string_view line) {
  const std::optional<util::FlatJson> object = util::parse_flat_json(line);
  if (!object)
    return WireError{ErrorKind::kParse,
                     "request is not a flat JSON object (one object per "
                     "line; control characters must be escaped)",
                     ""};

  // The id is pure correlation data: any string is fine, and once the
  // line parses as JSON it is always salvageable for the error reply.
  std::string id = util::json_string(*object, "id").value_or("");

  const std::optional<std::string> type = util::json_string(*object, "type");
  if (!type)
    return WireError{ErrorKind::kUsage,
                     "missing string field \"type\" (one of: project, "
                     "stats, ping, shutdown)",
                     std::move(id)};

  Request request;
  request.id = std::move(id);
  if (*type == "project") {
    request.type = RequestType::kProject;
  } else if (*type == "stats") {
    request.type = RequestType::kStats;
    return request;
  } else if (*type == "ping") {
    request.type = RequestType::kPing;
    return request;
  } else if (*type == "shutdown") {
    request.type = RequestType::kShutdown;
    return request;
  } else {
    return WireError{ErrorKind::kUsage,
                     "unknown request type \"" + *type +
                         "\" (one of: project, stats, ping, shutdown)",
                     std::move(request.id)};
  }

  const std::optional<std::string> workload =
      util::json_string(*object, "workload");
  if (!workload || workload->empty())
    return WireError{ErrorKind::kUsage,
                     "project request needs a non-empty string field "
                     "\"workload\"",
                     std::move(request.id)};
  const std::optional<std::string> size = util::json_string(*object, "size");
  if (!size || size->empty())
    return WireError{ErrorKind::kUsage,
                     "project request needs a non-empty string field "
                     "\"size\"",
                     std::move(request.id)};
  const std::optional<int> iterations =
      positive_int_field(*object, "iterations", 1);
  if (!iterations)
    return WireError{ErrorKind::kUsage,
                     "\"iterations\" must be a positive integer",
                     std::move(request.id)};

  // machine: optional; empty means the daemon's configured machine. Name
  // validity (against the registry) is an admission decision, not a
  // framing one — the parser only enforces the type.
  std::string machine;
  for (const auto& [name, value] : *object) {
    if (name != "machine") continue;
    const std::string* s = std::get_if<std::string>(&value);
    if (s == nullptr)
      return WireError{ErrorKind::kUsage,
                       "\"machine\" must be a string (a registry machine "
                       "name)",
                       std::move(request.id)};
    machine = *s;
  }

  // deadline_ms: optional, finite, non-negative (0 = server default).
  double deadline_ms = 0.0;
  for (const auto& [name, value] : *object) {
    if (name != "deadline_ms") continue;
    const double* d = std::get_if<double>(&value);
    if (d == nullptr || !std::isfinite(*d) || *d < 0.0)
      return WireError{ErrorKind::kUsage,
                       "\"deadline_ms\" must be a non-negative finite "
                       "number",
                       std::move(request.id)};
    deadline_ms = *d;
  }

  request.workload = std::move(*workload);
  request.size_label = std::move(*size);
  request.iterations = *iterations;
  request.machine = std::move(machine);
  request.deadline_ms = deadline_ms;
  return request;
}

std::string error_reply(std::string_view id, ErrorKind kind,
                        std::string_view message,
                        std::optional<double> retry_after_ms) {
  util::FlatJson reply;
  reply.emplace_back("id", std::string(id));
  reply.emplace_back("status", std::string("error"));
  reply.emplace_back("error", std::string(to_string(kind)));
  reply.emplace_back("message", std::string(message));
  if (retry_after_ms)
    reply.emplace_back("retry_after_ms", *retry_after_ms);
  return util::write_flat_json(reply);
}

namespace {

/// Shared "ok" reply shape of both tiers; the tier tag and the optional
/// uncertainty field are the only differences, so clients parse one
/// schema.
std::string ok_reply(std::string_view id, const core::ProjectionReport& report,
                     int attempts, std::string_view tier,
                     std::optional<double> rel_error_bound) {
  util::FlatJson reply;
  reply.emplace_back("id", std::string(id));
  reply.emplace_back("status", std::string("ok"));
  reply.emplace_back("workload", report.app_name);
  reply.emplace_back("machine", report.machine_name);
  reply.emplace_back("iterations", static_cast<double>(report.iterations));
  reply.emplace_back("degraded", report.calibration.used_fallback);
  reply.emplace_back("attempts", static_cast<double>(attempts));
  reply.emplace_back("tier", std::string(tier));
  reply.emplace_back("predicted_kernel_s", report.predicted_kernel_s);
  reply.emplace_back("predicted_transfer_s", report.predicted_transfer_s);
  reply.emplace_back("measured_kernel_s", report.measured_kernel_s);
  reply.emplace_back("measured_transfer_s", report.measured_transfer_s);
  reply.emplace_back("measured_cpu_s", report.measured_cpu_s);
  reply.emplace_back("predicted_speedup", report.predicted_speedup_both());
  reply.emplace_back("measured_speedup", report.measured_speedup());
  if (rel_error_bound) reply.emplace_back("rel_error_bound", *rel_error_bound);
  return util::write_flat_json(reply);
}

}  // namespace

std::string projection_reply(std::string_view id,
                             const core::ProjectionReport& report,
                             int attempts) {
  return ok_reply(id, report, attempts, "exact", std::nullopt);
}

std::string surrogate_reply(std::string_view id, std::string_view workload,
                            std::string_view machine, int iterations,
                            const surrogate::Prediction& prediction) {
  // Reconstruct a scalar-only report so the derived fields (speedups) use
  // exactly the arithmetic of the exact tier.
  core::ProjectionReport report;
  report.app_name = std::string(workload);
  report.machine_name = std::string(machine);
  report.iterations = iterations;
  report.predicted_kernel_s = prediction.targets.values[0];
  report.predicted_transfer_s = prediction.targets.values[1];
  report.measured_kernel_s = prediction.targets.values[2];
  report.measured_transfer_s = prediction.targets.values[3];
  report.measured_cpu_s = prediction.targets.values[4];
  return ok_reply(id, report, 0, "surrogate", prediction.rel_error_bound);
}

std::string pong_reply(std::string_view id) {
  util::FlatJson reply;
  reply.emplace_back("id", std::string(id));
  reply.emplace_back("status", std::string("ok"));
  reply.emplace_back("type", std::string("pong"));
  return util::write_flat_json(reply);
}

}  // namespace grophecy::serve
