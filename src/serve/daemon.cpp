#include "serve/daemon.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dataflow/usage_cache.h"
#include "exec/sweep_request.h"
#include "hw/machine_registry.h"
#include "pcie/calibration_cache.h"
#include "util/contracts.h"
#include "util/jsonl.h"
#include "util/table.h"
#include "workloads/skeleton_cache.h"
#include "workloads/workload.h"

namespace grophecy::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point when) {
  return std::chrono::duration<double>(when - Clock::now()).count();
}

std::string timeout_reply(std::string_view id, const exec::JobSpec& spec) {
  return error_reply(
      id, ErrorKind::kTimeout,
      util::strfmt("deadline expired before %s completed",
                   spec.key().c_str()));
}

std::string stats_reply(std::string_view id, const DaemonStats& stats) {
  util::FlatJson reply;
  reply.emplace_back("id", std::string(id));
  reply.emplace_back("status", std::string("ok"));
  reply.emplace_back("type", std::string("stats"));
  const auto count = [&reply](const char* name, std::uint64_t value) {
    reply.emplace_back(name, static_cast<double>(value));
  };
  count("received", stats.received);
  count("replies", stats.replies);
  count("ok", stats.ok);
  count("degraded", stats.degraded);
  count("timeouts", stats.timeouts);
  count("shed", stats.shed);
  count("failed", stats.failed);
  count("parse_errors", stats.parse_errors);
  count("usage_errors", stats.usage_errors);
  count("coalesce_hits", stats.coalesce_hits);
  count("executed", stats.executed);
  count("expired_unrun", stats.expired_unrun);
  count("abandoned", stats.abandoned);
  count("queue_depth", stats.queue_depth);
  count("inflight", stats.inflight);
  reply.emplace_back("ema_exec_ms", stats.ema_exec_s * 1e3);
  count("surrogate_served", stats.surrogate_served);
  count("surrogate_fallbacks", stats.surrogate_fallbacks);
  count("surrogate_observed", stats.surrogate_observed);
  count("surrogate_refits", stats.surrogate_refits);
  count("surrogate_pool", stats.surrogate_pool);
  count("calibration_hits", stats.calibration_hits);
  count("calibration_misses", stats.calibration_misses);
  count("skeleton_cache_hits", stats.skeleton_cache_hits);
  count("skeleton_cache_misses", stats.skeleton_cache_misses);
  count("usage_cache_hits", stats.usage_cache_hits);
  count("usage_cache_misses", stats.usage_cache_misses);
  return util::write_flat_json(reply);
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  GROPHECY_EXPECTS(options_.workers >= 0);
  GROPHECY_EXPECTS(options_.max_queue_depth >= 1);
  GROPHECY_EXPECTS(options_.default_deadline_s > 0.0);
  GROPHECY_EXPECTS(options_.max_deadline_s > 0.0);
  GROPHECY_EXPECTS(options_.max_retries >= 0);
  options_.projection.validate();
  job_fn_ = options_.job_fn ? options_.job_fn : make_pipeline_job_fn();
  // The surrogate models the canonical pipeline (its features come from
  // the paper-suite artifacts); a custom job_fn answers from its own name
  // space, so the fast tier stays off there.
  if (options_.projection.surrogate.enabled && !options_.job_fn)
    surrogate_ = std::make_unique<surrogate::SurrogateEngine>(
        options_.projection.surrogate, options_.machine);
  if (options_.workers > 0) {
    workers_ = options_.workers;
  } else {
    const unsigned hardware = std::thread::hardware_concurrency();
    workers_ = hardware > 0 ? static_cast<int>(hardware) : 1;
  }
}

Daemon::~Daemon() { shutdown(/*drain=*/true); }

exec::SweepEngine::JobFn Daemon::make_pipeline_job_fn() const {
  // The canonical per-job construction, shared with the batch path: a
  // daemon request and a sweep job of the same (workload, size,
  // iterations) measure identical values, and every request on this
  // machine hits the same CalibrationCache entry.
  return exec::SweepRequest::on(options_.machine)
      .options(options_.projection)
      .seed(options_.base_seed)
      .job_fn();
}

void Daemon::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  GROPHECY_EXPECTS(!started_);
  started_ = true;
  stopping_ = false;
  pool_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i)
    pool_.emplace_back([this] { worker_loop(); });
}

void Daemon::shutdown(bool drain) {
  std::vector<std::shared_ptr<Task>> cancelled;
  std::vector<std::thread> pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stopping_ = true;
    drain_ = drain;
    if (!drain) {
      // Cancelled jobs still honour exactly-one-reply: every waiter gets
      // a typed overloaded rejection naming the reason.
      cancelled.assign(queue_.begin(), queue_.end());
      queue_.clear();
      for (const std::shared_ptr<Task>& task : cancelled) {
        auto it = inflight_.find(task->spec.fingerprint());
        if (it != inflight_.end() && it->second == task) inflight_.erase(it);
      }
    }
    pool.swap(pool_);
    work_cv_.notify_all();
  }

  for (const std::shared_ptr<Task>& task : cancelled) {
    std::vector<Waiter> waiters;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      waiters = std::move(task->waiters);
      task->waiters.clear();
      stats_.shed += waiters.size();
    }
    for (Waiter& waiter : waiters)
      reply_now(waiter.reply,
                error_reply(waiter.id, ErrorKind::kOverloaded,
                            "daemon is shutting down; request cancelled"));
  }

  for (std::thread& thread : pool)
    if (thread.joinable()) thread.join();

  // With the pool joined nothing can push new strays; drain the reaper.
  // Abandoned attempts must terminate eventually (simulated hangs do) —
  // the same contract SweepEngine documents.
  std::vector<Abandoned> strays;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    strays.swap(reaper_);
    started_ = false;
  }
  for (Abandoned& stray : strays)
    if (stray.thread.joinable()) stray.thread.join();
}

void Daemon::reply_now(const ReplyFn& reply, std::string text) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.replies;
  }
  if (reply) reply(std::move(text));
}

double Daemon::retry_after_hint_locked() const {
  // Expected time until a queue slot frees: the backlog divided by the
  // observed service rate. Before any job has completed, guess 1 ms.
  const double per_job =
      ema_seeded_ ? std::max(stats_.ema_exec_s, 1e-6) : 1e-3;
  const double wait_s = (static_cast<double>(queue_.size()) + 1.0) *
                        per_job / static_cast<double>(workers_);
  return std::clamp(std::ceil(wait_s * 1e3), 1.0, 60000.0);
}

void Daemon::handle_line(std::string line, ReplyFn reply) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.received;
  }

  std::variant<Request, WireError> parsed = parse_request(line);
  if (const WireError* error = std::get_if<WireError>(&parsed)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error->kind == ErrorKind::kParse)
        ++stats_.parse_errors;
      else
        ++stats_.usage_errors;
    }
    reply_now(reply, error_reply(error->id, error->kind, error->message));
    return;
  }

  const Request& request = std::get<Request>(parsed);
  switch (request.type) {
    case RequestType::kPing:
      reply_now(reply, pong_reply(request.id));
      return;
    case RequestType::kStats:
      reply_now(reply, stats_reply(request.id, stats()));
      return;
    case RequestType::kShutdown: {
      util::FlatJson ack;
      ack.emplace_back("id", request.id);
      ack.emplace_back("status", std::string("ok"));
      ack.emplace_back("type", std::string("shutdown"));
      reply_now(reply, util::write_flat_json(ack));
      if (options_.on_shutdown_request) options_.on_shutdown_request();
      return;
    }
    case RequestType::kProject:
      break;
  }

  // Reject unknown names before they consume a queue slot — a stream of
  // bad requests must not be able to starve good ones. Only possible for
  // the canonical pipeline (a custom job_fn owns its own name space).
  if (!options_.job_fn) {
    try {
      const workloads::Workload& workload =
          workloads::PaperSuite::instance().find(request.workload);
      workloads::find_data_size(workload, request.size_label);
      // An explicit machine must name a registered one; the canonical
      // job function would throw the same UsageError at execution, but
      // by then the request holds a queue slot.
      if (!request.machine.empty())
        hw::MachineRegistry::global().find(request.machine);
    } catch (const UsageError& error) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.usage_errors;
      }
      reply_now(reply,
                error_reply(request.id, ErrorKind::kUsage, error.what()));
      return;
    }
  }

  // The machine joins the spec (and so the fingerprint), so the same grid
  // point on two machines never coalesces onto one computation; an empty
  // machine leaves the fingerprint byte-identical to the single-machine
  // protocol.
  exec::JobSpec spec{request.workload, request.size_label,
                     request.iterations, request.machine};

  // Surrogate fast tier: answered inline from the admission path, like
  // stats/ping — a confident hit never takes a queue slot or a worker.
  // A gated (or unfit) query falls through to the exact path below,
  // whose reply is byte-identical to a surrogate-disabled daemon's.
  if (surrogate_) {
    if (const std::optional<surrogate::Prediction> hit =
            surrogate_->try_predict(spec)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.ok;
      }
      const std::string& machine_name = request.machine.empty()
                                            ? options_.machine.name
                                            : request.machine;
      reply_now(reply, surrogate_reply(request.id, request.workload,
                                       machine_name, request.iterations,
                                       *hit));
      return;
    }
  }

  // Resolve the deadline: client-supplied (clamped) or the server
  // default, measured from admission.
  double deadline_s = options_.default_deadline_s;
  if (request.deadline_ms > 0.0)
    deadline_s = std::min(request.deadline_ms * 1e-3, options_.max_deadline_s);
  Waiter waiter;
  waiter.id = request.id;
  waiter.has_deadline = std::isfinite(deadline_s);
  if (waiter.has_deadline)
    waiter.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(deadline_s));
  waiter.reply = std::move(reply);

  std::string fingerprint = spec.fingerprint();

  std::string rejection;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopping_) {
      ++stats_.shed;
      rejection = error_reply(waiter.id, ErrorKind::kOverloaded,
                              "daemon is not accepting work");
    } else if (auto it = inflight_.find(fingerprint);
               it != inflight_.end()) {
      // Coalesce: identical fingerprint, one computation, N replies.
      ++stats_.coalesce_hits;
      it->second->waiters.push_back(std::move(waiter));
      return;
    } else if (queue_.size() >= options_.max_queue_depth) {
      ++stats_.shed;
      const double hint_ms = retry_after_hint_locked();
      rejection = error_reply(
          waiter.id, ErrorKind::kOverloaded,
          util::strfmt("queue full (%zu queued, bound %zu); retry after "
                       "the hinted delay",
                       queue_.size(), options_.max_queue_depth),
          hint_ms);
    } else {
      auto task = std::make_shared<Task>();
      task->spec = std::move(spec);
      task->waiters.push_back(std::move(waiter));
      inflight_.emplace(std::move(fingerprint), task);
      queue_.push_back(std::move(task));
      work_cv_.notify_one();
      return;
    }
  }
  reply_now(waiter.reply, std::move(rejection));
}

std::string Daemon::handle(const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  handle_line(line, [&promise](std::string reply) {
    promise.set_value(std::move(reply));
  });
  return future.get();
}

void Daemon::worker_loop() {
  while (true) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = queue_.front();
      queue_.pop_front();
      task->running = true;
    }

    // Deadline snapshot across the waiters attached so far: the watchdog
    // covers the most patient one. Waiters that coalesce on mid-flight
    // ride along and are deadline-checked individually at fan-out.
    bool has_deadline = false;
    bool any_live = false;
    Clock::time_point latest{};
    {
      std::lock_guard<std::mutex> lock(mutex_);
      has_deadline = !task->waiters.empty();
      for (const Waiter& waiter : task->waiters) {
        if (!waiter.has_deadline) {
          has_deadline = false;
          any_live = true;
          break;
        }
        latest = std::max(latest, waiter.deadline);
        if (seconds_until(waiter.deadline) > 0.0) any_live = true;
      }
    }

    if (!any_live) {
      // Every waiter gave up while the job sat in the queue: answer
      // timeout without wasting a worker on dead work.
      ExecResult expired;
      expired.error.kind = ErrorKind::kTimeout;
      expired.error.timed_out = true;
      expired.error.message = util::strfmt(
          "deadline expired while %s was queued", task->spec.key().c_str());
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.expired_unrun;
      }
      fan_out(task, expired);
      continue;
    }

    const auto exec_start = Clock::now();
    const ExecResult result = execute(task->spec, latest, has_deadline);
    const double exec_s =
        std::chrono::duration<double>(Clock::now() - exec_start).count();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.executed;
      // EMA of per-job service time feeds the retry-after hint.
      stats_.ema_exec_s =
          ema_seeded_ ? 0.8 * stats_.ema_exec_s + 0.2 * exec_s : exec_s;
      ema_seeded_ = true;
      sweep_reaper_locked();
    }
    fan_out(task, result);
    // Self-distillation: the exact answer the waiters just received also
    // teaches the surrogate (after the replies, so a refit trigger never
    // delays them; refits themselves run on a background thread).
    if (surrogate_ && result.report)
      surrogate_->observe(task->spec, *result.report);
  }
}

Daemon::ExecResult Daemon::execute(const exec::JobSpec& spec,
                                   Clock::time_point deadline,
                                   bool has_deadline) {
  ExecResult result;
  while (true) {
    const double remaining_s =
        has_deadline ? seconds_until(deadline)
                     : std::numeric_limits<double>::infinity();
    if (remaining_s <= 0.0) {
      result.error = {};
      result.error.kind = ErrorKind::kTimeout;
      result.error.timed_out = true;
      result.error.retryable = true;
      result.error.message = util::strfmt(
          "job %s exceeded its deadline", spec.key().c_str());
      return result;
    }
    ExecResult attempt = run_attempt(spec, remaining_s);
    ++result.attempts;
    if (attempt.report) {
      result.report = std::move(attempt.report);
      return result;
    }
    result.error = attempt.error;
    if (result.error.retryable && result.attempts <= options_.max_retries)
      continue;  // the deadline check at the top of the loop still rules
    return result;
  }
}

Daemon::ExecResult Daemon::run_attempt(const exec::JobSpec& spec,
                                       double remaining_s) {
  ExecResult result;
  if (std::isinf(remaining_s)) {
    try {
      result.report = job_fn_(spec);
    } catch (...) {
      result.error = exec::classify_current_exception();
    }
    return result;
  }

  // Supervised attempt, same shape as SweepEngine::run_attempt: the job
  // runs on its own thread while this worker watches the clock. A
  // timed-out attempt is abandoned to the reaper — the worker moves on
  // immediately; the stray thread is joined opportunistically once its
  // future is ready, and drained at shutdown.
  std::packaged_task<core::ProjectionReport()> attempt(
      [fn = job_fn_, spec] { return fn(spec); });
  std::shared_future<core::ProjectionReport> future =
      attempt.get_future().share();
  std::thread runner(std::move(attempt));
  if (future.wait_for(std::chrono::duration<double>(remaining_s)) !=
      std::future_status::ready) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.abandoned;
      reaper_.push_back({std::move(runner), future});
    }
    result.error.kind = ErrorKind::kTimeout;
    result.error.timed_out = true;
    result.error.retryable = true;
    result.error.message = util::strfmt(
        "job %s exceeded its %.3gs deadline; attempt abandoned",
        spec.key().c_str(), remaining_s);
    return result;
  }
  runner.join();
  try {
    result.report = future.get();
  } catch (...) {
    result.error = exec::classify_current_exception();
  }
  return result;
}

void Daemon::sweep_reaper_locked() {
  auto finished = [](const Abandoned& stray) {
    return stray.done.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  };
  for (auto it = reaper_.begin(); it != reaper_.end();) {
    if (finished(*it)) {
      if (it->thread.joinable()) it->thread.join();  // immediate: it is done
      it = reaper_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::fan_out(const std::shared_ptr<Task>& task,
                     const ExecResult& result) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    waiters = std::move(task->waiters);
    task->waiters.clear();
    // Retire the fingerprint atomically with taking the waiters: later
    // identical requests start a fresh computation instead of joining a
    // finished one.
    auto it = inflight_.find(task->spec.fingerprint());
    if (it != inflight_.end() && it->second == task) inflight_.erase(it);

    if (result.report) {
      for (const Waiter& waiter : waiters) {
        const bool late =
            waiter.has_deadline && seconds_until(waiter.deadline) <= 0.0;
        if (late) {
          ++stats_.timeouts;
        } else {
          ++stats_.ok;
          if (result.report->calibration.used_fallback) ++stats_.degraded;
        }
      }
    } else if (result.error.kind == ErrorKind::kTimeout) {
      stats_.timeouts += waiters.size();
    } else {
      stats_.failed += waiters.size();
    }
  }

  // Replies go out after the bookkeeping and outside the lock: a slow
  // client write can never stall admission or another worker.
  if (result.report) {
    for (Waiter& waiter : waiters) {
      const bool late =
          waiter.has_deadline && seconds_until(waiter.deadline) <= 0.0;
      if (late)
        reply_now(waiter.reply, timeout_reply(waiter.id, task->spec));
      else
        reply_now(waiter.reply,
                  projection_reply(waiter.id, *result.report,
                                   result.attempts));
    }
    return;
  }
  for (Waiter& waiter : waiters)
    reply_now(waiter.reply,
              error_reply(waiter.id, result.error.kind,
                          result.error.message));
}

DaemonStats Daemon::stats() const {
  DaemonStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
    out.queue_depth = queue_.size();
    out.inflight = inflight_.size();
  }
  const pcie::CalibrationCache::Stats calibration =
      pcie::CalibrationCache::instance().stats();
  out.calibration_hits = calibration.hits;
  out.calibration_misses = calibration.misses;
  const auto skeleton = workloads::skeleton_cache().stats();
  out.skeleton_cache_hits = skeleton.hits;
  out.skeleton_cache_misses = skeleton.misses;
  const auto usage = dataflow::usage_cache().stats();
  out.usage_cache_hits = usage.hits;
  out.usage_cache_misses = usage.misses;
  if (surrogate_) {
    const surrogate::SurrogateEngine::Stats fast = surrogate_->stats();
    out.surrogate_served = fast.served;
    out.surrogate_fallbacks = fast.fallbacks;
    out.surrogate_observed = fast.observed;
    out.surrogate_refits = fast.refits;
    out.surrogate_pool = fast.pool_size;
  }
  return out;
}

}  // namespace grophecy::serve
