// Minimal CSV emission (RFC 4180 quoting) for bench data export.
//
// Benches print human-readable tables to stdout and can optionally mirror
// the same data to CSV files for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace grophecy::util {

/// Streams rows of fields as CSV, quoting fields that need it.
class CsvWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  /// Writes one row; fields containing commas, quotes, or newlines are
  /// quoted with embedded quotes doubled.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream* os_;
};

/// Quotes a single CSV field if necessary.
std::string csv_escape(const std::string& field);

}  // namespace grophecy::util
