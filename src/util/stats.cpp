#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace grophecy::util {

double mean(std::span<const double> values) {
  GROPHECY_EXPECTS(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  GROPHECY_EXPECTS(values.size() >= 2);
  const double m = mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - m) * (v - m);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double median(std::span<const double> values) {
  GROPHECY_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double mad(std::span<const double> values) {
  GROPHECY_EXPECTS(!values.empty());
  const double med = median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - med));
  return median(deviations);
}

std::vector<double> mad_filter(std::span<const double> values,
                               double z_cutoff) {
  GROPHECY_EXPECTS(!values.empty());
  GROPHECY_EXPECTS(z_cutoff > 0.0);
  const double med = median(values);
  const double sigma = kMadToSigma * mad(values);
  if (sigma == 0.0) return std::vector<double>(values.begin(), values.end());
  std::vector<double> kept;
  kept.reserve(values.size());
  for (double v : values)
    if (std::abs(v - med) / sigma <= z_cutoff) kept.push_back(v);
  return kept;
}

double trimmed_mean(std::span<const double> values, double trim_fraction) {
  GROPHECY_EXPECTS(!values.empty());
  GROPHECY_EXPECTS(trim_fraction >= 0.0 && trim_fraction < 0.5);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto trim = static_cast<std::size_t>(
      static_cast<double>(sorted.size()) * trim_fraction);
  return mean(std::span<const double>(sorted.data() + trim,
                                      sorted.size() - 2 * trim));
}

double percentile(std::span<const double> values, double pct) {
  GROPHECY_EXPECTS(!values.empty());
  GROPHECY_EXPECTS(pct >= 0.0 && pct <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double geometric_mean(std::span<const double> values) {
  GROPHECY_EXPECTS(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    GROPHECY_EXPECTS(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double min_value(std::span<const double> values) {
  GROPHECY_EXPECTS(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  GROPHECY_EXPECTS(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double error_magnitude_percent(double predicted, double measured) {
  GROPHECY_EXPECTS(measured != 0.0);
  return std::abs(predicted - measured) / std::abs(measured) * 100.0;
}

double percent_difference(double predicted, double measured) {
  GROPHECY_EXPECTS(measured != 0.0);
  return (predicted - measured) / measured * 100.0;
}

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const {
  GROPHECY_EXPECTS(count_ >= 1);
  return mean_;
}

double RunningStats::variance() const {
  GROPHECY_EXPECTS(count_ >= 2);
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  GROPHECY_EXPECTS(count_ >= 1);
  return min_;
}

double RunningStats::max() const {
  GROPHECY_EXPECTS(count_ >= 1);
  return max_;
}

LinearFit least_squares(std::span<const double> x, std::span<const double> y) {
  GROPHECY_EXPECTS(x.size() == y.size());
  GROPHECY_EXPECTS(x.size() >= 2);
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  GROPHECY_EXPECTS(sxx > 0.0);
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LinearFit theil_sen(std::span<const double> x, std::span<const double> y) {
  GROPHECY_EXPECTS(x.size() == y.size());
  GROPHECY_EXPECTS(x.size() >= 2);
  std::vector<double> slopes;
  slopes.reserve(x.size() * (x.size() - 1) / 2);
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = i + 1; j < x.size(); ++j)
      if (x[i] != x[j]) slopes.push_back((y[j] - y[i]) / (x[j] - x[i]));
  GROPHECY_EXPECTS(!slopes.empty());

  LinearFit fit;
  fit.slope = median(slopes);
  std::vector<double> residuals;
  residuals.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    residuals.push_back(y[i] - fit.slope * x[i]);
  fit.intercept = median(residuals);

  double ss_res = 0.0, syy = 0.0;
  const double my = mean(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
    syy += (y[i] - my) * (y[i] - my);
  }
  fit.r_squared = (syy > 0.0) ? std::max(0.0, 1.0 - ss_res / syy) : 1.0;
  return fit;
}

}  // namespace grophecy::util
