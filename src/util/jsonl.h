// Minimal flat-JSON encoding for line-oriented journals (JSONL).
//
// The sweep result journal stores one JSON object per line. Those records
// are *flat*: every value is a string, a finite number, or a bool — no
// nesting, no arrays. That restriction keeps the format trivially
// greppable and lets the reader be a ~hundred-line loop instead of a JSON
// library dependency (the container ships none).
//
// The writer emits strict JSON (RFC 8259 escaping); the reader accepts
// the flat subset the writer produces — plus \uXXXX escapes for any
// non-surrogate BMP character, decoded to UTF-8, since foreign wire
// clients (serve::Daemon speaks this format over a socket) escape more
// eagerly than our writer does — and returns std::nullopt for anything
// else. Raw control bytes inside strings are rejected per RFC 8259, so an
// embedded newline can only appear escaped and one object is always
// exactly one line. A torn or corrupt line must never throw: it is an
// expected artifact of a crash mid-append (journals) or of a hostile
// client (the wire); escape -> parse round-trips every byte string.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace grophecy::util {

/// One field value of a flat JSON object.
using JsonScalar = std::variant<std::string, double, bool>;

/// An ordered flat JSON object (insertion order preserved on write;
/// document order preserved on read).
using FlatJson = std::vector<std::pair<std::string, JsonScalar>>;

/// `text` with JSON string escaping applied (no surrounding quotes).
std::string json_escape(std::string_view text);

/// Serializes `object` as one strict JSON object, fields in order.
/// Numbers are written with enough digits to round-trip doubles.
std::string write_flat_json(const FlatJson& object);

/// Parses one flat JSON object. Returns std::nullopt on any syntax error,
/// trailing garbage, nesting, or non-finite number — never throws.
std::optional<FlatJson> parse_flat_json(std::string_view text);

/// Field lookup helpers; std::nullopt when absent or the wrong type.
std::optional<std::string> json_string(const FlatJson& object,
                                       std::string_view key);
std::optional<double> json_number(const FlatJson& object,
                                  std::string_view key);
std::optional<bool> json_bool(const FlatJson& object, std::string_view key);

}  // namespace grophecy::util
