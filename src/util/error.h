// Error taxonomy of the framework.
//
// Black-box measurement layers fail in distinguishable ways, and callers
// need to react differently to each: a failed transfer timing is worth
// retrying, a calibration that cannot converge is not, and a malformed
// input file is a user error. Every exception the framework throws for a
// *runtime* condition derives from grophecy::Error and carries an
// ErrorKind so callers can branch on category without enumerating
// concrete types. (Programming errors — violated preconditions — remain
// grophecy::ContractViolation, a std::logic_error; see util/contracts.h.)
//
// The taxonomy:
//
//   MeasurementError  one observation failed (transient; retryable)
//   CalibrationError  the calibration pipeline exhausted its retry/sample
//                     budget (fatal for this run; fall back or abort)
//   ParseError        malformed .gskel / .gmach input (user must fix it)
//   UsageError        invalid user-supplied value outside a document — an
//                     unknown workload or machine name, a bad CLI argument
//                     (user must fix the request, not a file)
//
// See docs/robustness.md for the retry and degradation policies built on
// top of this hierarchy.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace grophecy {

/// Category of a framework error; see the table above.
///
/// The first four kinds are carried by thrown grophecy::Error subclasses.
/// The last three classify failures that are observed rather than thrown
/// by the framework itself — the sweep engine (exec::JobError) buckets a
/// watchdog-abandoned attempt as kTimeout, a ContractViolation as
/// kContract, and any foreign exception as kException — so the whole
/// stack, including the result journal, speaks one enum instead of ad-hoc
/// strings.
enum class ErrorKind {
  kMeasurement,
  kCalibration,
  kParse,
  kUsage,
  kTimeout,    ///< A supervised attempt exceeded its wall-clock deadline.
  kContract,   ///< A ContractViolation (programming error) was caught.
  kException,  ///< An exception from outside the taxonomy was caught.
  kOverloaded, ///< Admission control shed the request (serve::Daemon);
               ///< transient by nature — retry after the hinted delay.
  kWorkerDeath, ///< A sharded-sweep worker process died (signal, nonzero
                ///< exit, OOM kill) while running the job. The shard
                ///< supervisor re-assigns the job once; a job that kills
                ///< its worker repeatedly is quarantined with this kind.
};

/// Stable lowercase name of a kind; these exact strings are the journal
/// (JSONL) representation, so they must never change meaning.
constexpr const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kMeasurement: return "measurement";
    case ErrorKind::kCalibration: return "calibration";
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kUsage: return "usage";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kContract: return "contract";
    case ErrorKind::kException: return "exception";
    case ErrorKind::kOverloaded: return "overloaded";
    case ErrorKind::kWorkerDeath: return "worker_death";
  }
  return "exception";
}

/// Inverse of to_string; std::nullopt for an unknown name. The JSONL
/// reader funnels journal strings through this, so a journal written by
/// any prior version of the format parses.
inline std::optional<ErrorKind> error_kind_from_string(
    std::string_view name) {
  for (ErrorKind kind :
       {ErrorKind::kMeasurement, ErrorKind::kCalibration, ErrorKind::kParse,
        ErrorKind::kUsage, ErrorKind::kTimeout, ErrorKind::kContract,
        ErrorKind::kException, ErrorKind::kOverloaded,
        ErrorKind::kWorkerDeath})
    if (name == to_string(kind)) return kind;
  return std::nullopt;
}

/// Base of all runtime errors thrown by the framework.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  ErrorKind kind() const { return kind_; }

  /// True when retrying the failed operation may succeed (transient
  /// faults). Calibration and parse errors are never retryable.
  bool retryable() const {
    return kind_ == ErrorKind::kMeasurement || kind_ == ErrorKind::kTimeout;
  }

 private:
  ErrorKind kind_;
};

/// A single measurement (transfer timing, kernel timing) failed.
/// Transient by definition: the retry policy in the calibration pipeline
/// catches these and retries with bounded exponential backoff.
class MeasurementError : public Error {
 public:
  explicit MeasurementError(const std::string& what, bool timed_out = false)
      : Error(ErrorKind::kMeasurement, what), timed_out_(timed_out) {}

  /// True when the measurement was abandoned because it exceeded the
  /// watchdog timeout (a stuck/hung transfer), as opposed to failing fast.
  bool timed_out() const { return timed_out_; }

 private:
  bool timed_out_;
};

/// The calibration pipeline could not produce a trustworthy model within
/// its retry and replication budgets. Callers either degrade to the
/// spec-derived fallback model (see pcie::TransferCalibrator) or abort.
class CalibrationError : public Error {
 public:
  explicit CalibrationError(const std::string& what)
      : Error(ErrorKind::kCalibration, what) {}
};

/// Malformed textual input (.gskel or .gmach). Carries the source name and
/// line so tooling can point the user at the offending location; what() is
/// "<file>: line <N>: <message>" (file/line parts omitted when unknown).
class ParseError : public Error {
 public:
  ParseError(std::string file, int line, std::string message)
      : Error(ErrorKind::kParse, format(file, line, message)),
        file_(std::move(file)),
        line_(line),
        message_(std::move(message)) {}

  /// Source file name; empty when parsing an in-memory string.
  const std::string& file() const { return file_; }
  /// 1-based line number; 0 when no line applies (e.g. unreadable file).
  int line() const { return line_; }
  /// The bare message, without the file/line prefix.
  const std::string& message() const { return message_; }

 private:
  static std::string format(const std::string& file, int line,
                            const std::string& message) {
    std::string out;
    if (!file.empty()) out += file + ": ";
    if (line > 0) out += "line " + std::to_string(line) + ": ";
    out += message;
    return out;
  }

  std::string file_;
  int line_;
  std::string message_;
};

/// An invalid user-supplied value that is not part of a parsed document:
/// an unknown workload or machine name, an out-of-range CLI argument.
/// Bad input, not a broken invariant — never a ContractViolation, and
/// never retryable; the user must fix the request.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what)
      : Error(ErrorKind::kUsage, what) {}
};

}  // namespace grophecy
