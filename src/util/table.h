// Plain-text table rendering for bench output.
//
// Every bench binary prints its table/figure data through TextTable so the
// paper-reproduction output has a uniform, diffable format.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace grophecy::util {

/// Column alignment inside a TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them with padded columns.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Sets per-column alignment; by default everything is right-aligned
  /// except the first column.
  void set_alignment(std::vector<Align> alignment);

  /// Adds a data row. Must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator line at the current position.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table (headers, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Convenience: render to a string.
  std::string to_string() const;

  /// Writes the table as CSV (header row + data rows; separators skipped).
  void write_csv(std::ostream& os) const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

/// printf-style helper that returns std::string (used to fill table cells).
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// If the GROPHECY_CSV_DIR environment variable is set, writes the table to
/// "<dir>/<name>.csv" and returns true. Benches call this after printing so
/// every reproduction table can be exported for plotting without changing
/// the human-readable output.
bool export_csv_if_requested(const TextTable& table, const std::string& name);

}  // namespace grophecy::util
