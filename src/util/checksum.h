// CRC-32 checksums (the IEEE 802.3 polynomial, as used by zip/png).
//
// The sweep result journal (exec::ResultJournal) stamps every record with
// a checksum so a crash mid-append — a torn final line — is detected on
// the next read instead of being parsed as garbage. CRC-32 is not
// cryptographic; it detects corruption, not tampering, which is exactly
// the contract a local crash-safe journal needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace grophecy::util {

/// CRC-32 of `data` (IEEE polynomial, reflected, init/final 0xFFFFFFFF).
/// crc32("123456789") == 0xCBF43926, the standard check value.
std::uint32_t crc32(std::string_view data);

/// The checksum as fixed-width lowercase hex ("cbf43926").
std::string crc32_hex(std::string_view data);

/// FNV-1a 64-bit hash of `data`. Deterministic across platforms and
/// processes; used for sweep job fingerprints, per-job RNG stream
/// derivation, and calibration-cache keys. Not cryptographic.
std::uint64_t fnv1a64(std::string_view data);

/// Folds `value` into an FNV-1a hash in progress (for hashing structs
/// field by field: start from fnv1a64("") or a previous fold).
std::uint64_t fnv1a64_fold(std::uint64_t hash, std::uint64_t value);

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. Seeding a
/// stochastic stream with splitmix64(base ^ fnv1a64(key)) gives every key
/// a decorrelated stream that is a pure function of (base, key).
std::uint64_t splitmix64(std::uint64_t value);

}  // namespace grophecy::util
