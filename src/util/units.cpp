#include "util/units.h"

#include <cmath>
#include <cstdio>

#include "util/contracts.h"

namespace grophecy::util {

double bandwidth_gbps(double bytes, double seconds) {
  GROPHECY_EXPECTS(seconds > 0.0);
  return bytes / seconds / kGB;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes < kKiB) {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  } else if (bytes < kMiB) {
    if (bytes % kKiB == 0)
      std::snprintf(buf, sizeof buf, "%lluKB",
                    static_cast<unsigned long long>(bytes / kKiB));
    else
      std::snprintf(buf, sizeof buf, "%.1fKB",
                    static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else if (bytes < kGiB) {
    if (bytes % kMiB == 0)
      std::snprintf(buf, sizeof buf, "%lluMB",
                    static_cast<unsigned long long>(bytes / kMiB));
    else
      std::snprintf(buf, sizeof buf, "%.1fMB",
                    static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else {
    std::snprintf(buf, sizeof buf, "%.2fGB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  }
  return buf;
}

std::string format_time(double seconds) {
  char buf[64];
  const double abs_s = std::abs(seconds);
  if (abs_s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (abs_s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

}  // namespace grophecy::util
