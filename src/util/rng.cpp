#include "util/rng.h"

#include <cmath>

#include "util/contracts.h"

namespace grophecy::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GROPHECY_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GROPHECY_EXPECTS(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  GROPHECY_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal(double median, double sigma) {
  GROPHECY_EXPECTS(median > 0.0);
  GROPHECY_EXPECTS(sigma >= 0.0);
  return median * std::exp(sigma * normal());
}

void Rng::fill_normal(double* dst, std::size_t n) {
  if (n == 0) return;
  GROPHECY_EXPECTS(dst != nullptr);
  std::size_t i = 0;
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    dst[i++] = cached_normal_;
  }
  // Whole Box-Muller pairs land directly in the output — same expressions
  // and evaluation order as normal(), just without the cache round-trip,
  // so the stream is bitwise-identical to sequential draws.
  while (i + 2 <= n) {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    dst[i] = radius * std::cos(angle);
    dst[i + 1] = radius * std::sin(angle);
    i += 2;
  }
  // Odd tail: a normal() call caches its pair's second value for whoever
  // draws next, exactly as the sequential stream would.
  if (i < n) dst[i] = normal();
}

void Rng::fill_lognormal(double median, double sigma, double* dst,
                         std::size_t n) {
  GROPHECY_EXPECTS(median > 0.0);
  GROPHECY_EXPECTS(sigma >= 0.0);
  fill_normal(dst, n);
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = median * std::exp(sigma * dst[i]);
}

bool Rng::bernoulli(double p) {
  GROPHECY_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace grophecy::util
