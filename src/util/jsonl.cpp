#include "util/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/table.h"

namespace grophecy::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20)
          out += strfmt("\\u%04x", ch);
        else
          out += ch;
    }
  }
  return out;
}

std::string write_flat_json(const FlatJson& object) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : object) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(key) + "\":";
    if (const auto* s = std::get_if<std::string>(&value)) {
      out += '"' + json_escape(*s) + '"';
    } else if (const auto* d = std::get_if<double>(&value)) {
      out += strfmt("%.17g", *d);
    } else {
      out += std::get<bool>(value) ? "true" : "false";
    }
  }
  out += '}';
  return out;
}

namespace {

/// Cursor over the input; every helper returns false on malformed input.
struct Reader {
  std::string_view text;
  std::size_t pos = 0;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos;
  }

  bool consume(char expected) {
    if (eof() || peek() != expected) return false;
    ++pos;
    return true;
  }

  bool read_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (true) {
      if (eof()) return false;
      const char ch = text[pos++];
      if (ch == '"') return true;
      if (ch != '\\') {
        // RFC 8259: control characters must arrive escaped. Rejecting the
        // raw bytes here keeps line framing unambiguous on the wire — an
        // embedded newline can only ever appear as "\n", so one request is
        // always exactly one line (the writer already escapes on the way
        // out; see json_escape).
        if (static_cast<unsigned char>(ch) < 0x20) return false;
        out += ch;
        continue;
      }
      if (eof()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text[pos++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') code |= hex - '0';
            else if (hex >= 'a' && hex <= 'f') code |= hex - 'a' + 10;
            else if (hex >= 'A' && hex <= 'F') code |= hex - 'A' + 10;
            else return false;
          }
          // Wire clients may escape any BMP character; decode to UTF-8.
          // Unpaired surrogates have no byte encoding and are rejected
          // (raw UTF-8 already passes through both writer and reader, so
          // no client needs surrogate pairs to say anything).
          if (code >= 0xD800 && code <= 0xDFFF) return false;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
  }

  bool read_value(JsonScalar& out) {
    if (eof()) return false;
    const char ch = peek();
    if (ch == '"') {
      std::string s;
      if (!read_string(s)) return false;
      out = std::move(s);
      return true;
    }
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      out = true;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      out = false;
      return true;
    }
    // Number: delegate to strtod over the JSON number charset.
    const std::size_t start = pos;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '-' || peek() == '+' || peek() == '.' ||
                      peek() == 'e' || peek() == 'E'))
      ++pos;
    if (pos == start) return false;
    const std::string token(text.substr(start, pos - start));
    // strtod is laxer than the JSON grammar; reject the extras a hostile
    // wire client could feed it ("+1", ".5" — a JSON number starts with
    // '-' or a digit).
    if (token.front() == '+' || token.front() == '.') return false;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value))
      return false;
    out = value;
    return true;
  }
};

}  // namespace

std::optional<FlatJson> parse_flat_json(std::string_view text) {
  Reader reader{text};
  reader.skip_ws();
  if (!reader.consume('{')) return std::nullopt;
  FlatJson object;
  reader.skip_ws();
  if (reader.consume('}')) {
    reader.skip_ws();
    return reader.eof() ? std::make_optional(object) : std::nullopt;
  }
  while (true) {
    reader.skip_ws();
    std::string key;
    if (!reader.read_string(key)) return std::nullopt;
    reader.skip_ws();
    if (!reader.consume(':')) return std::nullopt;
    reader.skip_ws();
    JsonScalar value;
    if (!reader.read_value(value)) return std::nullopt;
    object.emplace_back(std::move(key), std::move(value));
    reader.skip_ws();
    if (reader.consume(',')) continue;
    if (reader.consume('}')) break;
    return std::nullopt;
  }
  reader.skip_ws();
  if (!reader.eof()) return std::nullopt;
  return object;
}

std::optional<std::string> json_string(const FlatJson& object,
                                       std::string_view key) {
  for (const auto& [name, value] : object)
    if (name == key)
      if (const auto* s = std::get_if<std::string>(&value)) return *s;
  return std::nullopt;
}

std::optional<double> json_number(const FlatJson& object,
                                  std::string_view key) {
  for (const auto& [name, value] : object)
    if (name == key)
      if (const auto* d = std::get_if<double>(&value)) return *d;
  return std::nullopt;
}

std::optional<bool> json_bool(const FlatJson& object, std::string_view key) {
  for (const auto& [name, value] : object)
    if (name == key)
      if (const auto* b = std::get_if<bool>(&value)) return *b;
  return std::nullopt;
}

}  // namespace grophecy::util
