// Size and time units plus human-readable formatting.
//
// Internally the framework always uses bytes and seconds (doubles for time).
// These helpers exist so benches print in the paper's units (ms, MB, GB/s)
// without ad-hoc conversions scattered through the code.
#pragma once

#include <cstdint>
#include <string>

namespace grophecy::util {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Paper-style decimal units (used for bandwidth: GB/s = 1e9 B/s).
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

constexpr double bytes_to_mb(double bytes) { return bytes / kMB; }
constexpr double bytes_to_gb(double bytes) { return bytes / kGB; }
constexpr double seconds_to_ms(double s) { return s * 1e3; }
constexpr double seconds_to_us(double s) { return s * 1e6; }
constexpr double ms_to_seconds(double ms) { return ms * 1e-3; }
constexpr double us_to_seconds(double us) { return us * 1e-6; }

/// Bandwidth in GB/s given bytes moved in `seconds`. Requires seconds > 0.
double bandwidth_gbps(double bytes, double seconds);

/// "1B", "2KB", "512MB" style label for a power-of-two-ish byte count.
std::string format_bytes(std::uint64_t bytes);

/// "12.3 us" / "4.56 ms" / "1.23 s" with an auto-selected unit.
std::string format_time(double seconds);

}  // namespace grophecy::util
