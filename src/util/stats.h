// Statistics used throughout the evaluation harness.
//
// The paper reports arithmetic means of 10 runs and "error magnitudes"
// (absolute value of the percent difference between predicted and measured
// values, §V-A). Those definitions live here so every bench and test uses
// exactly the same arithmetic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace grophecy::util {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator). Requires >= 2 values.
double stddev(std::span<const double> values);

/// Median (average of middle pair for even sizes). Requires non-empty.
double median(std::span<const double> values);

/// Median absolute deviation from the median (raw, unscaled). Requires
/// non-empty input. Multiply by kMadToSigma for a robust sigma estimate
/// under approximately normal noise.
double mad(std::span<const double> values);

/// Consistency factor turning a MAD into a normal-sigma estimate.
inline constexpr double kMadToSigma = 1.4826;

/// Removes MAD-based outliers: keeps values whose modified z-score
/// |x - median| / (kMadToSigma * MAD) is <= z_cutoff. Degenerate samples
/// (MAD == 0) are returned unchanged — with no spread there is no basis
/// for rejection. Requires non-empty input and z_cutoff > 0; always keeps
/// at least the values at the median.
std::vector<double> mad_filter(std::span<const double> values,
                               double z_cutoff);

/// Mean after symmetrically trimming floor(n * trim_fraction) values from
/// each end. Requires non-empty input and trim_fraction in [0, 0.5).
double trimmed_mean(std::span<const double> values, double trim_fraction);

/// Inclusive percentile in [0, 100] by linear interpolation. Non-empty input.
double percentile(std::span<const double> values, double pct);

/// Geometric mean. Requires all values > 0.
double geometric_mean(std::span<const double> values);

/// Minimum / maximum. Require non-empty input.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// The paper's "error magnitude": |predicted - measured| / measured * 100.
/// Requires measured != 0.
double error_magnitude_percent(double predicted, double measured);

/// Signed percent difference: (predicted - measured) / measured * 100.
double percent_difference(double predicted, double measured);

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< Sample variance; requires count() >= 2.
  double stddev() const;
  double min() const;       ///< Requires count() >= 1.
  double max() const;       ///< Requires count() >= 1.

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ordinary least squares fit y = a + b*x. Requires >= 2 distinct x values.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit least_squares(std::span<const double> x, std::span<const double> y);

/// Theil–Sen robust line fit: slope = median of all pairwise slopes,
/// intercept = median of (y_i - slope * x_i). Breakdown point ~29%: up to
/// that fraction of wild outliers leaves the fit essentially unchanged,
/// where least_squares (and the two-point calibration it generalizes) can
/// be corrupted by a single bad sample. Requires >= 2 distinct x values.
/// r_squared is computed against the data, as for least_squares.
LinearFit theil_sen(std::span<const double> x, std::span<const double> y);

}  // namespace grophecy::util
