// Statistics used throughout the evaluation harness.
//
// The paper reports arithmetic means of 10 runs and "error magnitudes"
// (absolute value of the percent difference between predicted and measured
// values, §V-A). Those definitions live here so every bench and test uses
// exactly the same arithmetic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace grophecy::util {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator). Requires >= 2 values.
double stddev(std::span<const double> values);

/// Median (average of middle pair for even sizes). Requires non-empty.
double median(std::span<const double> values);

/// Inclusive percentile in [0, 100] by linear interpolation. Non-empty input.
double percentile(std::span<const double> values, double pct);

/// Geometric mean. Requires all values > 0.
double geometric_mean(std::span<const double> values);

/// Minimum / maximum. Require non-empty input.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// The paper's "error magnitude": |predicted - measured| / measured * 100.
/// Requires measured != 0.
double error_magnitude_percent(double predicted, double measured);

/// Signed percent difference: (predicted - measured) / measured * 100.
double percent_difference(double predicted, double measured);

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< Sample variance; requires count() >= 2.
  double stddev() const;
  double min() const;       ///< Requires count() >= 1.
  double max() const;       ///< Requires count() >= 1.

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ordinary least squares fit y = a + b*x. Requires >= 2 distinct x values.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit least_squares(std::span<const double> x, std::span<const double> y);

}  // namespace grophecy::util
