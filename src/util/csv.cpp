#include "util/csv.h"

namespace grophecy::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *os_ << ',';
    *os_ << csv_escape(fields[i]);
  }
  *os_ << '\n';
}

}  // namespace grophecy::util
