// Tiny leveled logger.
//
// The framework is a library first; logging defaults to warnings-and-above
// on stderr and is globally adjustable (benches turn on info for progress).
#pragma once

#include <sstream>
#include <string>

namespace grophecy::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line ("[level] message") to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace grophecy::util

#define GROPHECY_LOG(level) \
  ::grophecy::util::detail::LogLine(::grophecy::util::LogLevel::level)
