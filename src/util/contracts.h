// Contract checking in the spirit of the C++ Core Guidelines (I.6 / I.8).
//
// GROPHECY_EXPECTS checks preconditions, GROPHECY_ENSURES postconditions.
// Violations throw grophecy::ContractViolation so tests can assert on them;
// models and simulators must never silently produce garbage for bad inputs.
#pragma once

#include <stdexcept>
#include <string>

namespace grophecy {

/// Thrown when a precondition or postcondition of a public API is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace grophecy

#define GROPHECY_EXPECTS(cond)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::grophecy::detail::contract_fail("precondition", #cond, __FILE__,    \
                                        __LINE__);                          \
  } while (false)

#define GROPHECY_ENSURES(cond)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::grophecy::detail::contract_fail("postcondition", #cond, __FILE__,   \
                                        __LINE__);                          \
  } while (false)
