#include "util/table.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/contracts.h"
#include "util/csv.h"

namespace grophecy::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GROPHECY_EXPECTS(!headers_.empty());
  alignment_.assign(headers_.size(), Align::kRight);
  alignment_.front() = Align::kLeft;
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  GROPHECY_EXPECTS(alignment.size() == headers_.size());
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> cells) {
  GROPHECY_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      os << "| ";
      if (alignment_[c] == Align::kRight) os << std::string(pad, ' ');
      os << cells[c];
      if (alignment_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << ' ';
    }
    os << "|\n";
  };

  auto print_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c)
      os << std::string(widths[c] + 2, '-') << '+';
    os << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator)
      print_rule();
    else
      print_cells(row.cells);
  }
  print_rule();
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void TextTable::write_csv(std::ostream& os) const {
  CsvWriter writer(os);
  writer.write_row(headers_);
  for (const Row& row : rows_) {
    if (!row.separator) writer.write_row(row.cells);
  }
}

bool export_csv_if_requested(const TextTable& table,
                             const std::string& name) {
  const char* dir = std::getenv("GROPHECY_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream file(path);
  if (!file) return false;
  table.write_csv(file);
  return true;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace grophecy::util
