// Flat d-ary min-heap in structure-of-arrays layout.
//
// A binary heap of (key, payload) structs is the textbook answer for "pop
// the smallest threshold", but on a hot path it pays twice: every sift
// moves 16-byte pairs, and every comparison loads a key from a strided
// AoS layout. This heap stores the keys and payloads in two parallel
// arrays (`keys_[]` / `values_[]`) so a sift-down compares up to `Arity`
// *contiguous* keys per level — one cache line covers a whole node family
// — and hole-percolation moves each entry once instead of swapping.
// Arity 4 halves the tree depth of a binary heap while keeping the
// per-level scan inside a single cache line of keys.
//
// Used by the cohort event simulator for its per-stream exhaustion
// thresholds (threshold[] / cohort[]), alongside util::IndexedMinHeap
// (which solves the different problem of decrease-key over a fixed slot
// set). Not thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grophecy::util {

/// Min-heap of `double` keys with an `int32` payload, stored as parallel
/// arrays. `clear()` keeps the buffers, so a reserved heap can be reused
/// across runs without allocating.
template <int Arity = 4>
class FlatDaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  std::size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Pre-grows the buffers; later pushes up to `n` never allocate.
  void reserve(std::size_t n) {
    keys_.reserve(n);
    values_.reserve(n);
  }

  /// Removes every entry but keeps the buffers (no deallocation).
  void clear() {
    keys_.clear();
    values_.clear();
  }

  /// Smallest key. Undefined on an empty heap (hot path: no contract
  /// check here — callers guard with empty()).
  double top_key() const { return keys_[0]; }

  /// Payload of the smallest key. Undefined on an empty heap.
  std::int32_t top_value() const { return values_[0]; }

  void push(double key, std::int32_t value) {
    std::size_t hole = keys_.size();
    keys_.push_back(key);
    values_.push_back(value);
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / Arity;
      if (keys_[parent] <= key) break;
      keys_[hole] = keys_[parent];
      values_[hole] = values_[parent];
      hole = parent;
    }
    keys_[hole] = key;
    values_[hole] = value;
  }

  /// Removes the smallest entry. Undefined on an empty heap.
  void pop() {
    const std::size_t n = keys_.size() - 1;
    const double key = keys_[n];
    const std::int32_t value = values_[n];
    keys_.pop_back();
    values_.pop_back();
    if (n == 0) return;
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = hole * Arity + 1;
      if (first >= n) break;
      const std::size_t last = first + Arity < n ? first + Arity : n;
      std::size_t best = first;
      double best_key = keys_[first];
      for (std::size_t child = first + 1; child < last; ++child) {
        if (keys_[child] < best_key) {
          best = child;
          best_key = keys_[child];
        }
      }
      if (key <= best_key) break;
      keys_[hole] = best_key;
      values_[hole] = values_[best];
      hole = best;
    }
    keys_[hole] = key;
    values_[hole] = value;
  }

 private:
  std::vector<double> keys_;
  std::vector<std::int32_t> values_;
};

}  // namespace grophecy::util
