// Process-wide caches for immutable, content-addressed pipeline artifacts.
//
// The projection pipeline derives several artifacts that are pure
// functions of their inputs: a parsed .gskel/.gmach document is a pure
// function of the file bytes, a built workload skeleton of
// (workload, size, iterations), a transfer plan of the skeleton content.
// Sweeps re-derive them once per job; this cache derives each once per
// process and hands every later consumer the same immutable object.
//
//   * Keys are 64-bit FNV-1a content hashes (build them with KeyBuilder).
//   * Values are `shared_ptr<const Value>`: immutable and safely shared
//     across SweepEngine workers without copies or locks on the artifact.
//   * get_or_build is single-flight per key: concurrent misses on one key
//     run the factory exactly once, everyone else blocks on the shared
//     future. Distinct keys build concurrently (the factory runs outside
//     the cache lock). A throwing factory is evicted, never cached.
//   * hits/misses counters feed the accounting that paper_report prints
//     alongside the calibration-cache accounting (docs/performance.md).
//
// Determinism: a cached artifact is bit-identical to what the caller
// would have built itself — content-addressed keys guarantee it. Cache
// hits change wall-clock time, never results.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>

namespace grophecy::util {

/// Incrementally folds heterogeneous fields into one 64-bit FNV-1a state
/// (the same scheme as pcie::calibration_cache_key). Strings are length
/// prefixed so ("ab","c") and ("a","bc") fold differently; doubles are
/// folded via their bit representation, since a cache must distinguish
/// any inputs the computation could distinguish.
class KeyBuilder {
 public:
  KeyBuilder& field(std::uint64_t value) {
    hash_ = fold(hash_, value);
    return *this;
  }
  KeyBuilder& field(std::int64_t value) {
    return field(static_cast<std::uint64_t>(value));
  }
  KeyBuilder& field(int value) {
    return field(static_cast<std::int64_t>(value));
  }
  KeyBuilder& field(bool value) { return field(std::uint64_t{value ? 1u : 0u}); }
  KeyBuilder& field(double value) {
    return field(std::bit_cast<std::uint64_t>(value));
  }
  KeyBuilder& field(std::string_view value) {
    field(static_cast<std::uint64_t>(value.size()));
    for (char c : value) hash_ = fold(hash_, static_cast<unsigned char>(c));
    return *this;
  }
  /// Without this overload a string literal would take the bool overload
  /// (pointer-to-bool is a standard conversion and beats string_view's
  /// user-defined one), silently collapsing every literal to `true`.
  KeyBuilder& field(const char* value) {
    return field(std::string_view(value));
  }

  std::uint64_t hash() const { return hash_; }

 private:
  static std::uint64_t fold(std::uint64_t hash, std::uint64_t value) {
    // FNV-1a over the value's eight bytes, little-endian.
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
    return hash;
  }

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
};

/// One process-wide cache of immutable artifacts. Thread-safe; see file
/// comment for the single-flight and determinism contracts.
template <typename Value>
class ArtifactCache {
 public:
  using Artifact = std::shared_ptr<const Value>;
  using Factory = std::function<Value()>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Returns the artifact for `key`, running `factory` (outside the lock)
  /// exactly once per key to produce it. Concurrent callers with the same
  /// key block until the in-flight build finishes. A throwing factory
  /// poisons nothing: the failed entry is evicted so a later call may
  /// retry, and the exception propagates to every caller waiting on that
  /// flight. When `from_cache` is non-null it is set to true on a hit.
  Artifact get_or_build(std::uint64_t key, const Factory& factory,
                        bool* from_cache = nullptr) {
    std::promise<Artifact> promise;
    std::shared_ptr<Flight> flight;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++hits_;
        flight = it->second;
      } else {
        ++misses_;
        owner = true;
        flight = std::make_shared<Flight>(promise.get_future().share());
        entries_.emplace(key, flight);
      }
    }

    if (owner) {
      try {
        promise.set_value(std::make_shared<const Value>(factory()));
      } catch (...) {
        promise.set_exception(std::current_exception());
        // Evict by flight *identity*, not by key: if clear() raced in
        // between and a fresh, healthy flight already occupies the key,
        // that successor must survive (same contract as the PR 6
        // CalibrationCache fix — erasing by key would drop it and re-run
        // its factory, breaking single-flight).
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second == flight) entries_.erase(it);
      }
    }

    if (from_cache) *from_cache = !owner;
    return flight->future.get();  // waits for the in-flight owner
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {hits_, misses_};
  }

  /// Cached entries (completed or in flight).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// Drops every entry and zeroes the counters (tests and benchmarks).
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  /// An in-flight (or completed) build. Held by shared_ptr so the failed
  /// -flight eviction path can compare identities: std::shared_future has
  /// no operator==, but the owning handle does.
  struct Flight {
    explicit Flight(std::shared_future<Artifact> f) : future(std::move(f)) {}
    std::shared_future<Artifact> future;
  };

  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<Flight>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace grophecy::util
