// Indexed binary min-heap over a fixed set of slots.
//
// A classic d-heap with a position index, for schedulers that track "the
// next deadline of each of N known streams" and need decrease-key /
// increase-key when a stream's rate changes: update(slot, key) re-sifts
// the one entry in O(log N) instead of rebuilding. Slots are dense
// integers [0, size); every slot always has a key (use +infinity for "no
// pending event"). Used by the cohort event simulator to pick the next
// exhaustion among its per-SM compute streams plus the chip-wide memory
// and floor streams.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "util/contracts.h"

namespace grophecy::util {

/// Min-heap of `double` keys over dense integer slots with O(log N)
/// update-key. Not thread-safe.
class IndexedMinHeap {
 public:
  IndexedMinHeap() = default;

  /// Initializes (or re-initializes) with `count` slots, all keyed +inf.
  void reset(std::size_t count) {
    keys_.assign(count, std::numeric_limits<double>::infinity());
    heap_.resize(count);
    pos_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      heap_[i] = i;
      pos_[i] = i;
    }
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  double key(std::size_t slot) const {
    GROPHECY_EXPECTS(slot < keys_.size());
    return keys_[slot];
  }

  /// The slot with the smallest key (ties broken arbitrarily but
  /// deterministically). Requires a non-empty heap.
  std::size_t top() const {
    GROPHECY_EXPECTS(!heap_.empty());
    return heap_[0];
  }

  double top_key() const { return keys_[top()]; }

  /// Sets `slot`'s key and restores the heap order.
  void update(std::size_t slot, double new_key) {
    GROPHECY_EXPECTS(slot < keys_.size());
    const double old_key = keys_[slot];
    keys_[slot] = new_key;
    if (new_key < old_key)
      sift_up(pos_[slot]);
    else if (new_key > old_key)
      sift_down(pos_[slot]);
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (keys_[heap_[parent]] <= keys_[heap_[i]]) break;
      swap_entries(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && keys_[heap_[left]] < keys_[heap_[smallest]])
        smallest = left;
      if (right < n && keys_[heap_[right]] < keys_[heap_[smallest]])
        smallest = right;
      if (smallest == i) break;
      swap_entries(i, smallest);
      i = smallest;
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }

  std::vector<double> keys_;       // key per slot
  std::vector<std::size_t> heap_;  // heap of slots
  std::vector<std::size_t> pos_;   // slot -> heap index
};

}  // namespace grophecy::util
