// ASCII line charts for the reproduction benches.
//
// The paper's results are figures, not tables; the fig benches print both.
// AsciiChart renders multiple series over a shared X axis into a terminal
// plot, with optional log-scaled axes (the paper's transfer-time plots are
// log-log, its speedup-vs-iterations plots are log-x).
//
//   AsciiChart chart(60, 16);
//   chart.set_x_log(true);
//   chart.add_series("measured", 'o', xs, ys_measured);
//   chart.add_series("predicted", '+', xs, ys_predicted);
//   chart.print(std::cout);
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace grophecy::util {

/// Multi-series scatter/line chart rendered with ASCII characters.
class AsciiChart {
 public:
  /// Plot area size in character cells (excluding axes/labels).
  AsciiChart(int width, int height);

  /// Log-scale an axis (all values on that axis must then be > 0).
  void set_x_log(bool log);
  void set_y_log(bool log);

  /// Optional axis captions.
  void set_x_label(std::string label);
  void set_y_label(std::string label);

  /// Adds a series; `xs` and `ys` must have equal, non-zero length.
  /// Points are drawn with `marker`; later series overdraw earlier ones.
  void add_series(std::string name, char marker,
                  const std::vector<double>& xs,
                  const std::vector<double>& ys);

  /// Renders the chart (plot, axes, tick labels, legend).
  void print(std::ostream& os) const;

  std::string to_string() const;

 private:
  struct Series {
    std::string name;
    char marker;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  int width_;
  int height_;
  bool x_log_ = false;
  bool y_log_ = false;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace grophecy::util
