// Deterministic random number generation for the simulators.
//
// All stochastic components of the framework (PCIe jitter, GPU timing noise,
// sparse-matrix synthesis) draw from grophecy::util::Rng so that every
// experiment is exactly reproducible from a seed. The generator is
// xoshiro256** seeded via SplitMix64, which is fast, high quality, and
// independent of the standard library's unspecified distributions: we
// implement the distributions we need ourselves so results are identical
// across platforms and standard libraries.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace grophecy::util {

/// xoshiro256** PRNG with SplitMix64 seeding. Deterministic across platforms.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, platform independent).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal such that the *median* of the distribution is `median` and
  /// the underlying normal has standard deviation `sigma`. A multiplicative
  /// jitter factor around 1.0 is lognormal(1.0, sigma).
  double lognormal(double median, double sigma);

  /// Fills `dst[0..n)` with standard-normal draws. Bitwise-identical to
  /// `n` successive `normal()` calls, including the Box-Muller pair cache:
  /// a fill may start by consuming a cached value and may end by leaving
  /// one behind, so any split of one stream into fills and single draws
  /// produces the same sequence.
  void fill_normal(double* dst, std::size_t n);

  /// Fills `dst[0..n)` with lognormal(median, sigma) draws,
  /// bitwise-identical to `n` successive `lognormal(median, sigma)` calls
  /// (same cache semantics as fill_normal).
  void fill_lognormal(double median, double sigma, double* dst,
                      std::size_t n);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Forks an independent stream (useful to decorrelate subsystems).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace grophecy::util
