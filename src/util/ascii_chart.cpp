#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/contracts.h"
#include "util/table.h"

namespace grophecy::util {

AsciiChart::AsciiChart(int width, int height)
    : width_(width), height_(height) {
  GROPHECY_EXPECTS(width >= 10 && width <= 400);
  GROPHECY_EXPECTS(height >= 4 && height <= 200);
}

void AsciiChart::set_x_log(bool log) { x_log_ = log; }
void AsciiChart::set_y_log(bool log) { y_log_ = log; }
void AsciiChart::set_x_label(std::string label) {
  x_label_ = std::move(label);
}
void AsciiChart::set_y_label(std::string label) {
  y_label_ = std::move(label);
}

void AsciiChart::add_series(std::string name, char marker,
                            const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  GROPHECY_EXPECTS(!xs.empty());
  GROPHECY_EXPECTS(xs.size() == ys.size());
  series_.push_back(Series{std::move(name), marker, xs, ys});
}

namespace {

double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(v);
}

std::string format_tick(double v) {
  if (v != 0.0 && (std::abs(v) >= 1e5 || std::abs(v) < 1e-2))
    return strfmt("%.1e", v);
  if (std::abs(v - std::round(v)) < 1e-9)
    return strfmt("%.0f", v);
  return strfmt("%.2f", v);
}

}  // namespace

void AsciiChart::print(std::ostream& os) const {
  GROPHECY_EXPECTS(!series_.empty());

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      GROPHECY_EXPECTS(!x_log_ || s.xs[i] > 0.0);
      GROPHECY_EXPECTS(!y_log_ || s.ys[i] > 0.0);
      x_min = std::min(x_min, transform(s.xs[i], x_log_));
      x_max = std::max(x_max, transform(s.xs[i], x_log_));
      y_min = std::min(y_min, transform(s.ys[i], y_log_));
      y_max = std::max(y_max, transform(s.ys[i], y_log_));
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_),
                                            ' '));
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx =
          (transform(s.xs[i], x_log_) - x_min) / (x_max - x_min);
      const double fy =
          (transform(s.ys[i], y_log_) - y_min) / (y_max - y_min);
      const int col = std::clamp(
          static_cast<int>(std::lround(fx * (width_ - 1))), 0, width_ - 1);
      const int row =
          std::clamp(static_cast<int>(std::lround((1.0 - fy) *
                                                  (height_ - 1))),
                     0, height_ - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.marker;
    }
  }

  auto untransform = [](double v, bool log_scale) {
    return log_scale ? std::pow(10.0, v) : v;
  };

  // Y-axis labels: top, middle, bottom.
  const std::string y_top = format_tick(untransform(y_max, y_log_));
  const std::string y_mid =
      format_tick(untransform((y_max + y_min) / 2.0, y_log_));
  const std::string y_bot = format_tick(untransform(y_min, y_log_));
  std::size_t label_width =
      std::max({y_top.size(), y_mid.size(), y_bot.size()});

  if (!y_label_.empty())
    os << std::string(label_width + 2, ' ') << y_label_ << '\n';
  for (int row = 0; row < height_; ++row) {
    std::string label;
    if (row == 0) label = y_top;
    else if (row == height_ / 2) label = y_mid;
    else if (row == height_ - 1) label = y_bot;
    os << std::string(label_width - label.size(), ' ') << label << " |"
       << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << std::string(label_width + 1, ' ') << '+'
     << std::string(static_cast<std::size_t>(width_), '-') << '\n';

  const std::string x_lo = format_tick(untransform(x_min, x_log_));
  const std::string x_hi = format_tick(untransform(x_max, x_log_));
  std::string x_line = std::string(label_width + 2, ' ') + x_lo;
  const std::size_t x_hi_col =
      label_width + 2 + static_cast<std::size_t>(width_) - x_hi.size();
  if (x_line.size() < x_hi_col) x_line += std::string(x_hi_col - x_line.size(), ' ');
  x_line += x_hi;
  os << x_line;
  if (!x_label_.empty()) os << "  " << x_label_;
  os << '\n';

  // Legend.
  os << std::string(label_width + 2, ' ');
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) os << "   ";
    os << series_[i].marker << " = " << series_[i].name;
  }
  os << '\n';
}

std::string AsciiChart::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace grophecy::util
