#include "util/checksum.h"

#include <array>

#include "util/table.h"

namespace grophecy::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data)
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::string_view data) {
  return strfmt("%08x", crc32(data));
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64_fold(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFFu;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t value) {
  value += 0x9e3779b97f4a7c15ULL;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
  return value ^ (value >> 31);
}

}  // namespace grophecy::util
