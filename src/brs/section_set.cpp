#include "brs/section_set.h"

#include <algorithm>

#include "util/contracts.h"

namespace grophecy::brs {

namespace {

/// True when the first-dimension bounding boxes cannot share an element —
/// then subtract() provably returns the piece unchanged (split_dim keeps
/// the whole range at dimension 0 and the carve loop stops there).
bool dim0_disjoint(const Section& piece, const Section& member) {
  const DimSection& p = piece.dims.front();
  const DimSection& m = member.dims.front();
  return p.upper < m.lower || p.lower > m.upper;
}

}  // namespace

SectionSet::Window SectionSet::candidate_window(std::int64_t lo,
                                                std::int64_t hi) const {
  const auto by_lower = [](const Section& s, std::int64_t key) {
    return s.dims.front().lower < key;
  };
  const auto first = std::lower_bound(sections_.begin(), sections_.end(),
                                      lo, by_lower);
  // Members are sorted by dims[0].lower, so the window ends at the first
  // member whose lower bound exceeds hi.
  auto last = first;
  while (last != sections_.end() && last->dims.front().lower <= hi) ++last;
  return {static_cast<std::size_t>(first - sections_.begin()),
          static_cast<std::size_t>(last - sections_.begin())};
}

void SectionSet::add(const Section& section) {
  if (section.is_empty()) return;
  GROPHECY_EXPECTS(sections_.empty() ||
                   sections_.front().array == section.array);
  fold_.reset();

  // Cascade: absorb every member that merges exactly with the incoming
  // section (each merge can enable further merges with its new neighbors)
  // until a fixpoint, then insert the result at its sorted position.
  //
  // Candidate pruning: a member can only interact with the incoming
  // section when its first-dimension box overlaps it, is nested either
  // way, or sits within one stride of it (an exact union of box-disjoint
  // arithmetic progressions requires the gap to be at most the combined
  // stride, which min(strides) bounds). All of those imply
  //   member.lower in [incoming.lower - max_span - slack,
  //                    incoming.upper + slack]
  // with slack = max(max_stride_, incoming stride).
  Section incoming = section;
  bool merged = true;
  while (merged) {
    merged = false;
    const DimSection& d0 = incoming.dims.front();
    const std::int64_t slack = std::max(max_stride_, d0.stride);
    const Window window =
        candidate_window(d0.lower - max_span_ - slack, d0.upper + slack);
    for (std::size_t i = window.begin; i < window.end; ++i) {
      const Section& member = sections_[i];
      if (contains(member, incoming)) return;  // Already covered (and so
                                               // is anything absorbed —
                                               // its union was exact).
      Section united = unite(member, incoming);
      if (!united.exact) continue;
      incoming = std::move(united);
      sections_.erase(sections_.begin() + static_cast<std::ptrdiff_t>(i));
      merged = true;
      break;
    }
  }

  const DimSection& d0 = incoming.dims.front();
  max_span_ = std::max(max_span_, d0.upper - d0.lower);
  max_stride_ = std::max(max_stride_, d0.stride);
  const auto pos = std::upper_bound(
      sections_.begin(), sections_.end(), d0.lower,
      [](std::int64_t key, const Section& s) {
        return key < s.dims.front().lower;
      });
  sections_.insert(pos, std::move(incoming));
}

bool SectionSet::covers(const Section& section) const {
  if (section.is_empty()) return true;
  if (sections_.empty()) return false;
  // A containing member must start at or before the query and span past
  // its end, which bounds its lower key to [query.lower - max_span_,
  // query.lower].
  const DimSection& d0 = section.dims.front();
  const Window window = candidate_window(d0.lower - max_span_, d0.lower);
  for (std::size_t i = window.begin; i < window.end; ++i)
    if (contains(sections_[i], section)) return true;
  // Fall back to the exact union of everything.
  const Section& all = fold();
  return all.exact && contains(all, section);
}

std::vector<Section> SectionSet::subtract_from(const Section& section) const {
  if (sections_.empty()) return {section};
  if (section.is_empty()) return {};

  // Every remaining piece stays inside the query's first-dimension box, so
  // members outside [query.lower - max_span_, query.upper] are first-
  // dimension-disjoint from every piece and contribute nothing.
  const DimSection& d0 = section.dims.front();
  const Window window = candidate_window(d0.lower - max_span_, d0.upper);

  std::vector<Section> remaining{section};
  if (section.dims.size() == 1) {
    // Rank-1 fast path: pieces have pairwise-disjoint boxes and stay
    // sorted by lower bound (splits replace a piece with its in-order
    // sub-ranges), and members are visited in ascending lower order — so
    // pieces that end before the current member begins are final for
    // every later member too. One monotone pass over both sequences.
    std::size_t frozen = 0;
    for (std::size_t m = window.begin;
         m < window.end && frozen < remaining.size(); ++m) {
      const Section& member = sections_[m];
      const DimSection& md = member.dims.front();
      while (frozen < remaining.size() &&
             remaining[frozen].dims.front().upper < md.lower)
        ++frozen;
      std::size_t i = frozen;
      while (i < remaining.size()) {
        if (remaining[i].dims.front().lower > md.upper) break;
        std::vector<Section> difference = subtract(remaining[i], member);
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(i));
        remaining.insert(remaining.begin() + static_cast<std::ptrdiff_t>(i),
                         std::make_move_iterator(difference.begin()),
                         std::make_move_iterator(difference.end()));
        i += difference.size();
      }
    }
    return remaining;
  }

  // General rank: members in order, with an O(1) first-dimension box
  // reject per (member, piece) pair replacing the full carve.
  for (std::size_t m = window.begin; m < window.end; ++m) {
    const Section& member = sections_[m];
    std::vector<Section> next;
    next.reserve(remaining.size());
    for (Section& piece : remaining) {
      if (dim0_disjoint(piece, member)) {
        next.push_back(std::move(piece));
        continue;
      }
      std::vector<Section> difference = subtract(piece, member);
      next.insert(next.end(), std::make_move_iterator(difference.begin()),
                  std::make_move_iterator(difference.end()));
    }
    remaining = std::move(next);
    if (remaining.empty()) break;
  }
  return remaining;
}

const Section& SectionSet::fold() const {
  if (!fold_) {
    Section all = sections_.front();
    for (std::size_t i = 1; i < sections_.size(); ++i)
      all = unite(all, sections_[i]);
    fold_ = std::move(all);
  }
  return *fold_;
}

Section SectionSet::bounding_union() const {
  GROPHECY_EXPECTS(!sections_.empty());
  return fold();
}

}  // namespace grophecy::brs
