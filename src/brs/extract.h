// Extraction of Bounded Regular Sections from code skeletons.
//
// For an affine reference, the section per array dimension is the range of
// the subscript expression across all enclosing loops; single-loop
// subscripts yield exact strided sections, multi-loop (linearized)
// subscripts yield conservative enclosing sections. Data-dependent
// references and sparse arrays yield whole-array sections (paper §III-B).
#pragma once

#include <vector>

#include "brs/section.h"
#include "skeleton/skeleton.h"

namespace grophecy::brs {

/// The section of `ref.array` touched by `ref` across the whole kernel.
/// Subscript ranges are clamped to the array bounds (stencil halos read
/// logically out-of-range elements that real implementations guard).
Section access_section(const skeleton::AppSkeleton& app,
                       const skeleton::KernelSkeleton& kernel,
                       const skeleton::ArrayRef& ref);

/// One access of a kernel, in statement order, with its section.
struct AccessSection {
  Section section;
  skeleton::RefKind kind = skeleton::RefKind::kLoad;
  bool indirect = false;
};

/// All accesses of a kernel in program order (statement by statement,
/// reference by reference). Program order is what lets the data-usage
/// analyzer distinguish "read before written" from "read after written".
std::vector<AccessSection> kernel_accesses(
    const skeleton::AppSkeleton& app, const skeleton::KernelSkeleton& kernel);

}  // namespace grophecy::brs
