// The pinned pre-rewrite SectionSet: linear scan per add/covers query,
// member-by-member subtraction. Kept verbatim as the semantic baseline the
// fast SectionSet (brs/section_set.h) is measured and property-tested
// against:
//
//   * tests/brs_property_test.cpp checks both implementations against a
//     brute-force rasterized oracle on small arrays and pins their
//     bounding unions to the same box and stride;
//   * bench/micro_brs measures the fast/reference speedup and gates it in
//     CI via scripts/bench_compare.
//
// Not for production use — every operation is O(members) or worse.
#pragma once

#include <vector>

#include "brs/section.h"

namespace grophecy::brs {

/// The O(n)-scan SectionSet this repo shipped before the sorted-window
/// rewrite; same conservative contract, insertion-order member list.
class ReferenceSectionSet {
 public:
  bool empty() const { return sections_.empty(); }
  const std::vector<Section>& sections() const { return sections_; }

  /// Adds a section, merging with the first existing member whose union
  /// with it is exact.
  void add(const Section& section);

  /// Conservative containment query; see SectionSet::covers.
  bool covers(const Section& section) const;

  /// The smallest single regular section enclosing the whole set.
  /// Requires a non-empty set.
  Section bounding_union() const;

  /// Conservative difference; see SectionSet::subtract_from.
  std::vector<Section> subtract_from(const Section& section) const;

 private:
  std::vector<Section> sections_;
};

}  // namespace grophecy::brs
