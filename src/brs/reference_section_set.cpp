#include "brs/reference_section_set.h"

#include "util/contracts.h"

namespace grophecy::brs {

void ReferenceSectionSet::add(const Section& section) {
  if (section.is_empty()) return;
  GROPHECY_EXPECTS(sections_.empty() ||
                   sections_.front().array == section.array);
  // Try to merge exactly with an existing member.
  for (Section& member : sections_) {
    if (contains(member, section)) return;
    const Section merged = unite(member, section);
    if (merged.exact) {
      member = merged;
      return;
    }
  }
  sections_.push_back(section);
}

bool ReferenceSectionSet::covers(const Section& section) const {
  if (section.is_empty()) return true;
  if (sections_.empty()) return false;
  for (const Section& member : sections_) {
    if (contains(member, section)) return true;
  }
  // Fall back to the exact union of everything.
  Section all = sections_.front();
  for (std::size_t i = 1; i < sections_.size(); ++i)
    all = unite(all, sections_[i]);
  return all.exact && contains(all, section);
}

std::vector<Section> ReferenceSectionSet::subtract_from(
    const Section& section) const {
  std::vector<Section> remaining{section};
  for (const Section& member : sections_) {
    std::vector<Section> next;
    for (const Section& piece : remaining) {
      std::vector<Section> difference = subtract(piece, member);
      next.insert(next.end(), difference.begin(), difference.end());
    }
    remaining = std::move(next);
    if (remaining.empty()) break;
  }
  return remaining;
}

Section ReferenceSectionSet::bounding_union() const {
  GROPHECY_EXPECTS(!sections_.empty());
  Section all = sections_.front();
  for (std::size_t i = 1; i < sections_.size(); ++i)
    all = unite(all, sections_[i]);
  return all;
}

}  // namespace grophecy::brs
