#include "brs/footprint.h"

#include <map>

#include "brs/extract.h"
#include "brs/section_set.h"

namespace grophecy::brs {

namespace {

/// True if the statement's nest contains a loop (trip count > 1) that the
/// hidden index does not depend on: that loop's iterations either revisit
/// the gathered address or stream sequentially from it, so the gather
/// amortizes like a stream (CSR SpMM's B[col[k], j] and a_val[k] under the
/// j loop). A gather whose hidden index depends on EVERY enclosing loop
/// lands on a fresh random address each execution (CFD's neighbor reads).
bool gather_is_amortized(const skeleton::ArrayRef& ref,
                         const skeleton::KernelSkeleton& kernel,
                         const skeleton::Statement& stmt) {
  const std::size_t depth =
      stmt.depth < 0 ? kernel.loops.size()
                     : std::min<std::size_t>(stmt.depth, kernel.loops.size());
  for (std::size_t loop = 0; loop < depth; ++loop) {
    if (kernel.loops[loop].trip_count() <= 1) continue;
    bool in_deps = false;
    for (skeleton::LoopId dep : ref.indirect_deps)
      if (static_cast<std::size_t>(dep) == loop) in_deps = true;
    if (!in_deps) return true;
  }
  return false;
}

}  // namespace

KernelFootprint kernel_footprint(const skeleton::AppSkeleton& app,
                                 const skeleton::KernelSkeleton& kernel) {
  KernelFootprint fp;

  std::map<skeleton::ArrayId, SectionSet> read_sets;
  std::map<skeleton::ArrayId, SectionSet> write_sets;

  for (const skeleton::Statement& stmt : kernel.body) {
    const auto iterations =
        static_cast<std::uint64_t>(kernel.statement_iterations(stmt));
    fp.flops += stmt.flops * static_cast<double>(iterations);
    fp.special_ops += stmt.special_ops * static_cast<double>(iterations);
    for (const skeleton::ArrayRef& ref : stmt.refs) {
      const skeleton::ArrayDecl& decl = app.array(ref.array);
      const auto elem = static_cast<std::uint64_t>(
          skeleton::elem_size_bytes(decl.type));
      const Section section = access_section(app, kernel, ref);
      if (ref.kind == skeleton::RefKind::kLoad) {
        read_sets[ref.array].add(section);
        fp.dynamic_loads += iterations;
        fp.dynamic_load_bytes += iterations * elem;
        if (ref.has_indirection() || decl.sparse) {
          fp.dynamic_indirect_loads += iterations;
          if (ref.has_indirection() &&
              !gather_is_amortized(ref, kernel, stmt))
            fp.dynamic_random_gathers += iterations;
        }
      } else {
        write_sets[ref.array].add(section);
        fp.dynamic_stores += iterations;
        fp.dynamic_store_bytes += iterations * elem;
      }
    }
  }

  for (const auto& [array_id, set] : read_sets)
    fp.unique_bytes_read += set.bounding_union().bytes(app.array(array_id));
  for (const auto& [array_id, set] : write_sets)
    fp.unique_bytes_written +=
        set.bounding_union().bytes(app.array(array_id));
  return fp;
}

}  // namespace grophecy::brs
