#include "brs/extract.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"

namespace grophecy::brs {

namespace {

/// Range and stride of an affine expression over the kernel's loops.
DimSection subscript_range(const skeleton::AffineExpr& expr,
                           const skeleton::KernelSkeleton& kernel,
                           bool& dim_exact) {
  std::int64_t lo = expr.constant;
  std::int64_t hi = expr.constant;
  std::int64_t stride_gcd = 0;
  int varying_terms = 0;

  for (const auto& [loop_id, coeff] : expr.terms) {
    if (coeff == 0) continue;
    const skeleton::Loop& loop =
        kernel.loops[static_cast<std::size_t>(loop_id)];
    const std::int64_t trips = loop.trip_count();
    if (trips == 0) return DimSection::empty();
    const std::int64_t first = loop.lower;
    const std::int64_t last = loop.lower + (trips - 1) * loop.step;
    if (coeff > 0) {
      lo += coeff * first;
      hi += coeff * last;
    } else {
      lo += coeff * last;
      hi += coeff * first;
    }
    if (trips > 1) {
      stride_gcd = std::gcd(stride_gcd, std::abs(coeff) * loop.step);
      ++varying_terms;
    }
  }

  // A subscript varying with a single loop is an exact arithmetic sequence;
  // with several loops the gcd stride encloses the true set (e.g. i*N + j).
  dim_exact = varying_terms <= 1;
  if (stride_gcd == 0) stride_gcd = 1;
  return DimSection::range(lo, hi, stride_gcd);
}

DimSection clamp_to_extent(DimSection s, std::int64_t extent) {
  if (s.is_empty()) return s;
  if (s.lower < 0) {
    const std::int64_t steps = (-s.lower + s.stride - 1) / s.stride;
    s.lower += steps * s.stride;
  }
  if (s.upper > extent - 1) {
    const std::int64_t excess = s.upper - (extent - 1);
    const std::int64_t steps = (excess + s.stride - 1) / s.stride;
    s.upper -= steps * s.stride;
  }
  if (s.is_empty()) return DimSection::empty();
  return s;
}

}  // namespace

Section access_section(const skeleton::AppSkeleton& app,
                       const skeleton::KernelSkeleton& kernel,
                       const skeleton::ArrayRef& ref) {
  const skeleton::ArrayDecl& decl = app.array(ref.array);
  if (ref.indirect || decl.sparse) {
    // Conservative rule: the referenced element set is data dependent, so
    // assume every element may be touched.
    Section s = Section::whole(ref.array, decl);
    s.exact = false;
    return s;
  }

  GROPHECY_EXPECTS(ref.subscripts.size() == decl.dims.size());
  auto dim_is_indirect = [&](std::size_t d) {
    for (int indirect_dim : ref.indirect_dims)
      if (static_cast<std::size_t>(indirect_dim) == d) return true;
    return false;
  };

  Section s;
  s.array = ref.array;
  s.exact = true;
  s.dims.reserve(decl.dims.size());
  std::vector<skeleton::LoopId> loops_seen;
  for (std::size_t d = 0; d < decl.dims.size(); ++d) {
    if (dim_is_indirect(d)) {
      // Data-dependent dimension: assume the full extent may be touched.
      s.dims.push_back(DimSection::range(0, decl.dims[d] - 1));
      s.exact = false;
      continue;
    }
    bool dim_exact = true;
    DimSection dim = subscript_range(ref.subscripts[d], kernel, dim_exact);
    dim = clamp_to_extent(dim, decl.dims[d]);
    s.dims.push_back(dim);
    s.exact = s.exact && dim_exact;
    // A loop variable appearing in more than one dimension correlates the
    // dimensions: the touched set is a diagonal slice, and the per-dim
    // cross product merely encloses it. Such sections must not claim
    // exactness — a MUST-analysis (read coverage by prior writes) relies
    // on it.
    for (const auto& [loop, coeff] : ref.subscripts[d].terms) {
      if (coeff == 0) continue;
      if (kernel.loops[static_cast<std::size_t>(loop)].trip_count() <= 1)
        continue;
      for (skeleton::LoopId seen : loops_seen)
        if (seen == loop) s.exact = false;
      loops_seen.push_back(loop);
    }
  }
  return s;
}

std::vector<AccessSection> kernel_accesses(
    const skeleton::AppSkeleton& app,
    const skeleton::KernelSkeleton& kernel) {
  std::vector<AccessSection> accesses;
  for (const skeleton::Statement& stmt : kernel.body) {
    for (const skeleton::ArrayRef& ref : stmt.refs) {
      AccessSection access;
      access.section = access_section(app, kernel, ref);
      access.kind = ref.kind;
      access.indirect = ref.has_indirection() || app.array(ref.array).sparse;
      accesses.push_back(std::move(access));
    }
  }
  return accesses;
}

}  // namespace grophecy::brs
