// Kernel memory footprints derived from section analysis.
//
// Both performance models need two views of a kernel's memory behaviour:
// the *unique* bytes it touches (union of sections — what caches can
// exploit and what must be resident) and the *dynamic* reference counts
// (every executed load/store — what the memory system must service).
#pragma once

#include <cstdint>

#include "skeleton/skeleton.h"

namespace grophecy::brs {

/// Aggregate memory/compute footprint of one kernel.
struct KernelFootprint {
  std::uint64_t unique_bytes_read = 0;     ///< Union of load sections.
  std::uint64_t unique_bytes_written = 0;  ///< Union of store sections.
  std::uint64_t dynamic_loads = 0;         ///< Executed load references.
  std::uint64_t dynamic_stores = 0;        ///< Executed store references.
  /// Executed loads whose address is data dependent (gathers): on a CPU
  /// these miss caches at some rate regardless of the footprint size.
  std::uint64_t dynamic_indirect_loads = 0;
  /// The subset of indirect loads that are *unamortized*: no affine
  /// dimension of the reference streams over a loop outside the hidden
  /// index's dependences, so every execution lands on a fresh random
  /// address (CFD's neighbor gathers). Amortized gathers (CSR SpMM's
  /// B[col[k], j], where j streams the gathered row) behave like streams.
  std::uint64_t dynamic_random_gathers = 0;
  std::uint64_t dynamic_load_bytes = 0;    ///< Loads weighted by elem size.
  std::uint64_t dynamic_store_bytes = 0;
  double flops = 0.0;
  double special_ops = 0.0;

  std::uint64_t unique_bytes() const {
    return unique_bytes_read + unique_bytes_written;
  }
  std::uint64_t dynamic_bytes() const {
    return dynamic_load_bytes + dynamic_store_bytes;
  }
};

/// Computes the footprint of `kernel` within `app`.
KernelFootprint kernel_footprint(const skeleton::AppSkeleton& app,
                                 const skeleton::KernelSkeleton& kernel);

}  // namespace grophecy::brs
