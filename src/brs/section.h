// Bounded Regular Sections (Havlak & Kennedy [5], used by GROPHECY §III-B).
//
// A BRS describes the set of array elements touched by a reference across
// all enclosing loops as, per dimension, a triple {lower, upper, stride}.
// The INTERSECT operator detects overlap between sections and the UNION
// operator merges them; combined with load/store classification this is
// enough to compute inter-kernel dependencies and the data that must cross
// the PCIe bus.
//
// The algebra here is *conservative*: every operation tracks an `exact`
// flag, and when a result cannot be represented precisely as a regular
// section the implementation returns an enclosing approximation with
// exact=false. Consumers must only rely on the guarantees stated per
// operation (e.g. `contains` never returns true unless containment is
// provable). For transfer planning, conservatism means transferring at
// least as much data as needed — matching the paper's sparse-array rule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "skeleton/skeleton.h"

namespace grophecy::brs {

/// One dimension of a section: the arithmetic sequence
/// {lower, lower+stride, ..., <= upper} (bounds inclusive).
struct DimSection {
  std::int64_t lower = 0;
  std::int64_t upper = -1;  ///< upper < lower encodes the empty section.
  std::int64_t stride = 1;  ///< >= 1.

  /// Single element {v}.
  static DimSection point(std::int64_t v);
  /// Range [lo, hi] inclusive with the given stride. Requires stride >= 1.
  static DimSection range(std::int64_t lo, std::int64_t hi,
                          std::int64_t stride = 1);
  static DimSection empty();

  bool is_empty() const { return upper < lower; }
  /// Number of elements in the sequence.
  std::int64_t count() const;
  /// True if `v` is a member of the sequence.
  bool contains_value(std::int64_t v) const;
};

bool operator==(const DimSection& a, const DimSection& b);

/// A multi-dimensional bounded regular section over one array.
struct Section {
  skeleton::ArrayId array = -1;
  std::vector<DimSection> dims;
  /// True when the section is forced to cover the entire array because the
  /// access is data dependent (sparse/indirect) — the paper's conservative
  /// rule (§III-B).
  bool whole_array = false;
  /// True when the section describes exactly the accessed element set;
  /// false when it is an enclosing approximation.
  bool exact = true;

  /// The full-array section for `decl` (used for sparse/indirect accesses).
  static Section whole(skeleton::ArrayId id, const skeleton::ArrayDecl& decl);

  bool is_empty() const;
  /// Number of elements described (product over dimensions; whole-array
  /// sections count every element).
  std::int64_t element_count() const;
  /// Bytes described, given the array declaration.
  std::uint64_t bytes(const skeleton::ArrayDecl& decl) const;

  std::string to_string() const;
};

/// INTERSECT on one dimension. Exact for equal strides and for strides
/// where one divides the other; otherwise returns an enclosing bounding
/// range (callers consult the Section-level exact flag).
DimSection intersect(const DimSection& a, const DimSection& b);

/// UNION on one dimension: the smallest regular section containing both.
/// Exactness is detectable via union_is_exact().
DimSection unite(const DimSection& a, const DimSection& b);

/// True if unite(a, b) contains no element outside a ∪ b.
bool union_is_exact(const DimSection& a, const DimSection& b);

/// True if every element of `inner` provably belongs to `outer`.
bool contains(const DimSection& outer, const DimSection& inner);

/// Section-level INTERSECT: empty optional when provably disjoint.
/// Requires both sections to refer to the same array.
std::optional<Section> intersect(const Section& a, const Section& b);

/// Section-level UNION: smallest regular section enclosing both; the result
/// is marked exact only when no over-approximation occurred.
/// Requires both sections to refer to the same array.
Section unite(const Section& a, const Section& b);

/// True if every element of `inner` provably belongs to `outer`.
bool contains(const Section& outer, const Section& inner);

/// True if the sections provably share at least one element... conservatively:
/// returns true whenever overlap cannot be ruled out.
bool may_overlap(const Section& a, const Section& b);

/// Conservative difference on one dimension: a list of disjoint sections
/// that together contain every element of `a` that is not in `b` (and
/// possibly some that are — the result over-approximates a \ b, which is
/// the safe direction for "still needs transferring"). Splitting is exact
/// when `b` is a contiguous (stride-compatible) range overlapping `a`.
std::vector<DimSection> subtract(const DimSection& a, const DimSection& b);

/// Conservative multi-dimensional difference: sections covering a \ b.
/// Exactness flags on the results are conservative. `b` must be exact for
/// any elements to be removed (subtracting an over-approximation could
/// drop elements that were never really in it). Returns {a} unchanged when
/// nothing can be safely removed; returns an empty vector when `a` is
/// provably contained in `b`.
std::vector<Section> subtract(const Section& a, const Section& b);

}  // namespace grophecy::brs
