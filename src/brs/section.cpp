#include "brs/section.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/contracts.h"

namespace grophecy::brs {

namespace {

/// Aligns `upper` down so that it is a member of the sequence.
DimSection normalized(DimSection s) {
  GROPHECY_EXPECTS(s.stride >= 1);
  if (s.is_empty()) return DimSection::empty();
  s.upper = s.lower + (s.upper - s.lower) / s.stride * s.stride;
  if (s.count() == 1) s.stride = 1;
  return s;
}

/// Extended gcd: returns g = gcd(a, b) and x, y with a*x + b*y = g.
std::int64_t ext_gcd(std::int64_t a, std::int64_t b, std::int64_t& x,
                     std::int64_t& y) {
  if (b == 0) {
    x = 1;
    y = 0;
    return a;
  }
  std::int64_t x1 = 0, y1 = 0;
  const std::int64_t g = ext_gcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

std::int64_t positive_mod(std::int64_t v, std::int64_t m) {
  const std::int64_t r = v % m;
  return r < 0 ? r + m : r;
}

}  // namespace

DimSection DimSection::point(std::int64_t v) { return {v, v, 1}; }

DimSection DimSection::range(std::int64_t lo, std::int64_t hi,
                             std::int64_t stride) {
  GROPHECY_EXPECTS(stride >= 1);
  return normalized({lo, hi, stride});
}

DimSection DimSection::empty() { return {0, -1, 1}; }

std::int64_t DimSection::count() const {
  if (is_empty()) return 0;
  return (upper - lower) / stride + 1;
}

bool DimSection::contains_value(std::int64_t v) const {
  if (is_empty() || v < lower || v > upper) return false;
  return (v - lower) % stride == 0;
}

bool operator==(const DimSection& a, const DimSection& b) {
  if (a.is_empty() && b.is_empty()) return true;
  return a.lower == b.lower && a.upper == b.upper && a.stride == b.stride;
}

DimSection intersect(const DimSection& a, const DimSection& b) {
  if (a.is_empty() || b.is_empty()) return DimSection::empty();
  // Intersection of two arithmetic progressions via CRT:
  // x = a.lower (mod a.stride), x = b.lower (mod b.stride).
  std::int64_t p = 0, q = 0;
  const std::int64_t g = ext_gcd(a.stride, b.stride, p, q);
  const std::int64_t diff = b.lower - a.lower;
  if (positive_mod(diff, g) != 0) return DimSection::empty();

  const std::int64_t lcm = a.stride / g * b.stride;
  // One solution: a.lower + a.stride * (diff/g * p mod (b.stride/g)).
  const std::int64_t m = b.stride / g;
  const std::int64_t k = positive_mod((diff / g) % m * (p % m), m);
  std::int64_t x0 = a.lower + a.stride * k;

  const std::int64_t lo = std::max(a.lower, b.lower);
  const std::int64_t hi = std::min(a.upper, b.upper);
  if (x0 < lo) x0 += (lo - x0 + lcm - 1) / lcm * lcm;
  if (x0 > hi) return DimSection::empty();
  return normalized({x0, hi, lcm});
}

DimSection unite(const DimSection& a, const DimSection& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  std::int64_t stride = std::gcd(a.stride, b.stride);
  stride = std::gcd(stride, std::abs(a.lower - b.lower));
  if (stride == 0) stride = 1;  // identical single points
  return normalized(
      {std::min(a.lower, b.lower), std::max(a.upper, b.upper), stride});
}

bool union_is_exact(const DimSection& a, const DimSection& b) {
  if (a.is_empty() || b.is_empty()) return true;
  const DimSection u = unite(a, b);
  const DimSection overlap = intersect(a, b);
  return u.count() == a.count() + b.count() - overlap.count();
}

bool contains(const DimSection& outer, const DimSection& inner) {
  if (inner.is_empty()) return true;
  if (outer.is_empty()) return false;
  if (inner.lower < outer.lower || inner.upper > outer.upper) return false;
  if ((inner.lower - outer.lower) % outer.stride != 0) return false;
  return inner.count() == 1 || inner.stride % outer.stride == 0;
}

Section Section::whole(skeleton::ArrayId id,
                       const skeleton::ArrayDecl& decl) {
  Section s;
  s.array = id;
  s.whole_array = true;
  s.exact = true;
  s.dims.reserve(decl.dims.size());
  for (std::int64_t extent : decl.dims)
    s.dims.push_back(DimSection::range(0, extent - 1));
  return s;
}

bool Section::is_empty() const {
  for (const DimSection& d : dims)
    if (d.is_empty()) return true;
  return dims.empty();
}

std::int64_t Section::element_count() const {
  if (is_empty()) return 0;
  std::int64_t count = 1;
  for (const DimSection& d : dims) count *= d.count();
  return count;
}

std::uint64_t Section::bytes(const skeleton::ArrayDecl& decl) const {
  return static_cast<std::uint64_t>(element_count()) *
         skeleton::elem_size_bytes(decl.type);
}

std::string Section::to_string() const {
  std::ostringstream oss;
  oss << "array#" << array;
  for (const DimSection& d : dims) {
    oss << '[' << d.lower << ':' << d.upper;
    if (d.stride != 1) oss << ':' << d.stride;
    oss << ']';
  }
  if (whole_array) oss << " (whole)";
  if (!exact) oss << " (approx)";
  return oss.str();
}

std::optional<Section> intersect(const Section& a, const Section& b) {
  GROPHECY_EXPECTS(a.array == b.array);
  GROPHECY_EXPECTS(a.dims.size() == b.dims.size());
  Section out;
  out.array = a.array;
  out.exact = a.exact && b.exact;
  out.dims.reserve(a.dims.size());
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    DimSection s = intersect(a.dims[d], b.dims[d]);
    if (s.is_empty()) return std::nullopt;
    out.dims.push_back(s);
  }
  return out;
}

Section unite(const Section& a, const Section& b) {
  GROPHECY_EXPECTS(a.array == b.array);
  GROPHECY_EXPECTS(a.dims.size() == b.dims.size());
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;

  // Containment: the union IS the containing section. (Returning the
  // per-dimension gcd union here instead would widen strides — e.g.
  // {0} ∪ {0,2,4,6} gcd-widens to [0..6] stride 1 — while inheriting the
  // container's exactness, which would falsely certify elements as
  // covered.)
  if (contains(a, b)) return a;
  if (contains(b, a)) return b;

  Section out;
  out.array = a.array;
  out.whole_array = a.whole_array || b.whole_array;
  out.dims.reserve(a.dims.size());
  for (std::size_t d = 0; d < a.dims.size(); ++d)
    out.dims.push_back(unite(a.dims[d], b.dims[d]));

  // Exactness: the sections differ in at most one dimension whose
  // one-dimensional union is itself exact.
  std::size_t differing = 0;
  bool differing_exact = true;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    if (!(a.dims[d] == b.dims[d])) {
      ++differing;
      differing_exact = union_is_exact(a.dims[d], b.dims[d]);
    }
  }
  out.exact = a.exact && b.exact && differing <= 1 && differing_exact;
  return out;
}

bool contains(const Section& outer, const Section& inner) {
  GROPHECY_EXPECTS(outer.array == inner.array);
  if (inner.is_empty()) return true;
  // An inexact outer section over-approximates its true element set, so
  // containment in it proves nothing.
  if (!outer.exact) return false;
  GROPHECY_EXPECTS(outer.dims.size() == inner.dims.size());
  for (std::size_t d = 0; d < outer.dims.size(); ++d)
    if (!contains(outer.dims[d], inner.dims[d])) return false;
  return true;
}

bool may_overlap(const Section& a, const Section& b) {
  if (a.array != b.array) return false;
  return intersect(a, b).has_value();
}

namespace {

/// One-dimensional carve: `keep` covers every element of `a` that might
/// lie outside `b`; `covered` is the part PROVABLY inside `b`.
struct DimSplit {
  std::vector<DimSection> keep;
  DimSection covered = DimSection::empty();
};

DimSplit split_dim(const DimSection& a, const DimSection& b) {
  DimSplit split;
  if (a.is_empty()) return split;
  if (b.is_empty()) {
    split.keep.push_back(a);
    return split;
  }
  const std::int64_t overlap_lo = std::max(a.lower, b.lower);
  const std::int64_t overlap_hi = std::min(a.upper, b.upper);
  if (overlap_lo > overlap_hi) {
    split.keep.push_back(a);
    return split;
  }
  // First/last members of `a` inside the overlap range.
  const std::int64_t first =
      a.lower + (overlap_lo - a.lower + a.stride - 1) / a.stride * a.stride;
  const std::int64_t last =
      a.lower + (overlap_hi - a.lower) / a.stride * a.stride;
  if (first > last) {
    split.keep.push_back(a);
    return split;
  }
  // Every a-member in [first, last] belongs to b iff the phases align and
  // b's stride divides a's.
  const bool all_members = a.stride % b.stride == 0 &&
                           positive_mod(first - b.lower, b.stride) == 0;
  const bool single = first == last && b.contains_value(first);
  if (!all_members && !single) {
    split.keep.push_back(a);
    return split;
  }
  split.covered = DimSection::range(first, last, a.stride);
  if (first > a.lower)
    split.keep.push_back(
        DimSection::range(a.lower, first - a.stride, a.stride));
  if (last < a.upper)
    split.keep.push_back(
        DimSection::range(last + a.stride, a.upper, a.stride));
  return split;
}

}  // namespace

std::vector<DimSection> subtract(const DimSection& a, const DimSection& b) {
  return split_dim(a, b).keep;
}

std::vector<Section> subtract(const Section& a, const Section& b) {
  GROPHECY_EXPECTS(a.array == b.array);
  if (a.is_empty()) return {};
  // Subtracting an over-approximation could drop elements that were never
  // really written; only exact sections may remove anything.
  if (!b.exact) return {a};
  GROPHECY_EXPECTS(a.dims.size() == b.dims.size());

  // Standard box carve: peel the parts of `a` that fall outside `b` along
  // each dimension; what survives every peel is provably inside `b`.
  std::vector<Section> pieces;
  Section current = a;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    const DimSplit split = split_dim(current.dims[d], b.dims[d]);
    for (const DimSection& kept : split.keep) {
      Section piece = current;
      piece.dims[d] = kept;
      piece.whole_array = false;
      pieces.push_back(std::move(piece));
    }
    if (split.covered.is_empty()) return pieces;
    current.dims[d] = split.covered;
  }
  // `current` is contained in `b`: dropped.
  return pieces;
}

}  // namespace grophecy::brs
