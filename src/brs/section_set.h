// A set of Bounded Regular Sections over one array.
//
// The data-usage analyzer maintains, per array, the set of sections already
// written on the GPU; a later read only forces a host-to-device transfer if
// it is NOT provably covered by that set (paper §III-B). SectionSet provides
// the conservative `covers` query plus the bounding UNION used to size
// transfers.
//
// Representation: members are kept sorted by their first-dimension lower
// bound and canonically merged — add() cascades exact unions until no pair
// of members can merge. Together with two monotone bounds (the widest
// first-dimension span and the largest first-dimension stride ever seen),
// the sorted order confines every query to a small candidate window found
// by binary search:
//
//   * add/covers probe O(log n + window) members instead of scanning all n;
//   * subtract_from skips members whose first-dimension box cannot touch
//     the query (such members provably leave every piece unchanged), and
//     for rank-1 arrays walks members and remaining pieces with one
//     monotone merge pass — O((n + pieces) log n) overall where the
//     previous linear-scan implementation was O(n · pieces).
//
// The conservative contract is unchanged: covers never answers true for an
// uncovered section, subtract_from over-approximates the uncovered
// remainder, and cascade merging only applies provably exact unions, so the
// set always represents exactly the union of the added sections.
// The pinned pre-rewrite implementation lives in
// brs/reference_section_set.h for the randomized property suite and the
// micro_brs regression bench.
//
// Instances are not thread-safe (covers/bounding_union memoize the union
// fold); the analyzer uses one set per array per walk.
#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <vector>

#include "brs/section.h"

namespace grophecy::brs {

/// Grows monotonically; all member sections must refer to the same array.
class SectionSet {
 public:
  bool empty() const { return sections_.empty(); }
  /// Members in canonical order (sorted by first-dimension lower bound).
  const std::vector<Section>& sections() const { return sections_; }

  /// Adds a section, cascading exact merges with existing members (keeps
  /// the set small without losing precision).
  void add(const Section& section);

  /// True only if `section` is PROVABLY contained in the set: either in a
  /// single member, or in the exact union of all members. Conservative:
  /// may return false for covered sections, never true for uncovered ones.
  bool covers(const Section& section) const;

  /// The smallest single regular section enclosing the whole set.
  /// Requires a non-empty set.
  Section bounding_union() const;

  /// Conservative difference: sections that together contain every element
  /// of `section` NOT provably covered by the set (possibly more — the
  /// safe direction). An empty result proves coverage.
  std::vector<Section> subtract_from(const Section& section) const;

 private:
  /// Indices of members whose first-dimension lower bound lies in
  /// [lo, hi] — the only members any operation keyed on that range can
  /// interact with.
  struct Window {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  Window candidate_window(std::int64_t lo, std::int64_t hi) const;

  /// The memoized union fold over the members (recomputed after add).
  const Section& fold() const;

  std::vector<Section> sections_;  ///< Sorted by dims[0].lower.
  /// Monotone upper bounds over every member ever inserted; they never
  /// shrink when members merge, so windows stay conservative.
  std::int64_t max_span_ = 0;    ///< max over members of dim0 upper-lower.
  std::int64_t max_stride_ = 1;  ///< max over members of dim0 stride.
  mutable std::optional<Section> fold_;  ///< Cache; invalidated by add().
};

}  // namespace grophecy::brs
