// A set of Bounded Regular Sections over one array.
//
// The data-usage analyzer maintains, per array, the set of sections already
// written on the GPU; a later read only forces a host-to-device transfer if
// it is NOT provably covered by that set (paper §III-B). SectionSet provides
// the conservative `covers` query plus the bounding UNION used to size
// transfers.
#pragma once

#include <vector>

#include "brs/section.h"

namespace grophecy::brs {

/// Grows monotonically; all member sections must refer to the same array.
class SectionSet {
 public:
  bool empty() const { return sections_.empty(); }
  const std::vector<Section>& sections() const { return sections_; }

  /// Adds a section, merging with an existing member when the union is
  /// exact (keeps the set small without losing precision).
  void add(const Section& section);

  /// True only if `section` is PROVABLY contained in the set: either in a
  /// single member, or in the exact union of all members. Conservative:
  /// may return false for covered sections, never true for uncovered ones.
  bool covers(const Section& section) const;

  /// The smallest single regular section enclosing the whole set.
  /// Requires a non-empty set.
  Section bounding_union() const;

  /// Conservative difference: sections that together contain every element
  /// of `section` NOT provably covered by the set (possibly more — the
  /// safe direction). Empty result == covers(section).
  std::vector<Section> subtract_from(const Section& section) const;

 private:
  std::vector<Section> sections_;
};

}  // namespace grophecy::brs
