// SM occupancy calculation.
//
// Determines how many thread blocks fit on one streaming multiprocessor
// given the block's thread, register, and shared-memory demands, and thus
// how many warps are available to hide memory latency. Used identically by
// the analytical model and the GPU simulator.
#pragma once

#include <cstdint>

#include "hw/machine.h"

namespace grophecy::gpumodel {

struct Occupancy {
  int blocks_per_sm = 0;
  int active_warps = 0;     ///< Warps resident per SM.
  double fraction = 0.0;    ///< active_warps / max warps.
  /// Which resource capped the block count: "threads", "blocks", "regs",
  /// or "smem".
  const char* limiter = "";
};

/// Computes occupancy for a block of `block_size` threads needing
/// `regs_per_thread` registers and `smem_per_block` bytes of shared memory.
/// Requires block_size in [warp_size, max_threads_per_block].
/// blocks_per_sm == 0 signals an infeasible variant (over-sized smem/regs).
Occupancy compute_occupancy(const hw::GpuSpec& gpu, int block_size,
                            std::uint32_t regs_per_thread,
                            std::uint32_t smem_per_block);

}  // namespace grophecy::gpumodel
