#include "gpumodel/explorer.h"

#include <algorithm>

#include "util/contracts.h"

namespace grophecy::gpumodel {

Explorer::Explorer(hw::GpuSpec gpu, ExplorerOptions options)
    : model_(std::move(gpu), options.model), options_(std::move(options)) {
  GROPHECY_EXPECTS(!options_.block_sizes.empty());
  GROPHECY_EXPECTS(!options_.unroll_factors.empty());
}

std::vector<ProjectedKernel> Explorer::explore(
    const skeleton::AppSkeleton& app, const skeleton::KernelSkeleton& kernel,
    int fuse_iterations) const {
  GROPHECY_EXPECTS(fuse_iterations >= 1);
  const hw::GpuSpec& gpu = model_.gpu();

  std::vector<int> seq_tiles{0};
  if (has_reduction_staging_candidates(app, kernel)) {
    for (int tile : options_.seq_tile_factors)
      if (tile > 0) seq_tiles.push_back(tile);
  }

  int parallel_levels = 0;
  for (const skeleton::Loop& loop : kernel.loops)
    if (loop.parallel) ++parallel_levels;
  const int max_swap =
      options_.explore_loop_interchange && parallel_levels >= 2 ? 1 : 0;

  std::vector<ProjectedKernel> projections;
  for (int block_size : options_.block_sizes) {
    if (block_size < gpu.warp_size || block_size > gpu.max_threads_per_block)
      continue;
    for (int unroll : options_.unroll_factors) {
      for (int seq_tile : seq_tiles) {
        for (int swapped = 0; swapped <= max_swap; ++swapped) {
          for (int staged = 0;
               staged <= (options_.explore_smem_staging ? 1 : 0);
               ++staged) {
            Variant variant;
            variant.block_size = block_size;
            variant.unroll = unroll;
            variant.smem_staging = staged != 0;
            variant.swap_parallel_loops = swapped != 0;
            variant.seq_tile = seq_tile;
            variant.fuse_iterations = fuse_iterations;

            ProjectedKernel projected;
            projected.variant = variant;
            projected.characteristics =
                characterize(app, kernel, variant, gpu);
            projected.time = model_.project(projected.characteristics);
            if (!projected.time.feasible) continue;
            projections.push_back(std::move(projected));
          }
        }
      }
    }
  }
  return projections;
}

ProjectedKernel Explorer::best(const skeleton::AppSkeleton& app,
                               const skeleton::KernelSkeleton& kernel,
                               int fuse_iterations) const {
  std::vector<ProjectedKernel> projections =
      explore(app, kernel, fuse_iterations);
  GROPHECY_EXPECTS(!projections.empty());
  auto fastest = std::min_element(
      projections.begin(), projections.end(),
      [](const ProjectedKernel& a, const ProjectedKernel& b) {
        return a.time.total_s < b.time.total_s;
      });
  return *fastest;
}

}  // namespace grophecy::gpumodel
