#include "gpumodel/explorer.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/contracts.h"

namespace grophecy::gpumodel {

namespace {

/// Projection memo capacity; beyond it the memo is flushed wholesale.
/// Distinct characteristics per kernel are few (variants frequently
/// collapse — unroll past the loop count, staging with nothing to stage),
/// so a flush only fires on sweeps over very many distinct kernels.
constexpr std::size_t kProjectionMemoCap = 512;

/// Flattens the model-relevant characteristics into an exact memo key.
/// Excludes kernel_name, Variant, syncs_per_thread, work_per_thread, and
/// redundant_work_fraction: project() never reads them (their effect is
/// already folded into the instruction/access counts by characterize()).
std::vector<double> projection_key(const KernelCharacteristics& kc) {
  std::vector<double> key;
  key.reserve(8 + kc.accesses.size() * 6);
  key.push_back(static_cast<double>(kc.num_blocks));
  key.push_back(static_cast<double>(kc.variant.block_size));
  key.push_back(static_cast<double>(kc.regs_per_thread));
  key.push_back(static_cast<double>(kc.smem_per_block_bytes));
  key.push_back(kc.flops_per_thread);
  key.push_back(kc.special_per_thread);
  key.push_back(kc.index_insts_per_thread);
  key.push_back(static_cast<double>(kc.accesses.size()));
  for (const MemAccess& access : kc.accesses) {
    key.push_back(static_cast<double>(static_cast<int>(access.cls)));
    key.push_back(access.is_load ? 1.0 : 0.0);
    key.push_back(static_cast<double>(access.stride_elems));
    key.push_back(static_cast<double>(access.elem_bytes));
    key.push_back(access.count_per_thread);
    key.push_back(access.gathered_stream ? 1.0 : 0.0);
  }
  return key;
}

/// Shared enumeration order of explore() and best(): identical sequences
/// keep best() equivalent to min_element over explore().
template <typename Fn>
void for_each_variant(const ExplorerOptions& options, const hw::GpuSpec& gpu,
                      const skeleton::AppSkeleton& app,
                      const skeleton::KernelSkeleton& kernel,
                      int fuse_iterations, Fn&& fn) {
  std::vector<int> seq_tiles{0};
  if (has_reduction_staging_candidates(app, kernel)) {
    for (int tile : options.seq_tile_factors)
      if (tile > 0) seq_tiles.push_back(tile);
  }

  int parallel_levels = 0;
  for (const skeleton::Loop& loop : kernel.loops)
    if (loop.parallel) ++parallel_levels;
  const int max_swap =
      options.explore_loop_interchange && parallel_levels >= 2 ? 1 : 0;

  for (int block_size : options.block_sizes) {
    if (block_size < gpu.warp_size || block_size > gpu.max_threads_per_block)
      continue;
    for (int unroll : options.unroll_factors) {
      for (int seq_tile : seq_tiles) {
        for (int swapped = 0; swapped <= max_swap; ++swapped) {
          for (int staged = 0;
               staged <= (options.explore_smem_staging ? 1 : 0);
               ++staged) {
            Variant variant;
            variant.block_size = block_size;
            variant.unroll = unroll;
            variant.smem_staging = staged != 0;
            variant.swap_parallel_loops = swapped != 0;
            variant.seq_tile = seq_tile;
            variant.fuse_iterations = fuse_iterations;
            fn(variant);
          }
        }
      }
    }
  }
}

}  // namespace

Explorer::Explorer(hw::GpuSpec gpu, ExplorerOptions options)
    : model_(std::move(gpu), options.model), options_(std::move(options)) {
  GROPHECY_EXPECTS(!options_.block_sizes.empty());
  GROPHECY_EXPECTS(!options_.unroll_factors.empty());
}

Occupancy Explorer::occupancy_for(const KernelCharacteristics& kc) const {
  // block_size <= max_threads_per_block (< 2^16), regs fit 16 bits, smem
  // fits 32: the triple packs losslessly into one word.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kc.variant.block_size) << 48) |
      (static_cast<std::uint64_t>(kc.regs_per_thread) << 32) |
      static_cast<std::uint64_t>(kc.smem_per_block_bytes);
  const auto it = occupancy_memo_.find(key);
  if (it != occupancy_memo_.end()) {
    ++stats_.occupancy_hits;
    return it->second;
  }
  ++stats_.occupancy_misses;
  const Occupancy occ =
      compute_occupancy(model_.gpu(), kc.variant.block_size,
                        kc.regs_per_thread, kc.smem_per_block_bytes);
  occupancy_memo_.emplace(key, occ);
  return occ;
}

const KernelTimeBreakdown* Explorer::find_projection(
    const std::vector<double>& key) const {
  for (const ProjectionMemoEntry& entry : projection_memo_)
    if (entry.key == key) return &entry.time;
  return nullptr;
}

void Explorer::remember_projection(std::vector<double> key,
                                   const KernelTimeBreakdown& time) const {
  if (projection_memo_.size() >= kProjectionMemoCap)
    projection_memo_.clear();
  projection_memo_.push_back(ProjectionMemoEntry{std::move(key), time});
}

std::vector<ProjectedKernel> Explorer::explore(
    const skeleton::AppSkeleton& app, const skeleton::KernelSkeleton& kernel,
    int fuse_iterations) const {
  GROPHECY_EXPECTS(fuse_iterations >= 1);
  const hw::GpuSpec& gpu = model_.gpu();

  std::vector<ProjectedKernel> projections;
  for_each_variant(
      options_, gpu, app, kernel, fuse_iterations,
      [&](const Variant& variant) {
        ++stats_.variants;
        ProjectedKernel projected;
        projected.variant = variant;
        projected.characteristics = characterize(app, kernel, variant, gpu);

        std::vector<double> key = projection_key(projected.characteristics);
        if (const KernelTimeBreakdown* cached = find_projection(key)) {
          ++stats_.projection_hits;
          projected.time = *cached;
        } else {
          ++stats_.projection_misses;
          projected.time = model_.project(
              projected.characteristics,
              occupancy_for(projected.characteristics));
          remember_projection(std::move(key), projected.time);
        }
        if (!projected.time.feasible) {
          ++stats_.infeasible;
          return;
        }
        projections.push_back(std::move(projected));
      });
  return projections;
}

ProjectedKernel Explorer::best(const skeleton::AppSkeleton& app,
                               const skeleton::KernelSkeleton& kernel,
                               int fuse_iterations) const {
  GROPHECY_EXPECTS(fuse_iterations >= 1);
  const hw::GpuSpec& gpu = model_.gpu();

  ProjectedKernel winner;
  double cutoff = std::numeric_limits<double>::infinity();
  bool found = false;
  for_each_variant(
      options_, gpu, app, kernel, fuse_iterations,
      [&](const Variant& variant) {
        ++stats_.variants;
        ProjectedKernel projected;
        projected.variant = variant;
        projected.characteristics = characterize(app, kernel, variant, gpu);

        std::vector<double> key = projection_key(projected.characteristics);
        if (const KernelTimeBreakdown* cached = find_projection(key)) {
          ++stats_.projection_hits;
          projected.time = *cached;
        } else {
          ++stats_.projection_misses;
          const auto time = model_.project_if_below(
              projected.characteristics,
              occupancy_for(projected.characteristics), cutoff);
          if (!time) {
            // A single bound already reached the incumbent: the variant
            // cannot win, and its partial projection is not memoizable.
            ++stats_.pruned;
            return;
          }
          projected.time = *time;
          remember_projection(std::move(key), projected.time);
        }
        if (!projected.time.feasible) {
          ++stats_.infeasible;
          return;
        }
        if (projected.time.total_s < cutoff) {
          cutoff = projected.time.total_s;
          winner = std::move(projected);
          found = true;
        }
      });
  GROPHECY_EXPECTS(found);
  return winner;
}

}  // namespace grophecy::gpumodel
