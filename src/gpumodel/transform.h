// GPU code transformations explored by GROPHECY (paper §II-C).
//
// GROPHECY "explores various code transformations, synthesizes performance
// characteristics for each transformation, and then supplies the
// characteristics to a GPU performance model". A Variant is one point in
// that transformation space; the Explorer enumerates them and keeps the
// best projected time. The axes modeled here are the ones the paper's
// workloads exercise:
//
//   * thread-block size (occupancy / latency-hiding tradeoff),
//   * parallel-loop interchange (which parallel loop maps to threadIdx.x —
//     the coalescing-critical choice; makes the skeleton's loop order
//     irrelevant),
//   * shared-memory staging of stencil reads (traffic vs occupancy),
//   * sequential-loop tiling with cooperative operand staging — the
//     classic GEMM transformation of the paper's Figure 1 (each k-tile of
//     A and B is loaded once per block instead of once per thread),
//   * inner-loop unrolling (instruction overhead),
//   * temporal fusion of consecutive outer iterations of a single-kernel
//     stencil app (launch overhead vs redundant halo work — the HotSpot
//     fusion the paper mentions in §IV-B).
#pragma once

#include <string>

namespace grophecy::gpumodel {

/// One candidate GPU implementation of a kernel.
struct Variant {
  int block_size = 256;       ///< Threads per block.
  /// Map the FIRST parallel loop to threadIdx.x instead of the last
  /// (parallel-loop interchange; only meaningful with >= 2 parallel loops).
  bool swap_parallel_loops = false;
  bool smem_staging = false;  ///< Stage stencil loads through shared memory.
  /// Tile size for the innermost sequential reduction loop, with operands
  /// staged cooperatively through shared memory (0 = off).
  int seq_tile = 0;
  int unroll = 1;             ///< Inner-loop unroll factor (>= 1).
  int fuse_iterations = 1;    ///< Outer iterations fused per launch (>= 1).

  std::string describe() const;
};

bool operator==(const Variant& a, const Variant& b);

}  // namespace grophecy::gpumodel
