#include "gpumodel/occupancy.h"

#include "hw/architecture.h"
#include "util/contracts.h"

namespace grophecy::gpumodel {

Occupancy compute_occupancy(const hw::GpuSpec& gpu, int block_size,
                            std::uint32_t regs_per_thread,
                            std::uint32_t smem_per_block) {
  GROPHECY_EXPECTS(block_size >= gpu.warp_size);
  GROPHECY_EXPECTS(block_size <= gpu.max_threads_per_block);

  // The allocation rules live with the architecture family (specs with an
  // unknown family fall back to the paper testbed's rules, which are the
  // shared base implementation anyway).
  const hw::Architecture* arch = hw::Architecture::try_of(gpu.family);
  const hw::Occupancy computed =
      (arch != nullptr ? *arch : hw::Architecture::of("tesla"))
          .occupancy(gpu, block_size, regs_per_thread, smem_per_block);

  Occupancy occ;
  occ.blocks_per_sm = computed.blocks_per_sm;
  occ.active_warps = computed.active_warps;
  occ.fraction = computed.fraction;
  occ.limiter = computed.limiter;
  return occ;
}

}  // namespace grophecy::gpumodel
