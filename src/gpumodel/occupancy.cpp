#include "gpumodel/occupancy.h"

#include <algorithm>

#include "util/contracts.h"

namespace grophecy::gpumodel {

Occupancy compute_occupancy(const hw::GpuSpec& gpu, int block_size,
                            std::uint32_t regs_per_thread,
                            std::uint32_t smem_per_block) {
  GROPHECY_EXPECTS(block_size >= gpu.warp_size);
  GROPHECY_EXPECTS(block_size <= gpu.max_threads_per_block);

  Occupancy occ;
  int limit = gpu.max_threads_per_sm / block_size;
  occ.limiter = "threads";

  if (gpu.max_blocks_per_sm < limit) {
    limit = gpu.max_blocks_per_sm;
    occ.limiter = "blocks";
  }
  if (regs_per_thread > 0) {
    const auto regs_per_block =
        regs_per_thread * static_cast<std::uint32_t>(block_size);
    const int by_regs = static_cast<int>(gpu.registers_per_sm / regs_per_block);
    if (by_regs < limit) {
      limit = by_regs;
      occ.limiter = "regs";
    }
  }
  if (smem_per_block > 0) {
    const int by_smem =
        static_cast<int>(gpu.shared_mem_per_sm_bytes / smem_per_block);
    if (by_smem < limit) {
      limit = by_smem;
      occ.limiter = "smem";
    }
  }

  occ.blocks_per_sm = std::max(limit, 0);
  const int warps_per_block =
      (block_size + gpu.warp_size - 1) / gpu.warp_size;
  occ.active_warps = occ.blocks_per_sm * warps_per_block;
  const int max_warps = gpu.max_threads_per_sm / gpu.warp_size;
  occ.fraction = static_cast<double>(occ.active_warps) / max_warps;
  return occ;
}

}  // namespace grophecy::gpumodel
