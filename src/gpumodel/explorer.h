// The transformation-space explorer.
//
// Enumerates Variants (block sizes x shared-memory staging x unrolling),
// characterizes each, projects each with the analytical model, and keeps
// the fastest feasible one — GROPHECY's "projects the best achievable
// performance and the transformations necessary to reach it" (§II-C).
// Iteration fusion is explored at the application level by the orchestrator
// because its payoff depends on the iteration count.
//
// The exploration loop is a projection hot path (sweeps call best() for
// every kernel of every job), so the Explorer memoizes the two pure
// sub-computations that repeat across variants — occupancy, keyed on the
// exact (block_size, regs, smem) triple, and whole projections, keyed on
// the model-relevant characteristics content — and best() prunes variants
// whose single-bound lower bound already matches or exceeds the incumbent
// (KernelTimeModel::project_if_below). Pruning cannot change the winner:
// total_s = max(bounds) + launch_s, so one bound at the cutoff proves the
// variant cannot beat it, and the incumbent only advances on strictly
// smaller totals (the same first-of-equals tie-break as min_element).
//
// Memoization makes Explorer stateful: instances are NOT thread-safe.
// Sweeps already give each worker its own engine (core/sweep.h).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gpumodel/kernel_model.h"
#include "gpumodel/occupancy.h"
#include "skeleton/skeleton.h"

namespace grophecy::gpumodel {

/// One explored point: a variant, its characteristics, and its projection.
struct ProjectedKernel {
  Variant variant;
  KernelCharacteristics characteristics;
  KernelTimeBreakdown time;  ///< Per launch.
};

/// The transformation space to search; defaults cover the axes the paper's
/// workloads exercise.
struct ExplorerOptions {
  std::vector<int> block_sizes{64, 128, 192, 256, 384, 512};
  bool explore_smem_staging = true;
  /// Try both thread mappings when the kernel has >= 2 parallel loops.
  bool explore_loop_interchange = true;
  /// Sequential-loop (reduction) tile sizes tried when the kernel has
  /// GEMM-like operand reads; 0 (untiled) is always tried too.
  std::vector<int> seq_tile_factors{8, 16, 32};
  std::vector<int> unroll_factors{1, 2, 4};
  /// Calibrated efficiencies of the underlying analytical model.
  ModelOptions model;
};

/// Lifetime counters of one Explorer's work, for tests and the micro_sim
/// bench. Monotonic; cheap to maintain.
struct ExploreStats {
  std::uint64_t variants = 0;          ///< Variants enumerated.
  std::uint64_t infeasible = 0;        ///< Rejected by occupancy.
  std::uint64_t pruned = 0;            ///< Dominance-pruned in best().
  std::uint64_t occupancy_hits = 0;
  std::uint64_t occupancy_misses = 0;
  std::uint64_t projection_hits = 0;
  std::uint64_t projection_misses = 0;
};

/// Enumerates and ranks kernel variants on a given GPU.
class Explorer {
 public:
  explicit Explorer(hw::GpuSpec gpu, ExplorerOptions options = {});

  /// Projects every feasible variant of `kernel` (fuse factor fixed).
  std::vector<ProjectedKernel> explore(const skeleton::AppSkeleton& app,
                                       const skeleton::KernelSkeleton& kernel,
                                       int fuse_iterations = 1) const;

  /// The fastest feasible variant. Requires at least one feasible variant
  /// (always true for valid kernels: plain block sizes are feasible).
  /// Equivalent to min_element over explore() but prunes dominated
  /// variants before paying for their full projection.
  ProjectedKernel best(const skeleton::AppSkeleton& app,
                       const skeleton::KernelSkeleton& kernel,
                       int fuse_iterations = 1) const;

  const ExplorerOptions& options() const { return options_; }
  const hw::GpuSpec& gpu() const { return model_.gpu(); }
  const KernelTimeModel& model() const { return model_; }
  const ExploreStats& stats() const { return stats_; }

 private:
  /// A fully projected characteristics record: key = the fields
  /// KernelTimeModel reads, flattened to doubles (ints <= 2^53 are exact).
  struct ProjectionMemoEntry {
    std::vector<double> key;
    KernelTimeBreakdown time;
  };

  Occupancy occupancy_for(const KernelCharacteristics& kc) const;
  const KernelTimeBreakdown* find_projection(
      const std::vector<double>& key) const;
  void remember_projection(std::vector<double> key,
                           const KernelTimeBreakdown& time) const;

  KernelTimeModel model_;
  ExplorerOptions options_;
  mutable ExploreStats stats_;
  mutable std::unordered_map<std::uint64_t, Occupancy> occupancy_memo_;
  mutable std::vector<ProjectionMemoEntry> projection_memo_;
};

}  // namespace grophecy::gpumodel
