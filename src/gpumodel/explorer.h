// The transformation-space explorer.
//
// Enumerates Variants (block sizes x shared-memory staging x unrolling),
// characterizes each, projects each with the analytical model, and keeps
// the fastest feasible one — GROPHECY's "projects the best achievable
// performance and the transformations necessary to reach it" (§II-C).
// Iteration fusion is explored at the application level by the orchestrator
// because its payoff depends on the iteration count.
#pragma once

#include <vector>

#include "gpumodel/kernel_model.h"
#include "skeleton/skeleton.h"

namespace grophecy::gpumodel {

/// One explored point: a variant, its characteristics, and its projection.
struct ProjectedKernel {
  Variant variant;
  KernelCharacteristics characteristics;
  KernelTimeBreakdown time;  ///< Per launch.
};

/// The transformation space to search; defaults cover the axes the paper's
/// workloads exercise.
struct ExplorerOptions {
  std::vector<int> block_sizes{64, 128, 192, 256, 384, 512};
  bool explore_smem_staging = true;
  /// Try both thread mappings when the kernel has >= 2 parallel loops.
  bool explore_loop_interchange = true;
  /// Sequential-loop (reduction) tile sizes tried when the kernel has
  /// GEMM-like operand reads; 0 (untiled) is always tried too.
  std::vector<int> seq_tile_factors{8, 16, 32};
  std::vector<int> unroll_factors{1, 2, 4};
  /// Calibrated efficiencies of the underlying analytical model.
  ModelOptions model;
};

/// Enumerates and ranks kernel variants on a given GPU.
class Explorer {
 public:
  explicit Explorer(hw::GpuSpec gpu, ExplorerOptions options = {});

  /// Projects every feasible variant of `kernel` (fuse factor fixed).
  std::vector<ProjectedKernel> explore(const skeleton::AppSkeleton& app,
                                       const skeleton::KernelSkeleton& kernel,
                                       int fuse_iterations = 1) const;

  /// The fastest feasible variant. Requires at least one feasible variant
  /// (always true for valid kernels: plain block sizes are feasible).
  ProjectedKernel best(const skeleton::AppSkeleton& app,
                       const skeleton::KernelSkeleton& kernel,
                       int fuse_iterations = 1) const;

  const ExplorerOptions& options() const { return options_; }
  const hw::GpuSpec& gpu() const { return model_.gpu(); }
  const KernelTimeModel& model() const { return model_; }

 private:
  KernelTimeModel model_;
  ExplorerOptions options_;
};

}  // namespace grophecy::gpumodel
