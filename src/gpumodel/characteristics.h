// Synthesis of per-variant kernel characteristics from a code skeleton.
//
// This is the bridge between GROPHECY's transformation engine and its GPU
// performance model: given a kernel skeleton and a Variant, `characterize`
// derives what the transformed CUDA kernel would look like to the hardware
// — thread/block geometry, per-thread work, classified memory accesses,
// shared-memory and register pressure. Both the analytical model
// (kernel_model.h) and the GPU simulator (src/sim) consume this structure,
// mirroring the paper's methodology: the hand-coded "real" kernel employs
// the same optimization strategies GROPHECY suggests (§IV-A).
#pragma once

#include <cstdint>
#include <vector>

#include "gpumodel/transform.h"
#include "hw/machine.h"
#include "skeleton/skeleton.h"

namespace grophecy::gpumodel {

/// How a warp's lanes spread over memory for one reference.
enum class AccessClass {
  kCoalesced,  ///< Adjacent threads touch adjacent elements.
  kStrided,    ///< Constant element stride > 1 between adjacent threads.
  kScattered,  ///< Data-dependent (gather/scatter); no coalescing.
  kUniform,    ///< All threads of a warp touch the same element.
};

const char* access_class_name(AccessClass cls);

/// One classified memory access stream of the transformed kernel.
struct MemAccess {
  AccessClass cls = AccessClass::kCoalesced;
  bool is_load = true;
  std::int64_t stride_elems = 1;   ///< Element stride between threads.
  std::uint32_t elem_bytes = 4;
  /// Dynamic executions per thread (sequential loop trips, after staging).
  double count_per_thread = 1.0;
  /// Coalesced within the warp but row-selected by a data-dependent index
  /// (CSR SpMM's B[col[k], j]): DRAM page locality is poor, so the stream
  /// sustains a fraction of streaming bandwidth.
  bool gathered_stream = false;
};

/// Everything the performance model needs to know about one kernel variant.
struct KernelCharacteristics {
  std::string kernel_name;
  Variant variant;

  std::int64_t total_threads = 0;  ///< One thread per parallel iteration.
  std::int64_t num_blocks = 0;
  /// Innermost executions mapped into each thread (sequential loops).
  double work_per_thread = 1.0;

  double flops_per_thread = 0.0;
  double special_per_thread = 0.0;
  /// Address/control instructions per thread (reduced by unrolling).
  double index_insts_per_thread = 0.0;

  std::vector<MemAccess> accesses;

  std::uint32_t smem_per_block_bytes = 0;
  std::uint32_t regs_per_thread = 0;
  /// Block-wide barriers executed per thread.
  int syncs_per_thread = 0;
  /// Fraction of redundant extra work introduced by the transformation
  /// (halo recompute under temporal fusion).
  double redundant_work_fraction = 0.0;

  /// Dynamic memory instructions per thread (sum of access counts).
  double mem_insts_per_thread() const;
};

/// Derives the characteristics of `kernel` transformed per `variant` on the
/// given GPU. Requires a validated app and variant.block_size >= warp size.
KernelCharacteristics characterize(const skeleton::AppSkeleton& app,
                                   const skeleton::KernelSkeleton& kernel,
                                   const Variant& variant,
                                   const hw::GpuSpec& gpu);

/// True if the kernel contains loads eligible for sequential-loop tiling
/// (a GEMM-like reduction: affine loads indexed by both a parallel loop
/// and a long sequential loop). The explorer only enumerates seq_tile
/// factors when this holds.
bool has_reduction_staging_candidates(const skeleton::AppSkeleton& app,
                                      const skeleton::KernelSkeleton& kernel);

}  // namespace grophecy::gpumodel
