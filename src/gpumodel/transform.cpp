#include "gpumodel/transform.h"

#include "util/table.h"

namespace grophecy::gpumodel {

std::string Variant::describe() const {
  std::string out = util::strfmt("block=%d", block_size);
  if (swap_parallel_loops) out += ", swapped";
  if (smem_staging) out += ", smem";
  if (seq_tile > 0) out += util::strfmt(", tile=%d", seq_tile);
  if (unroll > 1) out += util::strfmt(", unroll=%d", unroll);
  if (fuse_iterations > 1) out += util::strfmt(", fuse=%d", fuse_iterations);
  return out;
}

bool operator==(const Variant& a, const Variant& b) {
  return a.block_size == b.block_size &&
         a.swap_parallel_loops == b.swap_parallel_loops &&
         a.smem_staging == b.smem_staging &&
         a.seq_tile == b.seq_tile && a.unroll == b.unroll &&
         a.fuse_iterations == b.fuse_iterations;
}

}  // namespace grophecy::gpumodel
