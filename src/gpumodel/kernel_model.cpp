#include "gpumodel/kernel_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::gpumodel {

namespace {
/// Minimum memory transaction granularity for scattered lanes, bytes.
constexpr double kScatterGranularity = 32.0;

/// Overhead-scaled dynamic instructions per thread. The one formula the
/// analytical model and both simulators share; see kSpecialInstCost.
double insts_per_thread(const KernelCharacteristics& kc,
                        const hw::GpuSpec& gpu) {
  return (kc.flops_per_thread / gpu.flops_per_core_per_cycle +
          kc.special_per_thread * kSpecialInstCost +
          kc.index_insts_per_thread) *
         gpu.instruction_overhead;
}
}  // namespace

WarpAccessCost warp_access_cost(const MemAccess& access,
                                const hw::GpuSpec& gpu) {
  const double warp = gpu.warp_size;
  const double seg = gpu.transaction_bytes;
  WarpAccessCost cost;
  switch (access.cls) {
    case AccessClass::kCoalesced: {
      cost.transactions = std::ceil(warp * access.elem_bytes / seg);
      cost.bytes_moved = cost.transactions * seg;
      break;
    }
    case AccessClass::kStrided: {
      const double span =
          warp * static_cast<double>(std::abs(access.stride_elems)) *
          access.elem_bytes;
      cost.transactions = std::min(warp, std::ceil(span / seg));
      cost.bytes_moved = cost.transactions * seg;
      break;
    }
    case AccessClass::kScattered: {
      cost.transactions = warp;
      cost.bytes_moved =
          warp * std::max<double>(access.elem_bytes, kScatterGranularity);
      break;
    }
    case AccessClass::kUniform: {
      cost.transactions = 1.0;
      cost.bytes_moved = std::max<double>(access.elem_bytes,
                                          kScatterGranularity);
      break;
    }
  }
  return cost;
}

WarpDemands warp_demands(const KernelCharacteristics& kc,
                         const hw::GpuSpec& gpu) {
  WarpDemands wd;
  wd.warps_per_block =
      (kc.variant.block_size + gpu.warp_size - 1) / gpu.warp_size;
  wd.issue_cycles = static_cast<double>(gpu.warp_size) / gpu.cores_per_sm;
  wd.insts_per_thread = insts_per_thread(kc, gpu);
  wd.compute_cycles = wd.insts_per_thread * wd.issue_cycles;

  for (const MemAccess& access : kc.accesses) {
    const WarpAccessCost cost = warp_access_cost(access, gpu);
    double replay = 1.0;
    if (access.cls == AccessClass::kStrided ||
        access.cls == AccessClass::kScattered)
      replay = gpu.uncoalesced_replay_factor;
    double latency = gpu.dram_latency_cycles;
    if (access.cls == AccessClass::kScattered)
      latency *= gpu.indirect_access_penalty;
    // Gathered streams sustain only a fraction of streaming bandwidth;
    // charge the locality loss as extra effective demand.
    double locality = 1.0;
    if (access.gathered_stream) locality = 1.0 / gpu.gather_stream_fraction;
    wd.traffic_bytes +=
        access.count_per_thread * cost.bytes_moved * replay * locality;
    wd.mem_insts += access.count_per_thread;
    wd.latency_cycles += access.count_per_thread * latency;
  }
  return wd;
}

const WarpAccessCost& AccessCostCache::cost(const MemAccess& access,
                                            const hw::GpuSpec& gpu) {
  for (const Entry& entry : entries_) {
    if (entry.cls == access.cls && entry.stride_elems == access.stride_elems &&
        entry.elem_bytes == access.elem_bytes) {
      ++hits_;
      return entry.cost;
    }
  }
  ++misses_;
  entries_.push_back(Entry{access.cls, access.stride_elems, access.elem_bytes,
                           warp_access_cost(access, gpu)});
  return entries_.back().cost;
}

KernelTimeModel::KernelTimeModel(hw::GpuSpec gpu, ModelOptions options)
    : gpu_(std::move(gpu)), options_(options) {
  GROPHECY_EXPECTS(gpu_.num_sms > 0);
  GROPHECY_EXPECTS(gpu_.mem_bandwidth_gbps > 0.0);
  GROPHECY_EXPECTS(options_.streaming_bw_efficiency > 0.0 &&
                   options_.streaming_bw_efficiency <= 1.0);
  GROPHECY_EXPECTS(options_.gathered_stream_efficiency > 0.0 &&
                   options_.gathered_stream_efficiency <= 1.0);
}

KernelTimeBreakdown KernelTimeModel::project(
    const KernelCharacteristics& kc) const {
  return project(kc, compute_occupancy(gpu_, kc.variant.block_size,
                                       kc.regs_per_thread,
                                       kc.smem_per_block_bytes));
}

KernelTimeBreakdown KernelTimeModel::project(const KernelCharacteristics& kc,
                                             const Occupancy& occ) const {
  // No finite cutoff can prune (each bound is finite), so the projection
  // always completes.
  return *project_if_below(kc, occ,
                           std::numeric_limits<double>::infinity());
}

std::optional<KernelTimeBreakdown> KernelTimeModel::project_if_below(
    const KernelCharacteristics& kc, const Occupancy& occ,
    double cutoff_s) const {
  KernelTimeBreakdown out;
  out.occupancy = occ;
  if (out.occupancy.blocks_per_sm == 0) {
    out.feasible = false;
    out.total_s = std::numeric_limits<double>::infinity();
    return out;
  }

  out.launch_s = gpu_.kernel_launch_overhead_s;

  const double warps_per_block =
      std::ceil(static_cast<double>(kc.variant.block_size) / gpu_.warp_size);
  const double warps_total =
      static_cast<double>(kc.num_blocks) * warps_per_block;

  // Compute bound: the full synthesized instruction stream — arithmetic at
  // MAD throughput, specials on the SFUs, address/control instructions —
  // scaled by the architecture's calibrated instruction overhead. The
  // model knows this mix (it synthesized it), so the formulation matches
  // the simulator's (gpumodel::warp_demands); compute-bound kernels
  // therefore predict accurately, and the structural model-vs-machine gap
  // lives in the memory system.
  const double clock_hz = gpu_.core_clock_ghz * 1e9;
  const double issue_cycles =
      static_cast<double>(gpu_.warp_size) / gpu_.cores_per_sm;
  out.compute_s = warps_total * insts_per_thread(kc, gpu_) * issue_cycles /
                  (gpu_.num_sms * clock_hz);
  // total_s = max(bounds) + launch_s, so any bound alone lower-bounds the
  // total: once one reaches the cutoff the variant cannot win.
  if (out.compute_s + out.launch_s >= cutoff_s) return std::nullopt;

  // Bandwidth bound: every access stream priced by coalescing math at the
  // calibrated sustainable bandwidth, with gathered streams derated for
  // their poor DRAM page locality.
  const double stream_bw = gpu_.mem_bandwidth_gbps * util::kGB *
                           options_.streaming_bw_efficiency;
  double warp_mem_insts = 0.0;
  out.bandwidth_s = 0.0;
  for (const MemAccess& access : kc.accesses) {
    const WarpAccessCost& cost = access_costs_.cost(access, gpu_);
    const double stream_eff =
        access.gathered_stream ? options_.gathered_stream_efficiency : 1.0;
    out.bandwidth_s += access.count_per_thread * warps_total *
                       cost.bytes_moved / (stream_bw * stream_eff);
    warp_mem_insts += access.count_per_thread * warps_total;
  }
  if (out.bandwidth_s + out.launch_s >= cutoff_s) return std::nullopt;

  // Latency bound: each warp-level memory instruction exposes the DRAM
  // latency; resident warps overlap their stalls.
  const double overlap =
      std::max(1, out.occupancy.active_warps);
  out.latency_s = warp_mem_insts * gpu_.dram_latency_cycles /
                  (gpu_.num_sms * overlap * clock_hz);
  if (out.latency_s + out.launch_s >= cutoff_s) return std::nullopt;

  out.sync_s = 0.0;  // the optimistic model assumes barriers are free

  double body = out.compute_s;
  out.bound = "compute";
  if (out.bandwidth_s > body) {
    body = out.bandwidth_s;
    out.bound = "bandwidth";
  }
  if (out.latency_s > body) {
    body = out.latency_s;
    out.bound = "latency";
  }
  out.total_s = body + out.launch_s;
  return out;
}

}  // namespace grophecy::gpumodel
