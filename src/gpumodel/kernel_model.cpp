#include "gpumodel/kernel_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::gpumodel {

namespace {
/// Minimum memory transaction granularity for scattered lanes, bytes.
constexpr double kScatterGranularity = 32.0;
/// Instruction slots consumed by one special-function op relative to a MAD
/// (must match the simulator's cost so compute-bound kernels predict well).
constexpr double kSpecialInstCost = 4.0;
}  // namespace

WarpAccessCost warp_access_cost(const MemAccess& access,
                                const hw::GpuSpec& gpu) {
  const double warp = gpu.warp_size;
  const double seg = gpu.transaction_bytes;
  WarpAccessCost cost;
  switch (access.cls) {
    case AccessClass::kCoalesced: {
      cost.transactions = std::ceil(warp * access.elem_bytes / seg);
      cost.bytes_moved = cost.transactions * seg;
      break;
    }
    case AccessClass::kStrided: {
      const double span =
          warp * static_cast<double>(std::abs(access.stride_elems)) *
          access.elem_bytes;
      cost.transactions = std::min(warp, std::ceil(span / seg));
      cost.bytes_moved = cost.transactions * seg;
      break;
    }
    case AccessClass::kScattered: {
      cost.transactions = warp;
      cost.bytes_moved =
          warp * std::max<double>(access.elem_bytes, kScatterGranularity);
      break;
    }
    case AccessClass::kUniform: {
      cost.transactions = 1.0;
      cost.bytes_moved = std::max<double>(access.elem_bytes,
                                          kScatterGranularity);
      break;
    }
  }
  return cost;
}

KernelTimeModel::KernelTimeModel(hw::GpuSpec gpu, ModelOptions options)
    : gpu_(std::move(gpu)), options_(options) {
  GROPHECY_EXPECTS(gpu_.num_sms > 0);
  GROPHECY_EXPECTS(gpu_.mem_bandwidth_gbps > 0.0);
  GROPHECY_EXPECTS(options_.streaming_bw_efficiency > 0.0 &&
                   options_.streaming_bw_efficiency <= 1.0);
  GROPHECY_EXPECTS(options_.gathered_stream_efficiency > 0.0 &&
                   options_.gathered_stream_efficiency <= 1.0);
}

KernelTimeBreakdown KernelTimeModel::project(
    const KernelCharacteristics& kc) const {
  KernelTimeBreakdown out;
  out.occupancy = compute_occupancy(gpu_, kc.variant.block_size,
                                    kc.regs_per_thread,
                                    kc.smem_per_block_bytes);
  if (out.occupancy.blocks_per_sm == 0) {
    out.feasible = false;
    out.total_s = std::numeric_limits<double>::infinity();
    return out;
  }

  const double warps_per_block =
      std::ceil(static_cast<double>(kc.variant.block_size) / gpu_.warp_size);
  const double warps_total =
      static_cast<double>(kc.num_blocks) * warps_per_block;

  // Compute bound: the full synthesized instruction stream — arithmetic at
  // MAD throughput, specials on the SFUs, address/control instructions —
  // scaled by the architecture's calibrated instruction overhead. The
  // model knows this mix (it synthesized it), so the formulation matches
  // the simulator's; compute-bound kernels therefore predict accurately,
  // and the structural model-vs-machine gap lives in the memory system.
  const double clock_hz = gpu_.core_clock_ghz * 1e9;
  const double issue_cycles =
      static_cast<double>(gpu_.warp_size) / gpu_.cores_per_sm;
  const double insts_per_thread =
      (kc.flops_per_thread / gpu_.flops_per_core_per_cycle +
       kc.special_per_thread * kSpecialInstCost +
       kc.index_insts_per_thread) *
      gpu_.instruction_overhead;
  out.compute_s = warps_total * insts_per_thread * issue_cycles /
                  (gpu_.num_sms * clock_hz);

  // Bandwidth bound: every access stream priced by coalescing math at the
  // calibrated sustainable bandwidth, with gathered streams derated for
  // their poor DRAM page locality.
  const double stream_bw = gpu_.mem_bandwidth_gbps * util::kGB *
                           options_.streaming_bw_efficiency;
  double warp_mem_insts = 0.0;
  out.bandwidth_s = 0.0;
  for (const MemAccess& access : kc.accesses) {
    const WarpAccessCost cost = warp_access_cost(access, gpu_);
    const double stream_eff =
        access.gathered_stream ? options_.gathered_stream_efficiency : 1.0;
    out.bandwidth_s += access.count_per_thread * warps_total *
                       cost.bytes_moved / (stream_bw * stream_eff);
    warp_mem_insts += access.count_per_thread * warps_total;
  }

  // Latency bound: each warp-level memory instruction exposes the DRAM
  // latency; resident warps overlap their stalls.
  const double overlap =
      std::max(1, out.occupancy.active_warps);
  out.latency_s = warp_mem_insts * gpu_.dram_latency_cycles /
                  (gpu_.num_sms * overlap * clock_hz);

  out.sync_s = 0.0;  // the optimistic model assumes barriers are free
  out.launch_s = gpu_.kernel_launch_overhead_s;

  double body = out.compute_s;
  out.bound = "compute";
  if (out.bandwidth_s > body) {
    body = out.bandwidth_s;
    out.bound = "bandwidth";
  }
  if (out.latency_s > body) {
    body = out.latency_s;
    out.bound = "latency";
  }
  out.total_s = body + out.launch_s;
  return out;
}

}  // namespace grophecy::gpumodel
