// The analytical GPU kernel-time model (GROPHECY's performance model).
//
// Projects the *best achievable* execution time of a transformed kernel
// from its characteristics: the maximum of a compute-throughput bound, a
// DRAM-bandwidth bound (at peak bandwidth), and a latency-exposure bound
// (warp parallelism from occupancy), plus the kernel launch overhead.
//
// The model knows what a model can know: coalescing rules, occupancy, a
// calibrated streaming-bandwidth efficiency, and a DRAM-locality derating
// for data-dependent gathered streams. It deliberately does NOT model what
// GROPHECY could not know without running the code: transaction replay on
// uncoalesced warps, exposed latency of pointer-chasing gathers, wave
// quantization, instruction overhead, barrier costs. The GPU simulator
// (src/sim) prices those too; the gap between the two is the paper's
// kernel prediction error (Fig. 6 — small for regular kernels like SRAD,
// ~30% for the irregular CFD).
#pragma once

#include "gpumodel/characteristics.h"
#include "gpumodel/occupancy.h"
#include "hw/machine.h"

namespace grophecy::gpumodel {

/// Warp-level cost of one execution of a memory access: how many
/// transactions the warp issues and how many bytes actually move.
struct WarpAccessCost {
  double transactions = 1.0;
  double bytes_moved = 0.0;
};

/// Coalescing math shared by the model and the simulator. Scattered
/// accesses issue one transaction per lane at minimum-granularity (32 B);
/// strided accesses span stride*warp elements rounded to full segments.
WarpAccessCost warp_access_cost(const MemAccess& access,
                                const hw::GpuSpec& gpu);

/// Timing breakdown of one kernel launch.
struct KernelTimeBreakdown {
  double compute_s = 0.0;    ///< FLOP + SFU throughput bound.
  double bandwidth_s = 0.0;  ///< DRAM traffic at peak bandwidth.
  double latency_s = 0.0;    ///< Exposed memory latency after warp overlap.
  double sync_s = 0.0;       ///< Barrier cost (analytical model: 0).
  double launch_s = 0.0;     ///< Driver + dispatch overhead.
  double total_s = 0.0;
  Occupancy occupancy;
  bool feasible = true;      ///< False when the variant cannot launch.

  /// Which bound dominates: "compute", "bandwidth", or "latency".
  const char* bound = "";
};

/// Tunables of the analytical model (not of the device): calibrated
/// efficiencies a model builder derives once per architecture family.
struct ModelOptions {
  /// Fraction of peak DRAM bandwidth assumed sustainable by streaming
  /// kernels (GROPHECY-style models calibrate this with microbenchmarks).
  double streaming_bw_efficiency = 0.75;
  /// Additional bandwidth derating assumed for gathered streams (poor DRAM
  /// page locality).
  double gathered_stream_efficiency = 0.32;
};

/// Analytical model of a GpuSpec.
class KernelTimeModel {
 public:
  explicit KernelTimeModel(hw::GpuSpec gpu, ModelOptions options = {});

  /// Projects one launch of the characterized kernel variant.
  KernelTimeBreakdown project(const KernelCharacteristics& kc) const;

  const hw::GpuSpec& gpu() const { return gpu_; }
  const ModelOptions& options() const { return options_; }

 private:
  hw::GpuSpec gpu_;
  ModelOptions options_;
};

}  // namespace grophecy::gpumodel
