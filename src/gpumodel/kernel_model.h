// The analytical GPU kernel-time model (GROPHECY's performance model).
//
// Projects the *best achievable* execution time of a transformed kernel
// from its characteristics: the maximum of a compute-throughput bound, a
// DRAM-bandwidth bound (at peak bandwidth), and a latency-exposure bound
// (warp parallelism from occupancy), plus the kernel launch overhead.
//
// The model knows what a model can know: coalescing rules, occupancy, a
// calibrated streaming-bandwidth efficiency, and a DRAM-locality derating
// for data-dependent gathered streams. It deliberately does NOT model what
// GROPHECY could not know without running the code: transaction replay on
// uncoalesced warps, exposed latency of pointer-chasing gathers, wave
// quantization, instruction overhead, barrier costs. The GPU simulator
// (src/sim) prices those too; the gap between the two is the paper's
// kernel prediction error (Fig. 6 — small for regular kernels like SRAD,
// ~30% for the irregular CFD).
#pragma once

#include <optional>
#include <vector>

#include "gpumodel/characteristics.h"
#include "gpumodel/occupancy.h"
#include "hw/machine.h"

namespace grophecy::gpumodel {

/// Instruction slots consumed by one special-function op relative to a MAD.
/// One definition shared by the analytical model and both simulators:
/// compute-bound kernels predict well only because all three price the
/// instruction stream identically.
inline constexpr double kSpecialInstCost = 4.0;

/// Warp-level cost of one execution of a memory access: how many
/// transactions the warp issues and how many bytes actually move.
struct WarpAccessCost {
  double transactions = 1.0;
  double bytes_moved = 0.0;
};

/// Coalescing math shared by the model and the simulator. Scattered
/// accesses issue one transaction per lane at minimum-granularity (32 B);
/// strided accesses span stride*warp elements rounded to full segments.
WarpAccessCost warp_access_cost(const MemAccess& access,
                                const hw::GpuSpec& gpu);

/// Per-warp demands of one kernel variant on one device: the instruction
/// stream, the effective DRAM traffic (replay + locality), and the exposed
/// memory latency. This is the single source of the per-warp math consumed
/// by the wave simulator, the event simulator, and (for the instruction
/// stream) the analytical model — the numbers all three must agree on.
struct WarpDemands {
  int warps_per_block = 0;
  /// SM issue cycles per warp instruction (warp_size / cores_per_sm).
  double issue_cycles = 0.0;
  /// Overhead-scaled dynamic instructions per thread (MADs + specials at
  /// kSpecialInstCost + addressing/control).
  double insts_per_thread = 0.0;
  /// Issue cycles per warp: insts_per_thread * issue_cycles.
  double compute_cycles = 0.0;
  /// Effective DRAM bytes per warp after replay and locality derating.
  double traffic_bytes = 0.0;
  /// Warp-level memory instructions per warp (dynamic).
  double mem_insts = 0.0;
  /// Exposed DRAM latency cycles per warp before warp overlap.
  double latency_cycles = 0.0;
};

/// Derives the per-warp demands of `kc` on `gpu`. Pure; identical floating
/// point expression order as the historical in-simulator math, so existing
/// simulator outputs are bit-for-bit unchanged.
WarpDemands warp_demands(const KernelCharacteristics& kc,
                         const hw::GpuSpec& gpu);

/// Memo of warp_access_cost results for one fixed GpuSpec, keyed by the
/// fields the coalescing math reads (class, stride, element size). The
/// access-shape population of an exploration is tiny, so a flat vector
/// beats a hash map. Not thread-safe; owners (KernelTimeModel, Explorer)
/// are one-per-thread objects.
class AccessCostCache {
 public:
  const WarpAccessCost& cost(const MemAccess& access, const hw::GpuSpec& gpu);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    AccessClass cls;
    std::int64_t stride_elems;
    std::uint32_t elem_bytes;
    WarpAccessCost cost;
  };
  std::vector<Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Timing breakdown of one kernel launch.
struct KernelTimeBreakdown {
  double compute_s = 0.0;    ///< FLOP + SFU throughput bound.
  double bandwidth_s = 0.0;  ///< DRAM traffic at peak bandwidth.
  double latency_s = 0.0;    ///< Exposed memory latency after warp overlap.
  double sync_s = 0.0;       ///< Barrier cost (analytical model: 0).
  double launch_s = 0.0;     ///< Driver + dispatch overhead.
  double total_s = 0.0;
  Occupancy occupancy;
  bool feasible = true;      ///< False when the variant cannot launch.

  /// Which bound dominates: "compute", "bandwidth", or "latency".
  const char* bound = "";
};

/// Tunables of the analytical model (not of the device): calibrated
/// efficiencies a model builder derives once per architecture family.
struct ModelOptions {
  /// Fraction of peak DRAM bandwidth assumed sustainable by streaming
  /// kernels (GROPHECY-style models calibrate this with microbenchmarks).
  double streaming_bw_efficiency = 0.75;
  /// Additional bandwidth derating assumed for gathered streams (poor DRAM
  /// page locality).
  double gathered_stream_efficiency = 0.32;
};

/// Analytical model of a GpuSpec. Not thread-safe (it memoizes access
/// costs internally); use one instance per thread, as the sweep engine's
/// per-job projection engines already do.
class KernelTimeModel {
 public:
  explicit KernelTimeModel(hw::GpuSpec gpu, ModelOptions options = {});

  /// Projects one launch of the characterized kernel variant.
  KernelTimeBreakdown project(const KernelCharacteristics& kc) const;

  /// Same projection with the occupancy precomputed (the explorer memoizes
  /// it across variants sharing a (block_size, regs, smem) footprint).
  /// `occ` must equal compute_occupancy for kc's geometry.
  KernelTimeBreakdown project(const KernelCharacteristics& kc,
                              const Occupancy& occ) const;

  /// Bounded projection for branch-and-bound exploration: returns
  /// std::nullopt as soon as any single lower bound already proves
  /// total_s >= cutoff_s (each bound is a lower bound on the total, so a
  /// pruned variant can never beat an incumbent with total < cutoff_s).
  /// Infeasible variants return a breakdown with feasible == false, like
  /// project().
  std::optional<KernelTimeBreakdown> project_if_below(
      const KernelCharacteristics& kc, const Occupancy& occ,
      double cutoff_s) const;

  const hw::GpuSpec& gpu() const { return gpu_; }
  const ModelOptions& options() const { return options_; }
  const AccessCostCache& access_cost_cache() const { return access_costs_; }

 private:
  hw::GpuSpec gpu_;
  ModelOptions options_;
  mutable AccessCostCache access_costs_;
};

}  // namespace grophecy::gpumodel
