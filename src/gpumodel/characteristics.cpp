#include "gpumodel/characteristics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "util/contracts.h"

namespace grophecy::gpumodel {

namespace {

using skeleton::AffineExpr;
using skeleton::ArrayRef;
using skeleton::KernelSkeleton;
using skeleton::LoopId;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// The loop whose index maps to threadIdx.x: by default the innermost
/// parallel loop; under parallel-loop interchange the outermost one.
LoopId thread_loop(const KernelSkeleton& kernel, bool swap) {
  LoopId tloop = -1;
  for (std::size_t i = 0; i < kernel.loops.size(); ++i) {
    if (!kernel.loops[i].parallel) continue;
    tloop = static_cast<LoopId>(i);
    if (swap) break;  // first parallel loop wins
  }
  return tloop;
}

/// Element stride between adjacent threads for an affine reference:
/// the coefficient of the thread loop in the row-major linearized address.
std::int64_t linearized_thread_stride(const ArrayRef& ref,
                                      const skeleton::ArrayDecl& decl,
                                      LoopId tloop) {
  std::int64_t stride = 0;
  std::int64_t inner_extent = 1;
  for (std::size_t d = decl.dims.size(); d-- > 0;) {
    stride += ref.subscripts[d].coefficient(tloop) * inner_extent;
    inner_extent *= decl.dims[d];
  }
  return stride;
}

/// True if two affine expressions differ only in their constant term.
bool differ_by_constant(const AffineExpr& a, const AffineExpr& b) {
  if (a.terms.size() != b.terms.size()) return false;
  for (const auto& [loop, coeff] : a.terms)
    if (b.coefficient(loop) != coeff) return false;
  return true;
}

/// A stencil group: affine loads of one array whose subscripts differ only
/// by constants (the 3x3 neighborhood gathers of HotSpot/SRAD).
struct StencilGroup {
  skeleton::ArrayId array = -1;
  std::vector<const ArrayRef*> refs;
  /// Max |constant shift| relative to the first ref, per array dimension.
  std::vector<std::int64_t> radius;
};

std::vector<StencilGroup> find_stencil_groups(
    const skeleton::AppSkeleton& app, const KernelSkeleton& kernel) {
  std::map<skeleton::ArrayId, std::vector<const ArrayRef*>> loads_by_array;
  for (const skeleton::Statement& stmt : kernel.body)
    for (const ArrayRef& ref : stmt.refs)
      if (ref.kind == skeleton::RefKind::kLoad && !ref.has_indirection() &&
          !app.array(ref.array).sparse)
        loads_by_array[ref.array].push_back(&ref);

  std::vector<StencilGroup> groups;
  for (auto& [array_id, refs] : loads_by_array) {
    if (refs.size() < 3) continue;  // staging only pays off for >= 3 taps
    const ArrayRef* base = refs.front();
    bool uniform_shape = true;
    for (const ArrayRef* ref : refs) {
      for (std::size_t d = 0; d < base->subscripts.size(); ++d) {
        if (!differ_by_constant(base->subscripts[d], ref->subscripts[d])) {
          uniform_shape = false;
          break;
        }
      }
      if (!uniform_shape) break;
    }
    if (!uniform_shape) continue;

    StencilGroup group;
    group.array = array_id;
    group.refs = refs;
    group.radius.assign(base->subscripts.size(), 0);
    for (const ArrayRef* ref : refs)
      for (std::size_t d = 0; d < base->subscripts.size(); ++d)
        group.radius[d] =
            std::max(group.radius[d],
                     std::abs(ref->subscripts[d].constant -
                              base->subscripts[d].constant));
    groups.push_back(std::move(group));
  }
  return groups;
}

AccessClass classify_stride(std::int64_t stride) {
  if (stride == 0) return AccessClass::kUniform;
  if (std::abs(stride) == 1) return AccessClass::kCoalesced;
  return AccessClass::kStrided;
}

/// The reduction loop eligible for sequential tiling: the last sequential
/// loop in the nest with a meaningful trip count.
LoopId reduction_loop(const KernelSkeleton& kernel) {
  for (std::size_t i = kernel.loops.size(); i-- > 0;) {
    const skeleton::Loop& loop = kernel.loops[i];
    if (!loop.parallel && loop.trip_count() >= 8)
      return static_cast<LoopId>(i);
  }
  return -1;
}

/// True if `ref` is a GEMM-style operand read: affine, indexed by both the
/// reduction loop and at least one parallel loop — so a block's worth of
/// its elements can be staged cooperatively once per tile step.
bool eligible_for_seq_tiling(const ArrayRef& ref,
                             const KernelSkeleton& kernel, LoopId rloop) {
  if (ref.kind != skeleton::RefKind::kLoad || ref.has_indirection())
    return false;
  bool uses_reduction = false;
  bool uses_parallel = false;
  for (const skeleton::AffineExpr& expr : ref.subscripts) {
    for (const auto& [loop, coeff] : expr.terms) {
      if (coeff == 0) continue;
      if (loop == rloop) uses_reduction = true;
      if (kernel.loops[static_cast<std::size_t>(loop)].parallel)
        uses_parallel = true;
    }
  }
  return uses_reduction && uses_parallel;
}

}  // namespace

bool has_reduction_staging_candidates(const skeleton::AppSkeleton& app,
                                      const skeleton::KernelSkeleton& kernel) {
  (void)app;
  const LoopId rloop = reduction_loop(kernel);
  if (rloop < 0) return false;
  for (const skeleton::Statement& stmt : kernel.body)
    for (const ArrayRef& ref : stmt.refs)
      if (eligible_for_seq_tiling(ref, kernel, rloop)) return true;
  return false;
}

const char* access_class_name(AccessClass cls) {
  switch (cls) {
    case AccessClass::kCoalesced: return "coalesced";
    case AccessClass::kStrided: return "strided";
    case AccessClass::kScattered: return "scattered";
    case AccessClass::kUniform: return "uniform";
  }
  return "?";
}

double KernelCharacteristics::mem_insts_per_thread() const {
  double total = 0.0;
  for (const MemAccess& access : accesses) total += access.count_per_thread;
  return total;
}

KernelCharacteristics characterize(const skeleton::AppSkeleton& app,
                                   const skeleton::KernelSkeleton& kernel,
                                   const Variant& variant,
                                   const hw::GpuSpec& gpu) {
  GROPHECY_EXPECTS(variant.block_size >= gpu.warp_size);
  GROPHECY_EXPECTS(variant.block_size <= gpu.max_threads_per_block);
  GROPHECY_EXPECTS(variant.unroll >= 1);
  GROPHECY_EXPECTS(variant.seq_tile >= 0);
  GROPHECY_EXPECTS(variant.fuse_iterations >= 1);

  KernelCharacteristics kc;
  kc.kernel_name = kernel.name;
  kc.variant = variant;

  const std::int64_t parallel_iters = std::max<std::int64_t>(
      kernel.parallel_iterations(), 1);
  const std::int64_t total_iters = std::max<std::int64_t>(
      kernel.total_iterations(), 1);
  kc.total_threads = parallel_iters;
  kc.num_blocks = ceil_div(parallel_iters, variant.block_size);
  kc.work_per_thread =
      static_cast<double>(total_iters) / static_cast<double>(parallel_iters);

  const LoopId tloop = thread_loop(kernel, variant.swap_parallel_loops);

  // Count parallel loop levels for 1D vs 2D tile geometry.
  int parallel_levels = 0;
  for (const skeleton::Loop& loop : kernel.loops)
    if (loop.parallel) ++parallel_levels;
  const std::int64_t tile_x =
      parallel_levels >= 2
          ? std::min<std::int64_t>(16, variant.block_size)
          : variant.block_size;
  const std::int64_t tile_y = std::max<std::int64_t>(
      1, variant.block_size / tile_x);

  // Decide which loads are replaced by shared-memory staging.
  std::vector<StencilGroup> groups;
  if (variant.smem_staging) groups = find_stencil_groups(app, kernel);
  auto staged = [&](const ArrayRef* ref) {
    for (const StencilGroup& g : groups)
      for (const ArrayRef* member : g.refs)
        if (member == ref) return true;
    return false;
  };

  // Per-thread dynamic quantities. Fusion multiplies the whole sweep.
  const double fuse = static_cast<double>(variant.fuse_iterations);
  double redundant = 0.0;
  if (variant.fuse_iterations > 1) {
    // Each fused step's halo must be recomputed: perimeter/area cost
    // scaled by the stencil radius (1 if no stencil detected).
    std::int64_t r = 1;
    for (const StencilGroup& g : groups)
      for (std::int64_t rd : g.radius) r = std::max(r, rd);
    const double perimeter =
        static_cast<double>(r) *
        (2.0 / static_cast<double>(tile_x) + 2.0 / static_cast<double>(tile_y));
    redundant = (fuse - 1.0) * perimeter;
  }
  kc.redundant_work_fraction = redundant;
  /// Scale applied to every dynamic count by the transformation.
  const double scale = fuse * (1.0 + redundant);
  const double threads_d = static_cast<double>(kc.total_threads);

  double flops_static = 0.0;  // per innermost iteration, for heuristics
  std::size_t static_refs = 0;
  kc.index_insts_per_thread =
      2.0 * static_cast<double>(kernel.loops.size()) * kc.work_per_thread *
      scale / static_cast<double>(variant.unroll);
  for (const skeleton::Statement& stmt : kernel.body) {
    const double per_thread_execs =
        static_cast<double>(kernel.statement_iterations(stmt)) / threads_d;
    flops_static += stmt.flops;
    static_refs += stmt.refs.size();
    kc.flops_per_thread += stmt.flops * per_thread_execs * scale;
    kc.special_per_thread += stmt.special_ops * per_thread_execs * scale;
    // Address arithmetic: a few instructions per reference, amortized by
    // unrolling.
    kc.index_insts_per_thread += 3.0 *
                                 static_cast<double>(stmt.refs.size()) *
                                 per_thread_execs * scale /
                                 static_cast<double>(variant.unroll);
  }

  // Sequential-loop tiling (Figure 1's GEMM transformation): operand loads
  // indexed by (parallel, reduction) pairs are staged cooperatively, one
  // block-tile per `seq_tile` reduction steps.
  const LoopId rloop =
      variant.seq_tile > 0 ? reduction_loop(kernel) : LoopId{-1};
  double tile_steps = 0.0;
  double reduction_trips = 0.0;
  std::uint32_t seq_smem_bytes = 0;
  int seq_syncs = 0;
  if (rloop >= 0) {
    reduction_trips = static_cast<double>(
        kernel.loops[static_cast<std::size_t>(rloop)].trip_count());
    tile_steps = std::ceil(reduction_trips / variant.seq_tile);
    seq_syncs = static_cast<int>(2.0 * tile_steps);
  }

  // Classified memory accesses.
  for (const skeleton::Statement& stmt : kernel.body) {
    const double per_thread_execs =
        static_cast<double>(kernel.statement_iterations(stmt)) / threads_d;
    for (const ArrayRef& ref : stmt.refs) {
      const skeleton::ArrayDecl& decl = app.array(ref.array);
      if (variant.smem_staging && ref.kind == skeleton::RefKind::kLoad &&
          staged(&ref)) {
        continue;  // replaced by the cooperative staging loads below
      }
      if (rloop >= 0 && eligible_for_seq_tiling(ref, kernel, rloop)) {
        // Cooperative tile load: each thread contributes one element per
        // tile step instead of one per reduction iteration.
        MemAccess access;
        access.is_load = true;
        access.elem_bytes = static_cast<std::uint32_t>(
            skeleton::elem_size_bytes(decl.type));
        access.cls = AccessClass::kCoalesced;
        access.stride_elems = 1;
        access.count_per_thread =
            per_thread_execs * (tile_steps / reduction_trips) * scale;
        kc.accesses.push_back(access);
        // The tile spans `seq_tile` reduction columns by the block's slice
        // of the parallel dimension the operand streams over.
        std::int64_t parallel_span = tile_y;
        for (const skeleton::AffineExpr& expr : ref.subscripts)
          for (const auto& [loop, coeff] : expr.terms)
            if (coeff != 0 && loop == tloop) parallel_span = tile_x;
        seq_smem_bytes += static_cast<std::uint32_t>(
            variant.seq_tile * parallel_span *
            static_cast<std::int64_t>(access.elem_bytes));
        continue;
      }
      MemAccess access;
      access.is_load = ref.kind == skeleton::RefKind::kLoad;
      access.elem_bytes =
          static_cast<std::uint32_t>(skeleton::elem_size_bytes(decl.type));
      access.count_per_thread = per_thread_execs * scale;
      // A hidden (data-dependent) index only breaks coalescing when it
      // varies across the warp, i.e. depends on the thread loop; with
      // unknown dependences we assume the worst.
      const bool hidden_varies_per_thread =
          !ref.indirect_dims.empty() &&
          (ref.indirect_deps.empty() ||
           std::find(ref.indirect_deps.begin(), ref.indirect_deps.end(),
                     tloop) != ref.indirect_deps.end());
      if (ref.indirect || hidden_varies_per_thread) {
        access.cls = AccessClass::kScattered;
        access.stride_elems = 0;
      } else if (tloop < 0) {
        access.cls = AccessClass::kUniform;
        access.stride_elems = 0;
      } else {
        access.stride_elems = linearized_thread_stride(ref, decl, tloop);
        access.cls = classify_stride(access.stride_elems);
        // Warp-coalesced but row-selected through a hidden index: flags the
        // DRAM-locality derating for both the model and the simulator.
        access.gathered_stream = !ref.indirect_dims.empty() &&
                                 access.cls != AccessClass::kUniform;
      }
      kc.accesses.push_back(access);
    }
  }

  // Cooperative staging loads: one coalesced stream per staged group, with
  // halo amplification; plus a barrier before the tile is consumed.
  std::uint32_t smem_bytes = 0;
  for (const StencilGroup& group : groups) {
    const skeleton::ArrayDecl& decl = app.array(group.array);
    const auto elem =
        static_cast<std::uint32_t>(skeleton::elem_size_bytes(decl.type));
    // Map the last (contiguous) array dim to tile_x, the previous to tile_y.
    std::int64_t rx = 0, ry = 0;
    if (!group.radius.empty()) rx = group.radius.back();
    if (group.radius.size() >= 2) ry = group.radius[group.radius.size() - 2];
    const std::int64_t loaded = (tile_x + 2 * rx) * (tile_y + 2 * ry);
    const double halo_factor = static_cast<double>(loaded) /
                               static_cast<double>(tile_x * tile_y);

    MemAccess access;
    access.is_load = true;
    access.elem_bytes = elem;
    access.cls = AccessClass::kCoalesced;
    access.stride_elems = 1;
    access.count_per_thread = halo_factor * kc.work_per_thread * scale;
    kc.accesses.push_back(access);

    smem_bytes += static_cast<std::uint32_t>(loaded) * elem;
    kc.syncs_per_thread += 1;
  }
  kc.syncs_per_thread += kernel.explicit_syncs + seq_syncs;
  kc.smem_per_block_bytes = smem_bytes + seq_smem_bytes;

  // Register pressure heuristic: base context + live values per reference
  // plus expression temporaries; staging needs tile indices.
  double regs = 10.0 + 2.0 * static_cast<double>(static_refs) +
                std::min(16.0, flops_static / 3.0);
  if (variant.smem_staging) regs += 4.0;
  if (variant.seq_tile > 0) regs += 4.0;
  if (variant.unroll > 1) regs += 2.0 * variant.unroll;
  kc.regs_per_thread =
      static_cast<std::uint32_t>(std::min(regs, 60.0));

  return kc;
}

}  // namespace grophecy::gpumodel
