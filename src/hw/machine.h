// Hardware descriptions for the machines the framework models.
//
// A MachineSpec fully describes a CPU + discrete GPU + PCIe interconnect.
// Two layers of the framework consume these specs:
//   * the analytical models (gpumodel/, cpumodel/, pcie::LinearTransferModel
//     after calibration) use the headline parameters, and
//   * the simulators (sim::GpuSimulator, pcie::SimulatedBus,
//     cpumodel::CpuSimulator) additionally use the *realism* parameters,
//     which describe second-order behaviour of the physical device that a
//     best-achievable analytical model deliberately ignores.
//
// Keeping both in one place makes the predictor-vs-machine gap explicit and
// auditable: everything the simulator charges for beyond the model is named
// here.
#pragma once

#include <cstdint>
#include <string>

namespace grophecy::hw {

/// CPU description (host processor running the baseline implementation).
struct CpuSpec {
  std::string name;
  int sockets = 1;
  int cores_per_socket = 4;
  int threads = 8;                 ///< OpenMP threads used by the baseline.
  double clock_ghz = 2.0;
  /// Peak single-precision FLOPs per cycle per core (SIMD width x FMA ports).
  double flops_per_cycle_per_core = 8.0;
  double mem_bandwidth_gbps = 10.6;  ///< Sustained main-memory bandwidth.
  /// Bandwidth one core can sustain alone (a single thread cannot saturate
  /// the memory system; effective bw = min(total, threads * per_core)).
  double per_core_bw_gbps = 4.0;
  std::uint64_t llc_bytes = 12ULL * 1024 * 1024;  ///< Last-level cache.

  /// --- realism (simulator only) ---
  /// Fraction of peak memory bandwidth actually achieved by streaming code.
  double achieved_bw_fraction = 0.80;
  /// Parallel efficiency at `threads` threads (sync + imbalance losses).
  double parallel_efficiency = 0.85;
  /// Relative sigma of lognormal run-to-run jitter.
  double timing_jitter_sigma = 0.02;

  int total_cores() const { return sockets * cores_per_socket; }
  double peak_gflops() const {
    return clock_ghz * flops_per_cycle_per_core * total_cores();
  }
};

/// Discrete GPU description (the acceleration target).
struct GpuSpec {
  std::string name;
  /// Architecture family the device belongs to ("tesla", "fermi", ...,
  /// "hopper", "cdna2"). Families carry the rules a flat spec cannot:
  /// occupancy allocation granularities, wavefront geometry expectations,
  /// and validation limits (see hw/architecture.h). The default is the
  /// paper testbed's G80 generation.
  std::string family = "tesla";
  int num_sms = 16;
  int cores_per_sm = 8;
  double core_clock_ghz = 1.35;
  double mem_bandwidth_gbps = 76.8;
  /// Device memory capacity; the projection flags applications whose
  /// resident footprint exceeds it (they would need chunked offload).
  std::uint64_t memory_bytes = 1536ULL * 1024 * 1024;
  int warp_size = 32;
  int max_threads_per_sm = 768;
  int max_blocks_per_sm = 8;
  int max_threads_per_block = 512;
  std::uint32_t registers_per_sm = 8192;
  std::uint32_t shared_mem_per_sm_bytes = 16 * 1024;
  /// Register-file allocation granularity: registers are reserved for a
  /// block in multiples of this many registers (hardware allocators round
  /// up). 1 (the default) reproduces the idealized exact-fit arithmetic
  /// the original three machines were modeled with; real devices use 256
  /// (G80-class, per block) up to 512 (Kepler+, per warp).
  std::uint32_t reg_alloc_granularity = 1;
  /// Shared-memory allocation granularity in bytes (same idea; real
  /// devices round block shared memory up to 128 B or 256 B banks).
  std::uint32_t smem_alloc_granularity_bytes = 1;
  /// Global-memory load latency in core cycles.
  double dram_latency_cycles = 500.0;
  /// Bytes per coalesced memory transaction (segment size).
  int transaction_bytes = 128;
  /// FLOPs per core per cycle (2 for multiply-add).
  double flops_per_core_per_cycle = 2.0;
  /// Driver + dispatch overhead per kernel launch, seconds.
  double kernel_launch_overhead_s = 12e-6;

  /// --- realism (simulator only) ---
  /// Fraction of peak DRAM bandwidth a fully streaming kernel achieves.
  double achieved_bw_fraction = 0.82;
  /// Extra transactions replayed per uncoalesced warp access, as a factor on
  /// the ideal transaction count (1.0 = no penalty).
  double uncoalesced_replay_factor = 1.35;
  /// Latency multiplier for data-dependent (indirect/gather) accesses, which
  /// defeat both coalescing and latency hiding.
  double indirect_access_penalty = 1.60;
  /// Per-instruction overhead factor for address arithmetic and control that
  /// skeleton FLOP counts do not capture.
  double instruction_overhead = 1.12;
  /// Cost in cycles of a block-wide barrier (__syncthreads).
  double sync_cycles = 40.0;
  /// Fraction of streaming bandwidth sustained by warp-coalesced streams
  /// whose row selection is data dependent (DRAM page locality loss).
  double gather_stream_fraction = 0.45;
  /// Relative sigma of lognormal run-to-run jitter on kernel time.
  double timing_jitter_sigma = 0.015;

  int total_cores() const { return num_sms * cores_per_sm; }
  double peak_gflops() const {
    return core_clock_ghz * flops_per_core_per_cycle * total_cores();
  }
};

/// Host memory allocation mode for CPU-GPU transfers (paper §III-C).
enum class HostMemory {
  kPinned,    ///< cudaHostAlloc page-locked memory; DMA directly.
  kPageable,  ///< malloc memory; driver stages through an internal buffer.
};

/// Transfer direction across the PCIe bus.
enum class Direction {
  kHostToDevice,  ///< CPU -> GPU (inputs).
  kDeviceToHost,  ///< GPU -> CPU (outputs).
};

/// Physical characterisation of one direction of the PCIe link for one host
/// memory mode. These are *ground truth* device parameters; the framework's
/// empirical model never reads them — it calibrates its own alpha/beta by
/// timing transfers (paper §III-C).
///
/// The noiseless transfer time for d bytes is
///   t(d) = latency_s + d / asymptotic_bw
///        + hump_extra_s * exp(-((ln(d / hump_center_bytes)) / hump_log_width)^2)
///        + ceil(d / 4096) * page_staging_s_per_page
/// The log-bell "hump" models the DMA chunking transition real links show at
/// intermediate sizes; it vanishes at both calibration points (1 B, 512 MB),
/// which is exactly why a two-point linear model mispredicts mid-size
/// transfers (paper Fig. 4) while being nearly exact at the extremes.
struct PcieDirectionProfile {
  double latency_s = 10e-6;      ///< First-byte latency (the true alpha).
  double asymptotic_gbps = 2.5;  ///< Large-transfer bandwidth.
  /// Peak additional time of the mid-size non-linearity, seconds.
  double hump_extra_s = 0.0;
  double hump_center_bytes = 32.0 * 1024;
  double hump_log_width = 1.5;
  /// Per-4KiB-page host-side staging cost (pageable memory only), seconds.
  double page_staging_s_per_page = 0.0;
};

/// Noise character of the bus (applies to both directions).
struct PcieNoiseProfile {
  /// Relative jitter floor for very large transfers.
  double sigma_floor = 0.004;
  /// Additional relative jitter for small transfers; total sigma is
  /// sigma_floor + sigma_small / (1 + bytes / small_scale_bytes).
  double sigma_small = 0.035;
  double small_scale_bytes = 64.0 * 1024;
  /// Probability that a transfer is an outlier (e.g. the paper's
  /// "inexplicably" slow CFD transfers), and its slowdown factor.
  double outlier_probability = 0.0;
  double outlier_factor = 2.2;
};

/// PCIe interconnect description.
struct PcieSpec {
  std::string name;
  int generation = 1;  ///< PCIe version (1 through 5 supported).
  int lanes = 16;
  PcieDirectionProfile pinned_h2d;
  PcieDirectionProfile pinned_d2h;
  PcieDirectionProfile pageable_h2d;
  PcieDirectionProfile pageable_d2h;
  PcieNoiseProfile noise;

  /// Looks up the profile for a direction + memory mode.
  const PcieDirectionProfile& profile(Direction dir, HostMemory mem) const;

  /// Payload bandwidth one lane of this generation carries each way, in
  /// GB/s (after 8b/10b or 128b/130b encoding): 0.25, 0.5, 0.985, 1.969,
  /// 3.938 for generations 1-5. Returns 0 for an unknown generation.
  static double per_lane_gbps(int generation);

  /// The link's theoretical each-way payload bandwidth (lanes x per-lane).
  /// The calibrated model never reads this; it is the sanity bound the
  /// registry validates measured/spec asymptotic bandwidths against.
  double peak_gbps() const { return per_lane_gbps(generation) * lanes; }
};

/// Ground-truth cost of memory allocation (the paper's future-work item:
/// "account for the overhead of memory allocation"). Pinned host memory is
/// expensive to create — every page must be locked and registered with the
/// device — which is the hidden price of the fast transfers the paper
/// assumes. Device allocations carry a driver round-trip.
struct AllocationProfile {
  /// cudaMalloc: device-side allocation.
  double device_base_s = 10e-6;
  double device_per_mib_s = 0.30e-6;
  /// malloc: pageable host memory (cheap, lazily mapped; first-touch cost
  /// is charged per page).
  double pageable_base_s = 0.5e-6;
  double pageable_per_page_s = 0.05e-6;
  /// cudaHostAlloc: page-locked host memory (pin + register each page).
  double pinned_base_s = 40e-6;
  double pinned_per_page_s = 0.45e-6;
  /// Relative sigma of lognormal jitter on allocation times.
  double jitter_sigma = 0.05;
};

/// A complete host + accelerator system.
struct MachineSpec {
  std::string name;
  CpuSpec cpu;
  GpuSpec gpu;
  PcieSpec pcie;
  AllocationProfile alloc;
};

}  // namespace grophecy::hw
