// Built-in machines and the legacy lookup shims.
//
// `anl_eureka()` reproduces the paper's testbed (§IV-A): a node of Argonne's
// Eureka data analysis and visualization cluster with a quad-core Intel Xeon
// E5405 (2.00 GHz, 8 OpenMP threads) and an NVIDIA Quadro FX 5600 in a PCIe
// v1 x16 slot (alpha ~ 10 us, ~2.5 GB/s pinned bandwidth, §III-C).
//
// Two additional machines (PCIe v2 Fermi-class, PCIe v3 Kepler-class) are
// provided to exercise the claim that the framework is not system specific:
// the calibration benchmark rebuilds the bus model automatically on each.
//
// These three are the *built-in* machines: constructed in code, always
// available, and the only names a `.gmach` `base` directive may seed from
// (file-backed machines cannot base on each other — that would make a spec's
// meaning depend on registry scan order). The full fleet — builtins plus
// every shipped and user-provided `.gmach` spec — lives in MachineRegistry
// (hw/machine_registry.h); new code should look machines up there.
#pragma once

#include <string>
#include <vector>

#include "hw/machine.h"

namespace grophecy::hw {

/// The paper's testbed: Xeon E5405 + Quadro FX 5600 over PCIe v1 x16.
MachineSpec anl_eureka();

/// A PCIe v2 system: Westmere Xeon + Fermi-class Tesla C2050.
MachineSpec pcie2_fermi();

/// A PCIe v3 system: Sandy Bridge Xeon + Kepler-class Tesla K20.
MachineSpec pcie3_kepler();

/// The built-in machines, `anl_eureka()` first. These are the valid
/// `.gmach` `base` seeds.
std::vector<MachineSpec> builtin_machines();

/// Deprecated shim: the built-in trio only, kept so existing benches and
/// tests compile (and see exactly the machines they were tuned against).
/// For the full registered fleet use MachineRegistry::global().
std::vector<MachineSpec> all_machines();

/// Deprecated shim for MachineRegistry::global().find(): looks a machine up
/// across the full registry (builtins + shipped + GROPHECY_MACHINE_PATH).
/// Throws UsageError listing the valid names if unknown.
MachineSpec machine_by_name(const std::string& name);

}  // namespace grophecy::hw
