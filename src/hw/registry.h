// Registry of pre-configured machines.
//
// `anl_eureka()` reproduces the paper's testbed (§IV-A): a node of Argonne's
// Eureka data analysis and visualization cluster with a quad-core Intel Xeon
// E5405 (2.00 GHz, 8 OpenMP threads) and an NVIDIA Quadro FX 5600 in a PCIe
// v1 x16 slot (alpha ~ 10 us, ~2.5 GB/s pinned bandwidth, §III-C).
//
// Two additional machines (PCIe v2 Fermi-class, PCIe v3 Kepler-class) are
// provided to exercise the claim that the framework is not system specific:
// the calibration benchmark rebuilds the bus model automatically on each.
#pragma once

#include <string>
#include <vector>

#include "hw/machine.h"

namespace grophecy::hw {

/// The paper's testbed: Xeon E5405 + Quadro FX 5600 over PCIe v1 x16.
MachineSpec anl_eureka();

/// A PCIe v2 system: Westmere Xeon + Fermi-class Tesla C2050.
MachineSpec pcie2_fermi();

/// A PCIe v3 system: Sandy Bridge Xeon + Kepler-class Tesla K20.
MachineSpec pcie3_kepler();

/// All registered machines, `anl_eureka()` first.
std::vector<MachineSpec> all_machines();

/// Looks a machine up by name; throws ContractViolation if unknown.
MachineSpec machine_by_name(const std::string& name);

}  // namespace grophecy::hw
