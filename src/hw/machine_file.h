// Machine description files (.gmach).
//
// The paper's framework "is not application or system specific" and the
// bus model "is constructed automatically for each new system" (§I). The
// registry ships three machines; this module lets users describe their own
// system in a plain text file and project against it without recompiling:
//
//   # my_workstation.gmach — start from a registered machine, then override
//   base pcie3_kepler
//   name my_workstation
//   cpu.threads 24
//   cpu.mem_bandwidth_gbps 76
//   gpu.num_sms 46
//   gpu.mem_bandwidth_gbps 448
//   pcie.pinned_h2d.asymptotic_gbps 12.3
//
// Format: one `key value` pair per line; `#` comments; keys are the
// dotted field paths below. `base <registered machine>` (optional, first)
// seeds every field so a file only lists what differs; without it the
// paper's testbed (anl_eureka) is the seed. Unknown keys are errors, so
// typos cannot silently leave a field at its default.
//
// serialize_machine() writes every known field, so a round-tripped file
// doubles as a complete, documented record of a machine's parameters.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hw/machine.h"
#include "util/artifact_cache.h"
#include "util/error.h"

namespace grophecy::hw {

/// Error in a .gmach document. A grophecy::ParseError (ErrorKind::kParse);
/// what() is "<file>: line <N>: <message>", with the file part present when
/// the document came from a file (parse_machine_file attaches the path).
class MachineParseError : public grophecy::ParseError {
 public:
  MachineParseError(int line, const std::string& message)
      : grophecy::ParseError("", line, message) {}
  MachineParseError(std::string file, int line, std::string message)
      : grophecy::ParseError(std::move(file), line, std::move(message)) {}
};

/// Parses a .gmach document into a MachineSpec.
MachineSpec parse_machine(std::string_view text);

/// Reads and parses a .gmach file.
MachineSpec parse_machine_file(const std::string& path);

/// Content-addressed cached parse: the cache key is the hash of the
/// document bytes, so identical documents share one immutable MachineSpec.
/// Same errors as parse_machine.
std::shared_ptr<const MachineSpec> parse_machine_cached(std::string_view text);

/// Reads a .gmach file and serves the parse from the content-addressed
/// cache (the file is still read each call, so an edited file re-parses).
/// Same errors as parse_machine_file.
std::shared_ptr<const MachineSpec> parse_machine_file_cached(
    const std::string& path);

/// The process-wide cache behind the cached parse entry points
/// (accounting and tests; see util/artifact_cache.h).
util::ArtifactCache<MachineSpec>& machine_parse_cache();

/// Writes every known field of `machine` in .gmach syntax.
std::string serialize_machine(const MachineSpec& machine);

/// The dotted field paths understood by the parser (for tooling/tests).
std::vector<std::string> machine_field_names();

/// Multiplies a numeric field by `factor` (sensitivity analysis / what-if
/// tooling). Returns false for string-valued fields; throws
/// ContractViolation for unknown field names.
bool scale_machine_field(MachineSpec& machine, const std::string& field,
                         double factor);

}  // namespace grophecy::hw
