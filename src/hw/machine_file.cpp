#include "hw/machine_file.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "hw/registry.h"
#include "util/contracts.h"
#include "util/table.h"

namespace grophecy::hw {

namespace {

/// One settable/gettable field of a MachineSpec.
struct Field {
  std::function<void(MachineSpec&, const std::string&, int)> set;
  std::function<std::string(const MachineSpec&)> get;
};

double parse_double(const std::string& value, int line) {
  double parsed = 0.0;
  try {
    std::size_t consumed = 0;
    parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    throw MachineParseError(line, "expected number, got '" + value + "'");
  }
  // NaN and infinity parse as doubles but poison every downstream model
  // quantity; a machine description containing them is malformed input.
  if (!std::isfinite(parsed))
    throw MachineParseError(line,
                            "expected finite number, got '" + value + "'");
  return parsed;
}

Field double_field(std::function<double&(MachineSpec&)> access) {
  return Field{
      [access](MachineSpec& m, const std::string& value, int line) {
        access(m) = parse_double(value, line);
      },
      [access](const MachineSpec& m) {
        return util::strfmt("%.9g", access(const_cast<MachineSpec&>(m)));
      }};
}

Field int_field(std::function<int&(MachineSpec&)> access) {
  return Field{
      [access](MachineSpec& m, const std::string& value, int line) {
        const double parsed = parse_double(value, line);
        access(m) = static_cast<int>(parsed);
      },
      [access](const MachineSpec& m) {
        return std::to_string(access(const_cast<MachineSpec&>(m)));
      }};
}

Field u32_field(std::function<std::uint32_t&(MachineSpec&)> access) {
  return Field{
      [access](MachineSpec& m, const std::string& value, int line) {
        access(m) = static_cast<std::uint32_t>(parse_double(value, line));
      },
      [access](const MachineSpec& m) {
        return std::to_string(access(const_cast<MachineSpec&>(m)));
      }};
}

Field u64_field(std::function<std::uint64_t&(MachineSpec&)> access) {
  return Field{
      [access](MachineSpec& m, const std::string& value, int line) {
        access(m) = static_cast<std::uint64_t>(parse_double(value, line));
      },
      [access](const MachineSpec& m) {
        return std::to_string(access(const_cast<MachineSpec&>(m)));
      }};
}

Field string_field(std::function<std::string&(MachineSpec&)> access) {
  return Field{
      [access](MachineSpec& m, const std::string& value, int line) {
        if (value.empty())
          throw MachineParseError(line, "expected a value");
        access(m) = value;
      },
      [access](const MachineSpec& m) {
        return access(const_cast<MachineSpec&>(m));
      }};
}

void add_pcie_profile_fields(std::map<std::string, Field>& fields,
                             const std::string& prefix,
                             std::function<PcieDirectionProfile&(MachineSpec&)>
                                 profile) {
  fields[prefix + ".latency_s"] = double_field(
      [profile](MachineSpec& m) -> double& { return profile(m).latency_s; });
  fields[prefix + ".asymptotic_gbps"] =
      double_field([profile](MachineSpec& m) -> double& {
        return profile(m).asymptotic_gbps;
      });
  fields[prefix + ".hump_extra_s"] =
      double_field([profile](MachineSpec& m) -> double& {
        return profile(m).hump_extra_s;
      });
  fields[prefix + ".hump_center_bytes"] =
      double_field([profile](MachineSpec& m) -> double& {
        return profile(m).hump_center_bytes;
      });
  fields[prefix + ".hump_log_width"] =
      double_field([profile](MachineSpec& m) -> double& {
        return profile(m).hump_log_width;
      });
  fields[prefix + ".page_staging_s_per_page"] =
      double_field([profile](MachineSpec& m) -> double& {
        return profile(m).page_staging_s_per_page;
      });
}

const std::map<std::string, Field>& field_registry() {
  static const std::map<std::string, Field> registry = [] {
    std::map<std::string, Field> f;
    // --- cpu ---
    f["name"] = string_field([](MachineSpec& m) -> std::string& { return m.name; });
    f["cpu.name"] = string_field([](MachineSpec& m) -> std::string& { return m.cpu.name; });
    f["cpu.sockets"] = int_field([](MachineSpec& m) -> int& { return m.cpu.sockets; });
    f["cpu.cores_per_socket"] = int_field([](MachineSpec& m) -> int& { return m.cpu.cores_per_socket; });
    f["cpu.threads"] = int_field([](MachineSpec& m) -> int& { return m.cpu.threads; });
    f["cpu.clock_ghz"] = double_field([](MachineSpec& m) -> double& { return m.cpu.clock_ghz; });
    f["cpu.flops_per_cycle_per_core"] = double_field([](MachineSpec& m) -> double& { return m.cpu.flops_per_cycle_per_core; });
    f["cpu.mem_bandwidth_gbps"] = double_field([](MachineSpec& m) -> double& { return m.cpu.mem_bandwidth_gbps; });
    f["cpu.per_core_bw_gbps"] = double_field([](MachineSpec& m) -> double& { return m.cpu.per_core_bw_gbps; });
    f["cpu.llc_bytes"] = u64_field([](MachineSpec& m) -> std::uint64_t& { return m.cpu.llc_bytes; });
    f["cpu.achieved_bw_fraction"] = double_field([](MachineSpec& m) -> double& { return m.cpu.achieved_bw_fraction; });
    f["cpu.parallel_efficiency"] = double_field([](MachineSpec& m) -> double& { return m.cpu.parallel_efficiency; });
    f["cpu.timing_jitter_sigma"] = double_field([](MachineSpec& m) -> double& { return m.cpu.timing_jitter_sigma; });
    // --- gpu ---
    f["gpu.name"] = string_field([](MachineSpec& m) -> std::string& { return m.gpu.name; });
    f["gpu.family"] = string_field([](MachineSpec& m) -> std::string& { return m.gpu.family; });
    f["gpu.memory_bytes"] = u64_field([](MachineSpec& m) -> std::uint64_t& { return m.gpu.memory_bytes; });
    f["gpu.num_sms"] = int_field([](MachineSpec& m) -> int& { return m.gpu.num_sms; });
    f["gpu.cores_per_sm"] = int_field([](MachineSpec& m) -> int& { return m.gpu.cores_per_sm; });
    f["gpu.core_clock_ghz"] = double_field([](MachineSpec& m) -> double& { return m.gpu.core_clock_ghz; });
    f["gpu.mem_bandwidth_gbps"] = double_field([](MachineSpec& m) -> double& { return m.gpu.mem_bandwidth_gbps; });
    f["gpu.warp_size"] = int_field([](MachineSpec& m) -> int& { return m.gpu.warp_size; });
    f["gpu.max_threads_per_sm"] = int_field([](MachineSpec& m) -> int& { return m.gpu.max_threads_per_sm; });
    f["gpu.max_blocks_per_sm"] = int_field([](MachineSpec& m) -> int& { return m.gpu.max_blocks_per_sm; });
    f["gpu.max_threads_per_block"] = int_field([](MachineSpec& m) -> int& { return m.gpu.max_threads_per_block; });
    f["gpu.registers_per_sm"] = u32_field([](MachineSpec& m) -> std::uint32_t& { return m.gpu.registers_per_sm; });
    f["gpu.shared_mem_per_sm_bytes"] = u32_field([](MachineSpec& m) -> std::uint32_t& { return m.gpu.shared_mem_per_sm_bytes; });
    f["gpu.reg_alloc_granularity"] = u32_field([](MachineSpec& m) -> std::uint32_t& { return m.gpu.reg_alloc_granularity; });
    f["gpu.smem_alloc_granularity_bytes"] = u32_field([](MachineSpec& m) -> std::uint32_t& { return m.gpu.smem_alloc_granularity_bytes; });
    f["gpu.dram_latency_cycles"] = double_field([](MachineSpec& m) -> double& { return m.gpu.dram_latency_cycles; });
    f["gpu.transaction_bytes"] = int_field([](MachineSpec& m) -> int& { return m.gpu.transaction_bytes; });
    f["gpu.flops_per_core_per_cycle"] = double_field([](MachineSpec& m) -> double& { return m.gpu.flops_per_core_per_cycle; });
    f["gpu.kernel_launch_overhead_s"] = double_field([](MachineSpec& m) -> double& { return m.gpu.kernel_launch_overhead_s; });
    f["gpu.achieved_bw_fraction"] = double_field([](MachineSpec& m) -> double& { return m.gpu.achieved_bw_fraction; });
    f["gpu.uncoalesced_replay_factor"] = double_field([](MachineSpec& m) -> double& { return m.gpu.uncoalesced_replay_factor; });
    f["gpu.indirect_access_penalty"] = double_field([](MachineSpec& m) -> double& { return m.gpu.indirect_access_penalty; });
    f["gpu.instruction_overhead"] = double_field([](MachineSpec& m) -> double& { return m.gpu.instruction_overhead; });
    f["gpu.sync_cycles"] = double_field([](MachineSpec& m) -> double& { return m.gpu.sync_cycles; });
    f["gpu.gather_stream_fraction"] = double_field([](MachineSpec& m) -> double& { return m.gpu.gather_stream_fraction; });
    f["gpu.timing_jitter_sigma"] = double_field([](MachineSpec& m) -> double& { return m.gpu.timing_jitter_sigma; });
    // --- pcie ---
    f["pcie.name"] = string_field([](MachineSpec& m) -> std::string& { return m.pcie.name; });
    f["pcie.generation"] = int_field([](MachineSpec& m) -> int& { return m.pcie.generation; });
    f["pcie.lanes"] = int_field([](MachineSpec& m) -> int& { return m.pcie.lanes; });
    add_pcie_profile_fields(f, "pcie.pinned_h2d",
                            [](MachineSpec& m) -> PcieDirectionProfile& { return m.pcie.pinned_h2d; });
    add_pcie_profile_fields(f, "pcie.pinned_d2h",
                            [](MachineSpec& m) -> PcieDirectionProfile& { return m.pcie.pinned_d2h; });
    add_pcie_profile_fields(f, "pcie.pageable_h2d",
                            [](MachineSpec& m) -> PcieDirectionProfile& { return m.pcie.pageable_h2d; });
    add_pcie_profile_fields(f, "pcie.pageable_d2h",
                            [](MachineSpec& m) -> PcieDirectionProfile& { return m.pcie.pageable_d2h; });
    f["pcie.noise.sigma_floor"] = double_field([](MachineSpec& m) -> double& { return m.pcie.noise.sigma_floor; });
    f["pcie.noise.sigma_small"] = double_field([](MachineSpec& m) -> double& { return m.pcie.noise.sigma_small; });
    f["pcie.noise.small_scale_bytes"] = double_field([](MachineSpec& m) -> double& { return m.pcie.noise.small_scale_bytes; });
    f["pcie.noise.outlier_probability"] = double_field([](MachineSpec& m) -> double& { return m.pcie.noise.outlier_probability; });
    f["pcie.noise.outlier_factor"] = double_field([](MachineSpec& m) -> double& { return m.pcie.noise.outlier_factor; });
    // --- alloc ---
    f["alloc.device_base_s"] = double_field([](MachineSpec& m) -> double& { return m.alloc.device_base_s; });
    f["alloc.device_per_mib_s"] = double_field([](MachineSpec& m) -> double& { return m.alloc.device_per_mib_s; });
    f["alloc.pageable_base_s"] = double_field([](MachineSpec& m) -> double& { return m.alloc.pageable_base_s; });
    f["alloc.pageable_per_page_s"] = double_field([](MachineSpec& m) -> double& { return m.alloc.pageable_per_page_s; });
    f["alloc.pinned_base_s"] = double_field([](MachineSpec& m) -> double& { return m.alloc.pinned_base_s; });
    f["alloc.pinned_per_page_s"] = double_field([](MachineSpec& m) -> double& { return m.alloc.pinned_per_page_s; });
    f["alloc.jitter_sigma"] = double_field([](MachineSpec& m) -> double& { return m.alloc.jitter_sigma; });
    return f;
  }();
  return registry;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

}  // namespace

MachineSpec parse_machine(std::string_view text) {
  MachineSpec machine = anl_eureka();  // default seed: the paper's testbed
  bool any_field = false;
  bool base_allowed = true;
  std::set<std::string> seen_keys;

  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    std::string_view raw =
        text.substr(pos, end == std::string_view::npos ? text.size() - pos
                                                       : end - pos);
    ++line_number;
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;

    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const std::size_t space = line.find_first_of(" \t");
    const std::string key =
        space == std::string::npos ? line : line.substr(0, space);
    const std::string value =
        space == std::string::npos ? "" : trim(line.substr(space + 1));

    if (key == "base") {
      if (!base_allowed)
        throw MachineParseError(line_number,
                                "'base' must be the first directive");
      // `base` resolves against the built-in machines only, never the
      // registry: a file-backed machine basing on another file would make
      // its meaning depend on registry scan order (and recurse into the
      // global registry while it is being constructed).
      bool found = false;
      std::string valid_bases;
      for (MachineSpec& builtin : builtin_machines()) {
        if (!valid_bases.empty()) valid_bases += ", ";
        valid_bases += builtin.name;
        if (builtin.name == value) {
          machine = std::move(builtin);
          found = true;
        }
      }
      if (!found)
        throw MachineParseError(line_number, "unknown base machine '" +
                                                 value + "' (valid: " +
                                                 valid_bases + ")");
      base_allowed = false;
      continue;
    }
    base_allowed = false;

    const auto& registry = field_registry();
    const auto it = registry.find(key);
    if (it == registry.end())
      throw MachineParseError(line_number, "unknown field '" + key + "'");
    // A repeated key is almost certainly an editing mistake; silently
    // letting the last one win would hide it (same rationale as rejecting
    // unknown keys).
    if (!seen_keys.insert(key).second)
      throw MachineParseError(line_number, "duplicate field '" + key + "'");
    it->second.set(machine, value, line_number);
    any_field = true;
  }
  if (!any_field && base_allowed)
    throw MachineParseError(1, "empty machine description");
  return machine;
}

MachineSpec parse_machine_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw MachineParseError(path, 0, "cannot open file");
  std::ostringstream contents;
  contents << file.rdbuf();
  try {
    return parse_machine(contents.str());
  } catch (const MachineParseError& e) {
    throw MachineParseError(path, e.line(), e.message());
  }
}

util::ArtifactCache<MachineSpec>& machine_parse_cache() {
  static util::ArtifactCache<MachineSpec> cache;
  return cache;
}

std::shared_ptr<const MachineSpec> parse_machine_cached(
    std::string_view text) {
  util::KeyBuilder key;
  key.field("gmach").field(text);
  return machine_parse_cache().get_or_build(
      key.hash(), [&] { return parse_machine(text); });
}

std::shared_ptr<const MachineSpec> parse_machine_file_cached(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) throw MachineParseError(path, 0, "cannot open file");
  std::ostringstream contents;
  contents << file.rdbuf();
  try {
    return parse_machine_cached(contents.str());
  } catch (const MachineParseError& e) {
    throw MachineParseError(path, e.line(), e.message());
  }
}

std::string serialize_machine(const MachineSpec& machine) {
  std::ostringstream oss;
  oss << "# grophecy machine description (every known field)\n";
  for (const auto& [key, field] : field_registry())
    oss << key << ' ' << field.get(machine) << '\n';
  return oss.str();
}

std::vector<std::string> machine_field_names() {
  std::vector<std::string> names;
  for (const auto& [key, field] : field_registry()) {
    (void)field;
    names.push_back(key);
  }
  return names;
}

bool scale_machine_field(MachineSpec& machine, const std::string& field,
                         double factor) {
  const auto& registry = field_registry();
  const auto it = registry.find(field);
  if (it == registry.end())
    throw ContractViolation("unknown machine field: " + field);
  const std::string current = it->second.get(machine);
  // String fields (names) are not scalable.
  char* end = nullptr;
  const double value = std::strtod(current.c_str(), &end);
  if (end == current.c_str() || *end != '\0') return false;
  it->second.set(machine, util::strfmt("%.12g", value * factor), 0);
  return true;
}

}  // namespace grophecy::hw
