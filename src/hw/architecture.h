// Architecture families: the rules a flat MachineSpec cannot carry.
//
// The paper's framework is deliberately "not system specific" (§III-C) —
// the PCIe model recalibrates per machine and the GPU model reads a plain
// parameter struct. But some machine behaviour is a property of the
// *generation*, not of one device's datasheet numbers: how the register
// file and shared memory are allocated (occupancy rules), what wavefront
// geometry the scheduler assumes, which interconnect generations the era
// shipped with, and what parameter ranges are even plausible. An
// Architecture bundles those rules for one hardware family, so a registry
// of machines spanning Tesla-class (the paper's G80 testbed) through
// modern generations can be validated and modeled consistently — the
// GPUArchitecture shape from cross-machine black-box modeling work
// (Stevens & Klöckner, arXiv:1904.09538) ported to this codebase.
//
// GpuSpec::family names the family; Architecture::of() resolves it. The
// default knobs (allocation granularity 1) reproduce the exact-fit
// arithmetic the original three machines were modeled with, so attaching
// families to existing specs changes no projected number.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hw/machine.h"

namespace grophecy::hw {

/// Occupancy of one SM for a candidate block shape, as computed by a
/// family's allocation rules. Mirrored by gpumodel::Occupancy (the
/// model-facing copy); the limiter strings are part of both contracts.
struct Occupancy {
  int blocks_per_sm = 0;
  int active_warps = 0;   ///< Warps (family wavefronts) resident per SM.
  double fraction = 0.0;  ///< active_warps / max warps.
  /// Which resource capped the block count: "threads", "blocks", "regs",
  /// or "smem".
  const char* limiter = "";
};

/// One hardware generation's rule set. Stateless and immutable; the
/// concrete families are process-wide singletons owned by the class (see
/// of() / families()), safe to share across sweep workers.
class Architecture {
 public:
  virtual ~Architecture() = default;

  /// Family key as spelled in GpuSpec::family / .gmach `gpu.family`.
  virtual std::string_view family() const = 0;
  /// Human-readable generation description for reports.
  virtual std::string_view description() const = 0;

  /// The wavefront width the family's scheduler issues (CUDA warp 32,
  /// CDNA wave 64). GpuSpec::warp_size must match; validate() enforces.
  virtual int wave_size() const { return 32; }

  /// Newest PCIe generation the family shipped with; validate() rejects a
  /// spec pairing e.g. a G80-class device with a gen5 link, which would
  /// silently model a machine that cannot exist.
  virtual int max_pcie_generation() const { return 5; }

  /// How many blocks of the given shape fit on one SM under this family's
  /// allocation rules. The base implementation is the framework's
  /// classical exact-fit computation with the spec's allocation
  /// granularities applied (granularity 1 == the historical arithmetic).
  virtual Occupancy occupancy(const GpuSpec& gpu, int block_size,
                              std::uint32_t regs_per_thread,
                              std::uint32_t smem_per_block) const;

  /// Peak single-precision throughput, GFLOP/s. Base: clock x cores x
  /// flops-per-core-per-cycle (the datasheet FMA number).
  virtual double peak_gflops(const GpuSpec& gpu) const;

  /// Peak DRAM bandwidth, GB/s (the datasheet number; the simulators
  /// derate it with the realism fields).
  virtual double peak_bandwidth_gbps(const GpuSpec& gpu) const;

  /// Family-specific structural checks beyond validate_machine's generic
  /// ones. Throws UsageError naming the offending field.
  virtual void validate(const GpuSpec& gpu) const;

  /// Resolves a family key; throws UsageError listing the valid families
  /// for an unknown one.
  static const Architecture& of(std::string_view family);
  /// Same, returning nullptr instead of throwing.
  static const Architecture* try_of(std::string_view family);
  /// Every registered family key, oldest generation first.
  static std::vector<std::string> families();
};

/// Validates a complete machine description: positive geometry, finite
/// rates, a known architecture family (whose own validate() then runs),
/// and an interconnect whose claimed bandwidths fit inside the link's
/// theoretical capacity. Throws UsageError as
/// "machine '<name>': <field>: <problem>" — bad machine *input*, not a
/// programming error. The registry calls this for every spec it admits.
void validate_machine(const MachineSpec& machine);

}  // namespace grophecy::hw
