#include "hw/architecture.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/contracts.h"
#include "util/error.h"
#include "util/table.h"

namespace grophecy::hw {

namespace {

std::uint32_t round_up(std::uint32_t value, std::uint32_t granularity) {
  if (granularity <= 1) return value;
  return ((value + granularity - 1) / granularity) * granularity;
}

/// One concrete generation. The families differ in metadata and limits,
/// not in algorithm shape, so a single final class parameterized per
/// family keeps every rule in one auditable table below; a family that
/// ever needs different *math* (e.g. per-warp register files) overrides
/// the virtuals with a new subclass.
class FamilyArchitecture final : public Architecture {
 public:
  FamilyArchitecture(const char* family, const char* description,
                     int wave_size, int max_pcie_generation)
      : family_(family),
        description_(description),
        wave_size_(wave_size),
        max_pcie_generation_(max_pcie_generation) {}

  std::string_view family() const override { return family_; }
  std::string_view description() const override { return description_; }
  int wave_size() const override { return wave_size_; }
  int max_pcie_generation() const override { return max_pcie_generation_; }

 private:
  const char* family_;
  const char* description_;
  int wave_size_;
  int max_pcie_generation_;
};

/// Registered families, oldest first. Wave geometry and the newest link
/// generation each era shipped with; the CDNA entry exercises the
/// non-32-wide path (AMD wavefronts are 64 lanes).
const std::vector<FamilyArchitecture>& family_table() {
  static const std::vector<FamilyArchitecture> table = {
      {"tesla", "NVIDIA Tesla class (G80/GT200, 2006-2009)", 32, 2},
      {"fermi", "NVIDIA Fermi class (GF1xx, 2010-2011)", 32, 2},
      {"kepler", "NVIDIA Kepler class (GK1xx, 2012-2013)", 32, 3},
      {"maxwell", "NVIDIA Maxwell class (GM2xx, 2014-2015)", 32, 3},
      {"pascal", "NVIDIA Pascal class (GP1xx, 2016-2017)", 32, 3},
      {"volta", "NVIDIA Volta class (GV100, 2017-2018)", 32, 3},
      {"turing", "NVIDIA Turing class (TU1xx, 2018-2019)", 32, 3},
      {"ampere", "NVIDIA Ampere class (GA1xx, 2020-2021)", 32, 4},
      {"ada", "NVIDIA Ada class (AD1xx, 2022-2023)", 32, 4},
      {"hopper", "NVIDIA Hopper class (GH100, 2022-2024)", 32, 5},
      {"cdna2", "AMD CDNA2 class (MI2xx, wave64, 2021-2022)", 64, 4},
  };
  return table;
}

const std::map<std::string_view, const Architecture*>& family_index() {
  static const std::map<std::string_view, const Architecture*> index = [] {
    std::map<std::string_view, const Architecture*> map;
    for (const FamilyArchitecture& arch : family_table())
      map.emplace(arch.family(), &arch);
    return map;
  }();
  return index;
}

std::string valid_family_names() {
  std::string names;
  for (const FamilyArchitecture& arch : family_table()) {
    if (!names.empty()) names += ", ";
    names += arch.family();
  }
  return names;
}

}  // namespace

Occupancy Architecture::occupancy(const GpuSpec& gpu, int block_size,
                                  std::uint32_t regs_per_thread,
                                  std::uint32_t smem_per_block) const {
  GROPHECY_EXPECTS(block_size >= gpu.warp_size);
  GROPHECY_EXPECTS(block_size <= gpu.max_threads_per_block);

  Occupancy occ;
  int limit = gpu.max_threads_per_sm / block_size;
  occ.limiter = "threads";

  if (gpu.max_blocks_per_sm < limit) {
    limit = gpu.max_blocks_per_sm;
    occ.limiter = "blocks";
  }
  if (regs_per_thread > 0) {
    // Hardware allocators reserve registers in fixed-size chunks; the
    // exact-fit arithmetic (granularity 1) is what the original three
    // machines were modeled with, so it stays the default.
    const std::uint32_t regs_per_block =
        round_up(regs_per_thread * static_cast<std::uint32_t>(block_size),
                 gpu.reg_alloc_granularity);
    const int by_regs =
        static_cast<int>(gpu.registers_per_sm / regs_per_block);
    if (by_regs < limit) {
      limit = by_regs;
      occ.limiter = "regs";
    }
  }
  if (smem_per_block > 0) {
    const std::uint32_t smem_alloc =
        round_up(smem_per_block, gpu.smem_alloc_granularity_bytes);
    const int by_smem =
        static_cast<int>(gpu.shared_mem_per_sm_bytes / smem_alloc);
    if (by_smem < limit) {
      limit = by_smem;
      occ.limiter = "smem";
    }
  }

  occ.blocks_per_sm = std::max(limit, 0);
  const int warps_per_block =
      (block_size + gpu.warp_size - 1) / gpu.warp_size;
  occ.active_warps = occ.blocks_per_sm * warps_per_block;
  const int max_warps = gpu.max_threads_per_sm / gpu.warp_size;
  occ.fraction = static_cast<double>(occ.active_warps) / max_warps;
  return occ;
}

double Architecture::peak_gflops(const GpuSpec& gpu) const {
  return gpu.core_clock_ghz * gpu.flops_per_core_per_cycle *
         gpu.total_cores();
}

double Architecture::peak_bandwidth_gbps(const GpuSpec& gpu) const {
  return gpu.mem_bandwidth_gbps;
}

void Architecture::validate(const GpuSpec& gpu) const {
  if (gpu.warp_size != wave_size())
    throw UsageError(util::strfmt(
        "gpu.warp_size: %d does not match the %.*s family's wavefront "
        "width %d",
        gpu.warp_size, static_cast<int>(family().size()), family().data(),
        wave_size()));
}

const Architecture& Architecture::of(std::string_view family) {
  const Architecture* arch = try_of(family);
  if (arch == nullptr)
    throw UsageError("unknown architecture family '" + std::string(family) +
                     "' (valid families: " + valid_family_names() + ")");
  return *arch;
}

const Architecture* Architecture::try_of(std::string_view family) {
  const auto& index = family_index();
  const auto it = index.find(family);
  return it == index.end() ? nullptr : it->second;
}

std::vector<std::string> Architecture::families() {
  std::vector<std::string> names;
  for (const FamilyArchitecture& arch : family_table())
    names.emplace_back(arch.family());
  return names;
}

namespace {

/// Context-carrying check helpers: every failure names the machine and
/// the dotted field, so a registry scan over ten specs pinpoints the
/// broken line immediately.
[[noreturn]] void fail(const MachineSpec& m, const std::string& field,
                       const std::string& problem) {
  throw UsageError("machine '" + m.name + "': " + field + ": " + problem);
}

void require_positive(const MachineSpec& m, const std::string& field,
                      double value) {
  if (!(value > 0.0) || !std::isfinite(value))
    fail(m, field, "must be positive and finite, got " +
                       util::strfmt("%g", value));
}

void require_non_negative(const MachineSpec& m, const std::string& field,
                          double value) {
  if (!(value >= 0.0) || !std::isfinite(value))
    fail(m, field, "must be non-negative and finite, got " +
                       util::strfmt("%g", value));
}

void validate_direction(const MachineSpec& m, const std::string& prefix,
                        const PcieDirectionProfile& profile) {
  require_positive(m, prefix + ".asymptotic_gbps", profile.asymptotic_gbps);
  require_non_negative(m, prefix + ".latency_s", profile.latency_s);
  require_non_negative(m, prefix + ".hump_extra_s", profile.hump_extra_s);
  require_positive(m, prefix + ".hump_center_bytes",
                   profile.hump_center_bytes);
  require_positive(m, prefix + ".hump_log_width", profile.hump_log_width);
  require_non_negative(m, prefix + ".page_staging_s_per_page",
                       profile.page_staging_s_per_page);
  // A claimed payload bandwidth above the link's theoretical capacity is
  // a mis-specified machine, not an aggressive one — the model would
  // happily project transfers faster than the wire.
  const double peak = m.pcie.peak_gbps();
  if (peak > 0.0 && profile.asymptotic_gbps > peak)
    fail(m, prefix + ".asymptotic_gbps",
         util::strfmt("%.3g GB/s exceeds the PCIe gen%d x%d link's "
                      "theoretical %.3g GB/s",
                      profile.asymptotic_gbps, m.pcie.generation,
                      m.pcie.lanes, peak));
}

}  // namespace

void validate_machine(const MachineSpec& machine) {
  const MachineSpec& m = machine;
  if (m.name.empty()) fail(m, "name", "must be non-empty");

  // --- cpu ---
  if (m.cpu.sockets <= 0) fail(m, "cpu.sockets", "must be positive");
  if (m.cpu.cores_per_socket <= 0)
    fail(m, "cpu.cores_per_socket", "must be positive");
  if (m.cpu.threads <= 0) fail(m, "cpu.threads", "must be positive");
  require_positive(m, "cpu.clock_ghz", m.cpu.clock_ghz);
  require_positive(m, "cpu.flops_per_cycle_per_core",
                   m.cpu.flops_per_cycle_per_core);
  require_positive(m, "cpu.mem_bandwidth_gbps", m.cpu.mem_bandwidth_gbps);
  require_positive(m, "cpu.per_core_bw_gbps", m.cpu.per_core_bw_gbps);
  if (m.cpu.llc_bytes == 0) fail(m, "cpu.llc_bytes", "must be positive");

  // --- gpu (family first: its wave geometry anchors the other checks) ---
  const Architecture* arch = Architecture::try_of(m.gpu.family);
  if (arch == nullptr)
    fail(m, "gpu.family",
         "unknown architecture family '" + m.gpu.family +
             "' (valid families: " + valid_family_names() + ")");
  if (m.gpu.num_sms <= 0) fail(m, "gpu.num_sms", "must be positive");
  if (m.gpu.cores_per_sm <= 0)
    fail(m, "gpu.cores_per_sm", "must be positive");
  require_positive(m, "gpu.core_clock_ghz", m.gpu.core_clock_ghz);
  require_positive(m, "gpu.mem_bandwidth_gbps", m.gpu.mem_bandwidth_gbps);
  if (m.gpu.memory_bytes == 0) fail(m, "gpu.memory_bytes", "must be positive");
  if (m.gpu.warp_size <= 0) fail(m, "gpu.warp_size", "must be positive");
  if (m.gpu.max_threads_per_sm < m.gpu.warp_size)
    fail(m, "gpu.max_threads_per_sm", "must be at least one wavefront");
  if (m.gpu.max_threads_per_block < m.gpu.warp_size ||
      m.gpu.max_threads_per_block > m.gpu.max_threads_per_sm)
    fail(m, "gpu.max_threads_per_block",
         "must lie between gpu.warp_size and gpu.max_threads_per_sm");
  if (m.gpu.max_blocks_per_sm <= 0)
    fail(m, "gpu.max_blocks_per_sm", "must be positive");
  if (m.gpu.registers_per_sm == 0)
    fail(m, "gpu.registers_per_sm", "must be positive");
  if (m.gpu.shared_mem_per_sm_bytes == 0)
    fail(m, "gpu.shared_mem_per_sm_bytes", "must be positive");
  if (m.gpu.reg_alloc_granularity == 0)
    fail(m, "gpu.reg_alloc_granularity", "must be at least 1");
  if (m.gpu.smem_alloc_granularity_bytes == 0)
    fail(m, "gpu.smem_alloc_granularity_bytes", "must be at least 1");
  if (m.gpu.transaction_bytes <= 0)
    fail(m, "gpu.transaction_bytes", "must be positive");
  require_positive(m, "gpu.dram_latency_cycles", m.gpu.dram_latency_cycles);
  require_positive(m, "gpu.flops_per_core_per_cycle",
                   m.gpu.flops_per_core_per_cycle);
  require_non_negative(m, "gpu.kernel_launch_overhead_s",
                       m.gpu.kernel_launch_overhead_s);
  try {
    arch->validate(m.gpu);
  } catch (const UsageError& e) {
    throw UsageError("machine '" + m.name + "': " + e.what());
  }

  // --- pcie ---
  if (PcieSpec::per_lane_gbps(m.pcie.generation) <= 0.0)
    fail(m, "pcie.generation",
         util::strfmt("unsupported generation %d (supported: 1-5)",
                      m.pcie.generation));
  if (m.pcie.lanes <= 0) fail(m, "pcie.lanes", "must be positive");
  if (m.pcie.generation > arch->max_pcie_generation())
    fail(m, "pcie.generation",
         util::strfmt("gen%d link paired with a %s-family device "
                      "(newest supported: gen%d) — such a machine cannot "
                      "exist",
                      m.pcie.generation, m.gpu.family.c_str(),
                      arch->max_pcie_generation()));
  validate_direction(m, "pcie.pinned_h2d", m.pcie.pinned_h2d);
  validate_direction(m, "pcie.pinned_d2h", m.pcie.pinned_d2h);
  validate_direction(m, "pcie.pageable_h2d", m.pcie.pageable_h2d);
  validate_direction(m, "pcie.pageable_d2h", m.pcie.pageable_d2h);
  require_non_negative(m, "pcie.noise.sigma_floor", m.pcie.noise.sigma_floor);
  require_non_negative(m, "pcie.noise.sigma_small", m.pcie.noise.sigma_small);
  require_positive(m, "pcie.noise.small_scale_bytes",
                   m.pcie.noise.small_scale_bytes);
  if (m.pcie.noise.outlier_probability < 0.0 ||
      m.pcie.noise.outlier_probability > 1.0)
    fail(m, "pcie.noise.outlier_probability", "must lie in [0, 1]");

  // --- alloc ---
  require_non_negative(m, "alloc.device_base_s", m.alloc.device_base_s);
  require_non_negative(m, "alloc.pinned_base_s", m.alloc.pinned_base_s);
  require_non_negative(m, "alloc.pageable_base_s", m.alloc.pageable_base_s);
}

}  // namespace grophecy::hw
