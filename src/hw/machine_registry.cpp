#include "hw/machine_registry.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "hw/architecture.h"
#include "hw/machine_file.h"
#include "hw/registry.h"
#include "util/error.h"

namespace grophecy::hw {

namespace fs = std::filesystem;

void MachineRegistry::add(MachineSpec spec) {
  add_shared(std::make_shared<const MachineSpec>(std::move(spec)),
             "in-code spec");
}

void MachineRegistry::add_file(const std::string& path) {
  add_shared(parse_machine_file_cached(path), path);
}

void MachineRegistry::add_shared(std::shared_ptr<const MachineSpec> spec,
                                 const std::string& source) {
  validate_machine(*spec);
  const auto existing = sources_.find(spec->name);
  if (existing != sources_.end())
    throw UsageError("machine '" + spec->name + "' from " + source +
                     " is already registered (from " + existing->second +
                     "); registry names must be unique");
  index_.emplace(spec->name, machines_.size());
  sources_.emplace(spec->name, source);
  machines_.push_back(std::move(spec));
}

std::size_t MachineRegistry::scan_directory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    throw UsageError("machine directory '" + dir +
                     "' does not exist or is not a directory");
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".gmach")
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) add_file(path);
  return paths.size();
}

const MachineSpec& MachineRegistry::find(const std::string& name) const {
  const MachineSpec* spec = try_find(name);
  if (spec == nullptr) {
    std::string valid;
    for (const auto& machine : machines_) {
      if (!valid.empty()) valid += ", ";
      valid += machine->name;
    }
    throw UsageError("unknown machine '" + name + "' (valid: " + valid + ")");
  }
  return *spec;
}

const MachineSpec* MachineRegistry::try_find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : machines_[it->second].get();
}

std::vector<std::string> MachineRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(machines_.size());
  for (const auto& machine : machines_) result.push_back(machine->name);
  return result;
}

const MachineRegistry& MachineRegistry::global() {
  static const MachineRegistry registry = [] {
    MachineRegistry r;
    for (MachineSpec& machine : builtin_machines()) r.add(std::move(machine));
#ifdef GROPHECY_MACHINE_DIR
    // The shipped fleet. Tolerate a deleted directory (an installed binary
    // without the source tree) — scripts/verify.sh checks for drift — but
    // a *present* directory with a bad spec fails loudly here.
    std::error_code ec;
    if (fs::is_directory(GROPHECY_MACHINE_DIR, ec))
      r.scan_directory(GROPHECY_MACHINE_DIR);
#endif
    if (const char* extra = std::getenv("GROPHECY_MACHINE_PATH")) {
      std::string path(extra);
      std::size_t begin = 0;
      while (begin <= path.size()) {
        const std::size_t end = path.find(':', begin);
        const std::string dir =
            path.substr(begin, end == std::string::npos ? std::string::npos
                                                        : end - begin);
        if (!dir.empty()) r.scan_directory(dir);  // strict: user asked for it
        if (end == std::string::npos) break;
        begin = end + 1;
      }
    }
    return r;
  }();
  return registry;
}

}  // namespace grophecy::hw
