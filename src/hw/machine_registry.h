// The machine registry: every system the framework can project against.
//
// The paper recalibrates its bus model "automatically for each new system"
// (§I); the registry is where those systems live. It holds the three
// built-in machines (hw/registry.h) plus every `.gmach` spec found in the
// shipped `src/hw/machines/` directory and any extra directories named by
// the GROPHECY_MACHINE_PATH environment variable (colon-separated, scanned
// in order after the shipped set).
//
// Every admitted spec passes hw::validate_machine() — positive geometry,
// a known architecture family, interconnect bandwidths that fit inside the
// link's theoretical capacity — and names are unique, so a lookup error
// can list the complete valid fleet (same UsageError contract as
// workloads::find_workload). File-backed specs are parsed through the
// content-addressed parse_machine_cached, so identical documents share one
// immutable MachineSpec with every other subsystem.
//
// The process-wide fleet is MachineRegistry::global(): built once, then
// immutable, safe to read from concurrent sweep workers. Tests and tools
// build their own mutable instances.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine.h"

namespace grophecy::hw {

class MachineRegistry {
 public:
  MachineRegistry() = default;

  /// Validates and registers a spec. Throws UsageError if the spec fails
  /// validate_machine() or its name is already registered.
  void add(MachineSpec spec);

  /// Parses, validates, and registers one `.gmach` file (through the
  /// content-addressed parse cache). Throws MachineParseError for a
  /// malformed document, UsageError for an invalid or duplicate machine.
  void add_file(const std::string& path);

  /// Registers every `*.gmach` file in `dir`, in filename order (so
  /// registration order never depends on directory enumeration order).
  /// Returns the number of machines added. Throws UsageError if `dir` is
  /// not a directory; parse/validation errors propagate with the offending
  /// path attached.
  std::size_t scan_directory(const std::string& dir);

  /// Looks a machine up by name; throws UsageError listing every
  /// registered name if unknown.
  const MachineSpec& find(const std::string& name) const;

  /// Looks a machine up by name; nullptr if unknown.
  const MachineSpec* try_find(const std::string& name) const;

  /// Registered names in registration order (builtins first for the
  /// global registry). This is the canonical cross-machine sweep order.
  std::vector<std::string> names() const;

  /// The registered specs, registration order. Shared-ownership pointers:
  /// file-backed entries alias the content-addressed parse cache.
  const std::vector<std::shared_ptr<const MachineSpec>>& machines() const {
    return machines_;
  }

  std::size_t size() const { return machines_.size(); }
  bool empty() const { return machines_.empty(); }

  /// The process-wide fleet: builtins, then the shipped `src/hw/machines/`
  /// specs, then GROPHECY_MACHINE_PATH directories. Built on first use,
  /// immutable afterwards. A malformed shipped or user spec throws on
  /// first access — loudly, not lazily per lookup.
  static const MachineRegistry& global();

 private:
  void add_shared(std::shared_ptr<const MachineSpec> spec,
                  const std::string& source);

  std::vector<std::shared_ptr<const MachineSpec>> machines_;
  std::map<std::string, std::size_t> index_;
  /// Where each name came from ("builtin" or a file path), for duplicate
  /// diagnostics.
  std::map<std::string, std::string> sources_;
};

}  // namespace grophecy::hw
