#include "hw/machine.h"

namespace grophecy::hw {

const PcieDirectionProfile& PcieSpec::profile(Direction dir,
                                              HostMemory mem) const {
  if (mem == HostMemory::kPinned) {
    return dir == Direction::kHostToDevice ? pinned_h2d : pinned_d2h;
  }
  return dir == Direction::kHostToDevice ? pageable_h2d : pageable_d2h;
}

double PcieSpec::per_lane_gbps(int generation) {
  switch (generation) {
    case 1: return 0.25;    // 2.5 GT/s, 8b/10b
    case 2: return 0.5;     // 5.0 GT/s, 8b/10b
    case 3: return 0.985;   // 8.0 GT/s, 128b/130b
    case 4: return 1.969;   // 16 GT/s, 128b/130b
    case 5: return 3.938;   // 32 GT/s, 128b/130b
    default: return 0.0;
  }
}

}  // namespace grophecy::hw
