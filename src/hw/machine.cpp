#include "hw/machine.h"

namespace grophecy::hw {

const PcieDirectionProfile& PcieSpec::profile(Direction dir,
                                              HostMemory mem) const {
  if (mem == HostMemory::kPinned) {
    return dir == Direction::kHostToDevice ? pinned_h2d : pinned_d2h;
  }
  return dir == Direction::kHostToDevice ? pageable_h2d : pageable_d2h;
}

}  // namespace grophecy::hw
