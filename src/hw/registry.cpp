#include "hw/registry.h"

#include "hw/machine_registry.h"
#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::hw {

namespace {

// Shared noise character of a healthy PCIe link: ~0.4% jitter on large
// transfers, a few percent on tiny ones (paper §V-A attributes most of the
// residual model error to this inherent variation).
PcieNoiseProfile default_noise() {
  PcieNoiseProfile noise;
  noise.sigma_floor = 0.004;
  noise.sigma_small = 0.030;
  noise.small_scale_bytes = 64.0 * 1024;
  noise.outlier_probability = 0.0;
  noise.outlier_factor = 2.2;
  return noise;
}

}  // namespace

MachineSpec anl_eureka() {
  MachineSpec m;
  m.name = "anl_eureka";

  m.cpu.name = "Intel Xeon E5405 @ 2.00GHz";
  m.cpu.sockets = 1;
  m.cpu.cores_per_socket = 4;
  m.cpu.threads = 8;  // paper: OpenMP with 8 threads
  m.cpu.clock_ghz = 2.0;
  m.cpu.flops_per_cycle_per_core = 8.0;  // 4-wide SSE, add + mul ports
  m.cpu.mem_bandwidth_gbps = 10.6;       // FSB-1333 era front-side bus
  m.cpu.per_core_bw_gbps = 3.5;          // one Harpertown core alone
  m.cpu.llc_bytes = 12ULL * util::kMiB;  // 2 x 6 MB L2
  m.cpu.achieved_bw_fraction = 0.60;
  m.cpu.parallel_efficiency = 0.82;
  m.cpu.timing_jitter_sigma = 0.02;

  m.gpu.name = "NVIDIA Quadro FX 5600 (G80)";
  m.gpu.memory_bytes = 1536ULL * util::kMiB;
  m.gpu.num_sms = 16;
  m.gpu.cores_per_sm = 8;
  m.gpu.core_clock_ghz = 1.35;
  m.gpu.mem_bandwidth_gbps = 76.8;
  m.gpu.warp_size = 32;
  m.gpu.max_threads_per_sm = 768;
  m.gpu.max_blocks_per_sm = 8;
  m.gpu.max_threads_per_block = 512;
  m.gpu.registers_per_sm = 8192;
  m.gpu.shared_mem_per_sm_bytes = 16 * 1024;
  m.gpu.dram_latency_cycles = 540.0;
  m.gpu.transaction_bytes = 128;  // G80 coalesces into 128B segments
  m.gpu.flops_per_core_per_cycle = 2.0;
  m.gpu.kernel_launch_overhead_s = 20e-6;  // CUDA 2.3-era driver
  // G80 realism: no L1 cache for global loads, strict coalescing rules, and
  // modest scheduling -> streaming kernels see well under peak bandwidth and
  // irregular kernels pay heavy replay penalties.
  m.gpu.achieved_bw_fraction = 0.74;
  m.gpu.uncoalesced_replay_factor = 1.28;
  m.gpu.indirect_access_penalty = 1.32;
  m.gpu.instruction_overhead = 1.15;
  m.gpu.sync_cycles = 48.0;
  m.gpu.gather_stream_fraction = 0.30;
  m.gpu.timing_jitter_sigma = 0.015;

  m.pcie.name = "PCIe v1 x16";
  m.pcie.generation = 1;
  m.pcie.lanes = 16;
  // Pinned memory: DMA straight from host memory. Calibrated to the paper:
  // alpha on the order of 10 us, asymptotic bandwidth ~2.5 GB/s (§III-C).
  // The h2d hump is larger than d2h, matching the paper's observation that
  // CPU-to-GPU predictions err more (max 6.4%) than GPU-to-CPU (max 3.3%).
  m.pcie.pinned_h2d.latency_s = 11e-6;
  m.pcie.pinned_h2d.asymptotic_gbps = 2.55;
  m.pcie.pinned_h2d.hump_extra_s = 2.2e-6;
  m.pcie.pinned_h2d.hump_center_bytes = 32.0 * 1024;
  m.pcie.pinned_h2d.hump_log_width = 1.5;
  m.pcie.pinned_d2h.latency_s = 12e-6;
  m.pcie.pinned_d2h.asymptotic_gbps = 2.35;
  m.pcie.pinned_d2h.hump_extra_s = 0.5e-6;
  m.pcie.pinned_d2h.hump_center_bytes = 32.0 * 1024;
  m.pcie.pinned_d2h.hump_log_width = 1.4;
  // Pageable memory: the driver stages through an internal pinned buffer,
  // adding a per-page copy cost and extra mid-size non-linearity (paper
  // footnote 4). Host-to-device latency is *lower* than pinned for tiny
  // transfers -- the paper observes pageable winning below ~2 KB.
  m.pcie.pageable_h2d.latency_s = 8e-6;
  m.pcie.pageable_h2d.asymptotic_gbps = 2.50;
  m.pcie.pageable_h2d.hump_extra_s = 16e-6;
  m.pcie.pageable_h2d.hump_center_bytes = 256.0 * 1024;
  m.pcie.pageable_h2d.hump_log_width = 1.2;
  m.pcie.pageable_h2d.page_staging_s_per_page = 2.5e-6;
  m.pcie.pageable_d2h.latency_s = 20e-6;
  m.pcie.pageable_d2h.asymptotic_gbps = 2.30;
  m.pcie.pageable_d2h.hump_extra_s = 20e-6;
  m.pcie.pageable_d2h.hump_center_bytes = 256.0 * 1024;
  m.pcie.pageable_d2h.hump_log_width = 1.2;
  m.pcie.pageable_d2h.page_staging_s_per_page = 2.2e-6;
  m.pcie.noise = default_noise();
  return m;
}

MachineSpec pcie2_fermi() {
  MachineSpec m = anl_eureka();
  m.name = "pcie2_fermi";

  m.cpu.name = "Intel Xeon X5650 @ 2.67GHz";
  m.cpu.cores_per_socket = 6;
  m.cpu.threads = 12;
  m.cpu.clock_ghz = 2.67;
  m.cpu.mem_bandwidth_gbps = 32.0;
  m.cpu.per_core_bw_gbps = 8.0;
  m.cpu.llc_bytes = 12ULL * util::kMiB;
  m.cpu.achieved_bw_fraction = 0.80;

  m.gpu.name = "NVIDIA Tesla C2050 (Fermi)";
  m.gpu.family = "fermi";
  m.gpu.memory_bytes = 3ULL * util::kGiB;
  m.gpu.num_sms = 14;
  m.gpu.cores_per_sm = 32;
  m.gpu.core_clock_ghz = 1.15;
  m.gpu.mem_bandwidth_gbps = 144.0;
  m.gpu.max_threads_per_sm = 1536;
  m.gpu.max_threads_per_block = 1024;
  m.gpu.registers_per_sm = 32768;
  m.gpu.shared_mem_per_sm_bytes = 48 * 1024;
  m.gpu.dram_latency_cycles = 450.0;
  m.gpu.kernel_launch_overhead_s = 8e-6;
  m.gpu.achieved_bw_fraction = 0.80;     // L1/L2 caches soften replay costs
  m.gpu.uncoalesced_replay_factor = 1.25;
  m.gpu.indirect_access_penalty = 1.35;

  m.pcie.name = "PCIe v2 x16";
  m.pcie.generation = 2;
  m.pcie.pinned_h2d.latency_s = 9e-6;
  m.pcie.pinned_h2d.asymptotic_gbps = 5.8;
  m.pcie.pinned_d2h.latency_s = 10e-6;
  m.pcie.pinned_d2h.asymptotic_gbps = 5.4;
  m.pcie.pageable_h2d.latency_s = 5e-6;
  m.pcie.pageable_h2d.asymptotic_gbps = 5.6;
  m.pcie.pageable_h2d.page_staging_s_per_page = 0.6e-6;  // faster memcpy
  m.pcie.pageable_d2h.latency_s = 16e-6;
  m.pcie.pageable_d2h.asymptotic_gbps = 5.2;
  m.pcie.pageable_d2h.page_staging_s_per_page = 0.7e-6;
  return m;
}

MachineSpec pcie3_kepler() {
  MachineSpec m = pcie2_fermi();
  m.name = "pcie3_kepler";

  m.cpu.name = "Intel Xeon E5-2670 @ 2.60GHz";
  m.cpu.cores_per_socket = 8;
  m.cpu.threads = 16;
  m.cpu.clock_ghz = 2.6;
  m.cpu.flops_per_cycle_per_core = 16.0;  // AVX
  m.cpu.mem_bandwidth_gbps = 51.2;
  m.cpu.per_core_bw_gbps = 12.0;
  m.cpu.llc_bytes = 20ULL * util::kMiB;

  m.gpu.name = "NVIDIA Tesla K20 (Kepler)";
  m.gpu.family = "kepler";
  m.gpu.memory_bytes = 5ULL * util::kGiB;
  m.gpu.num_sms = 13;
  m.gpu.cores_per_sm = 192;
  m.gpu.core_clock_ghz = 0.706;
  m.gpu.mem_bandwidth_gbps = 208.0;
  m.gpu.max_threads_per_sm = 2048;
  m.gpu.registers_per_sm = 65536;
  m.gpu.dram_latency_cycles = 400.0;
  m.gpu.kernel_launch_overhead_s = 6e-6;
  m.gpu.achieved_bw_fraction = 0.82;
  m.gpu.uncoalesced_replay_factor = 1.20;
  m.gpu.indirect_access_penalty = 1.30;

  m.pcie.name = "PCIe v3 x16";
  m.pcie.generation = 3;
  m.pcie.pinned_h2d.latency_s = 8e-6;
  m.pcie.pinned_h2d.asymptotic_gbps = 11.8;
  m.pcie.pinned_d2h.latency_s = 9e-6;
  m.pcie.pinned_d2h.asymptotic_gbps = 11.2;
  m.pcie.pageable_h2d.latency_s = 5e-6;
  m.pcie.pageable_h2d.asymptotic_gbps = 11.0;
  m.pcie.pageable_h2d.page_staging_s_per_page = 0.3e-6;  // DDR4-era memcpy
  m.pcie.pageable_d2h.latency_s = 14e-6;
  m.pcie.pageable_d2h.asymptotic_gbps = 10.4;
  m.pcie.pageable_d2h.page_staging_s_per_page = 0.35e-6;
  return m;
}

std::vector<MachineSpec> builtin_machines() {
  return {anl_eureka(), pcie2_fermi(), pcie3_kepler()};
}

std::vector<MachineSpec> all_machines() { return builtin_machines(); }

MachineSpec machine_by_name(const std::string& name) {
  return MachineRegistry::global().find(name);
}

}  // namespace grophecy::hw
