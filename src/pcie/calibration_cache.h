// Process-wide cache of PCIe calibration results.
//
// The paper notes calibration is "automatically invoked when run on a new
// system" (§III-C) — i.e. once per system, not once per projection. The
// framework's calibration is a pure function of
//
//   (machine PCIe spec, calibration options, host memory mode, RNG seed)
//
// so two engines targeting the same system with the same procedure must
// arrive at the same model — and the second one has no reason to re-run
// the probes. This cache provides that sharing process-wide: the seven
// paper benches and every per-job engine a parallel sweep constructs
// calibrate the Argonne testbed once, and every later construction is a
// lookup.
//
// Concurrency: get_or_calibrate() is single-flight per key. When several
// sweep workers construct engines for the same machine simultaneously,
// exactly one runs the calibration; the rest block on a shared future and
// receive the same report. Distinct keys calibrate concurrently (the
// factory runs outside the cache lock).
//
// Determinism: the key includes the calibration seed, so a cached report
// is bit-identical to what the caller would have measured itself. Cache
// hits change wall-clock time, never results.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>

#include "hw/machine.h"
#include "pcie/calibrator.h"

namespace grophecy::pcie {

/// Deterministic fingerprint of everything the calibration result depends
/// on: every field of the machine's PCIe spec (profiles + noise), the
/// full CalibrationOptions (probe sizes, replication, fit, estimator,
/// robustness), the host memory mode, and the calibration RNG seed.
/// FNV-1a over the field bytes; stable within a process lifetime, which
/// is all a process-wide cache needs.
std::string calibration_cache_key(const hw::PcieSpec& spec,
                                  const CalibrationOptions& options,
                                  hw::HostMemory memory, std::uint64_t seed);

/// The process-wide calibration cache. Thread-safe; see file comment.
class CalibrationCache {
 public:
  using Factory = std::function<CalibrationReport()>;

  /// The singleton instance shared by every engine in the process.
  static CalibrationCache& instance();

  /// Returns the cached report for `key`, running `factory` (outside the
  /// lock) exactly once per key to produce it. Concurrent callers with
  /// the same key block until the in-flight calibration finishes. The
  /// returned copy has from_cache/cache_hits/cache_misses stamped; the
  /// stored entry keeps from_cache = false. A throwing factory poisons
  /// nothing: every waiter joined to the failed flight observes the same
  /// typed exception, the failed entry — and only that entry, never a
  /// fresh flight that raced in after a clear() — is evicted, and the
  /// next request for the key retriggers calibration.
  CalibrationReport get_or_calibrate(const std::string& key,
                                     const Factory& factory);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

  /// Cached entries (completed or in flight).
  std::size_t size() const;

  /// Drops every entry and zeroes the counters (tests; a long-lived
  /// daemon recalibrating on a schedule would also use this).
  void clear();

 private:
  CalibrationCache() = default;

  /// One calibration in flight (or completed). Entries are held behind a
  /// shared_ptr so a failed flight can be evicted by *identity*: the
  /// owner erases the map slot only while it still holds this exact
  /// flight, never a successor installed after a concurrent clear().
  struct Flight {
    std::shared_future<CalibrationReport> future;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Flight>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace grophecy::pcie
