// Two-point calibration of the linear transfer model (paper §III-C).
//
// "To determine alpha, we measure the transfer time t_S of a single byte;
//  we then set alpha = t_S. To determine beta, we measure the time t_L of a
//  large transfer of size s_L = 512MB and then set beta = t_L / s_L. Both
//  t_S and t_L are averaged across ten runs."
//
// The calibrator runs this synthetic benchmark against any TransferTimer,
// which is how GROPHECY++ "automatically measures the values of the two
// parameters for each new system on which it runs".
#pragma once

#include <cstdint>

#include "hw/machine.h"
#include "pcie/bus.h"
#include "pcie/linear_model.h"
#include "util/units.h"

namespace grophecy::pcie {

/// Knobs of the calibration procedure; defaults are the paper's choices.
/// The ablation bench sweeps these to justify them.
struct CalibrationOptions {
  std::uint64_t small_bytes = 1;                  ///< alpha probe size.
  std::uint64_t large_bytes = 512 * util::kMiB;   ///< beta probe size.
  int replicates = 10;                            ///< runs averaged per probe.
};

/// Calibrates LinearTransferModel / BusModel instances from measurements.
class TransferCalibrator {
 public:
  explicit TransferCalibrator(CalibrationOptions options = {});

  /// Calibrates one direction. Requires small_bytes < large_bytes.
  LinearTransferModel calibrate_direction(TransferTimer& timer,
                                          hw::Direction dir,
                                          hw::HostMemory mem) const;

  /// Calibrates both directions under one memory mode (pinned by default,
  /// per the paper's assumption that pinned memory is used).
  BusModel calibrate(TransferTimer& timer,
                     hw::HostMemory mem = hw::HostMemory::kPinned) const;

  const CalibrationOptions& options() const { return options_; }

 private:
  CalibrationOptions options_;
};

}  // namespace grophecy::pcie
