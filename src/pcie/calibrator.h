// Calibration of the linear transfer model (paper §III-C), in two grades.
//
// The paper's procedure:
//
// "To determine alpha, we measure the transfer time t_S of a single byte;
//  we then set alpha = t_S. To determine beta, we measure the time t_L of a
//  large transfer of size s_L = 512MB and then set beta = t_L / s_L. Both
//  t_S and t_L are averaged across ten runs."
//
// calibrate() reproduces that exactly. It is also fragile: §V-A reports
// occasional transfers taking ~2x the expected time, and a single such
// outlier among ten averaged runs corrupts alpha or beta by ~10% — which
// then skews *every* downstream prediction. calibrate_robust() is the
// hardened pipeline (see docs/robustness.md):
//
//   * per-sample retry with bounded exponential backoff on
//     MeasurementError (transient failures),
//   * a watchdog timeout converting stuck/hung observations into
//     retryable timeouts,
//   * median/MAD outlier rejection before estimating each probe,
//   * adaptive replication: sampling continues until the relative 95% CI
//     half-width of the probe estimate drops below a target (or a budget
//     cap is hit),
//   * an optional Theil–Sen median-of-slopes fit over a multi-size probe
//     sweep instead of the two-point fit, and
//   * graceful degradation: when measurement cannot converge, the
//     spec-derived model (pcie::bus_model_from_spec) is returned with a
//     structured warning instead of garbage or an escaped exception.
//
// calibrate_robust() returns a CalibrationReport carrying the model plus
// fit quality, per-probe telemetry (kept/rejected samples, retries,
// timeouts, recorded backoff), and the degradation status, so callers can
// audit how trustworthy the parameters are.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "pcie/bus.h"
#include "pcie/linear_model.h"
#include "util/units.h"

namespace grophecy::pcie {

/// How probe estimates are turned into (alpha, beta).
enum class FitMethod {
  /// Paper §III-C: alpha = t(small), beta = t(large) / large.
  kTwoPoint,
  /// Theil–Sen median-of-slopes over CalibrationOptions::sweep_bytes.
  /// Robust to outlier *probes* (breakdown ~29%), at the price of an
  /// intercept that absorbs some of the mid-size non-linearity.
  kTheilSen,
};

/// How replicate samples of one probe reduce to a single estimate.
enum class ProbeEstimator {
  kMean,    ///< Paper default; outlier-sensitive (see SimulatedBus docs).
  kMedian,  ///< Robust to up to half the samples being wild.
};

/// Knobs of the robust measurement loop. The default-constructed value
/// disables everything so the pipeline reproduces the paper's procedure
/// sample-for-sample; robust() is the recommended hardened profile.
struct RobustnessOptions {
  /// Extra attempts per sample when the timer throws MeasurementError.
  /// 0 disables retrying (any failure immediately fails the probe).
  int max_retries = 0;
  /// Backoff before retry k is min(backoff_initial_s * 2^k, backoff_max_s).
  /// Recorded in the telemetry; the simulated harness does not sleep, a
  /// real-hardware timer would.
  double backoff_initial_s = 1e-3;
  double backoff_max_s = 0.25;
  /// Samples slower than this are treated as hung and converted into
  /// retryable timeout failures (MeasurementError with timed_out() true).
  double timeout_s = std::numeric_limits<double>::infinity();
  /// Median/MAD outlier rejection (modified z-score > outlier_z is
  /// dropped) before the probe estimate is computed.
  bool reject_outliers = false;
  double outlier_z = 3.5;
  /// Adaptive replication: after the initial CalibrationOptions::replicates
  /// samples, keep sampling until the relative 95% CI half-width of the
  /// kept samples' mean is <= target_rel_half_width, or max_replicates
  /// samples have been drawn.
  bool adaptive = false;
  double target_rel_half_width = 0.02;
  int max_replicates = 200;

  /// The recommended hardened profile: 3 retries, outlier rejection,
  /// adaptive replication to 2% CI, 60 s watchdog.
  static RobustnessOptions robust();
};

/// Knobs of the calibration procedure; defaults are the paper's choices.
/// The ablation bench sweeps these to justify them.
struct CalibrationOptions {
  std::uint64_t small_bytes = 1;                  ///< alpha probe size.
  std::uint64_t large_bytes = 512 * util::kMiB;   ///< beta probe size.
  int replicates = 10;                            ///< runs averaged per probe.
  FitMethod fit = FitMethod::kTwoPoint;
  ProbeEstimator estimator = ProbeEstimator::kMean;
  /// Probe sizes for FitMethod::kTheilSen; when empty, a default
  /// log-spaced sweep from small_bytes to large_bytes is used.
  std::vector<std::uint64_t> sweep_bytes;
  RobustnessOptions robustness;

  /// The paper's procedure (same as default construction).
  static CalibrationOptions paper();
  /// Two-point fit hardened with RobustnessOptions::robust() and a
  /// median estimator.
  static CalibrationOptions robust();
};

/// What happened while measuring one probe size (one direction).
struct ProbeTelemetry {
  std::uint64_t bytes = 0;
  int samples_kept = 0;      ///< Samples surviving outlier rejection.
  int samples_rejected = 0;  ///< Samples dropped by the median/MAD filter.
  int retries = 0;           ///< Failed attempts that were retried.
  int timeouts = 0;          ///< Of those, watchdog timeouts.
  double backoff_total_s = 0.0;  ///< Total backoff the policy would sleep.
  double estimate_s = 0.0;       ///< The probe's final estimate.
  double rel_half_width = 0.0;   ///< Achieved relative 95% CI half-width.
};

/// Calibration outcome for one direction.
struct DirectionCalibration {
  LinearTransferModel model;
  std::vector<ProbeTelemetry> probes;
  /// Fit quality over the probe estimates (1.0 for the two-point fit,
  /// which is exact by construction).
  double r_squared = 1.0;
  /// True when this direction's model came from hw::PcieSpec instead of
  /// measurements.
  bool from_spec = false;
};

/// Compact health summary, embeddable in higher-level reports
/// (core::ProjectionReport) without dragging the full telemetry along.
struct CalibrationSummary {
  bool converged = true;      ///< Measurements produced the model.
  bool used_fallback = false; ///< Model degraded to the spec-derived one.
  int retries = 0;
  int rejected_samples = 0;
  int timeouts = 0;
  std::string warning;        ///< Non-empty when degraded.
};

/// Everything calibrate_robust() learned: the model plus the evidence.
struct CalibrationReport {
  BusModel model;
  DirectionCalibration h2d;
  DirectionCalibration d2h;
  bool converged = false;      ///< Both directions measured successfully.
  bool used_fallback = false;  ///< Spec-derived degradation was taken.
  std::string warning;         ///< Why degradation happened (if it did).

  /// --- calibration-cache provenance (see pcie::CalibrationCache) ---
  /// True when this report was served from the process-wide cache instead
  /// of being measured by the holder; the measured values are identical
  /// either way (calibration is a pure function of machine, options, and
  /// seed), only the work was skipped.
  bool from_cache = false;
  /// Process-wide cache counters at the moment this report was obtained
  /// (0/0 when the cache was bypassed).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  int total_retries() const;
  int total_rejected() const;
  int total_timeouts() const;
  CalibrationSummary summary() const;
  /// Multi-line human-readable account (model, fit quality, telemetry).
  std::string describe() const;
};

/// Calibrates LinearTransferModel / BusModel instances from measurements.
class TransferCalibrator {
 public:
  explicit TransferCalibrator(CalibrationOptions options = {});

  /// Calibrates one direction, honoring every option (fit method,
  /// estimator, robustness). Throws CalibrationError when the probes
  /// cannot be measured within the retry budget. With default options this
  /// is the paper's procedure, sample for sample.
  LinearTransferModel calibrate_direction(TransferTimer& timer,
                                          hw::Direction dir,
                                          hw::HostMemory mem) const;

  /// Calibrates both directions under one memory mode (pinned by default,
  /// per the paper's assumption that pinned memory is used).
  BusModel calibrate(TransferTimer& timer,
                     hw::HostMemory mem = hw::HostMemory::kPinned) const;

  /// The resilient pipeline (see file comment). Degradation ladder:
  ///   1. every sample retried up to robustness.max_retries times,
  ///   2. a probe whose retry budget is exhausted fails the direction,
  ///   3. a failed direction degrades to the spec-derived model when
  ///      `fallback_spec` is provided (report.used_fallback set, warning
  ///      populated, nothing thrown),
  ///   4. without `fallback_spec`, CalibrationError is thrown.
  /// With default options the measurement sequence is sample-for-sample
  /// identical to calibrate().
  CalibrationReport calibrate_robust(
      TransferTimer& timer, hw::HostMemory mem = hw::HostMemory::kPinned,
      const hw::PcieSpec* fallback_spec = nullptr) const;

  const CalibrationOptions& options() const { return options_; }

 private:
  /// Returns false (with `failure` set) when the direction could not be
  /// calibrated; `out` keeps whatever telemetry was gathered either way.
  bool try_calibrate_direction(TransferTimer& timer, hw::Direction dir,
                               hw::HostMemory mem, DirectionCalibration& out,
                               std::string& failure) const;
  /// Returns false (with `failure` set) when the probe's retry budget was
  /// exhausted; `tel` keeps whatever telemetry was gathered either way.
  bool measure_probe(TransferTimer& timer, std::uint64_t bytes,
                     hw::Direction dir, hw::HostMemory mem,
                     ProbeTelemetry& tel, std::string& failure) const;

  CalibrationOptions options_;
};

}  // namespace grophecy::pcie
