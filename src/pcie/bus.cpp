#include "pcie/bus.h"

#include <cmath>
#include <vector>

#include "util/contracts.h"
#include "util/stats.h"
#include "util/units.h"

namespace grophecy::pcie {

SimulatedBus::SimulatedBus(hw::PcieSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {}

double SimulatedBus::expected_time(std::uint64_t bytes, hw::Direction dir,
                                   hw::HostMemory mem) const {
  GROPHECY_EXPECTS(bytes > 0);
  const hw::PcieDirectionProfile& p = spec_.profile(dir, mem);
  const double d = static_cast<double>(bytes);

  double t = p.latency_s + d / (p.asymptotic_gbps * util::kGB);

  if (p.hump_extra_s > 0.0) {
    const double z = std::log(d / p.hump_center_bytes) / p.hump_log_width;
    t += p.hump_extra_s * std::exp(-z * z);
  }
  if (p.page_staging_s_per_page > 0.0) {
    const double pages = std::ceil(d / 4096.0);
    t += pages * p.page_staging_s_per_page;
  }
  return t;
}

double SimulatedBus::time_transfer(std::uint64_t bytes, hw::Direction dir,
                                   hw::HostMemory mem) {
  const double base = expected_time(bytes, dir, mem);
  const hw::PcieNoiseProfile& n = spec_.noise;

  const double d = static_cast<double>(bytes);
  const double sigma = n.sigma_floor + n.sigma_small / (1.0 + d / n.small_scale_bytes);
  double t = rng_.lognormal(base, sigma);

  if (n.outlier_probability > 0.0 && rng_.bernoulli(n.outlier_probability)) {
    t *= n.outlier_factor;
  }
  return t;
}

double SimulatedBus::measure_mean(std::uint64_t bytes, hw::Direction dir,
                                  hw::HostMemory mem, int runs) {
  GROPHECY_EXPECTS(runs > 0);
  double sum = 0.0;
  for (int i = 0; i < runs; ++i) sum += time_transfer(bytes, dir, mem);
  return sum / runs;
}

double SimulatedBus::measure_median(std::uint64_t bytes, hw::Direction dir,
                                    hw::HostMemory mem, int runs) {
  GROPHECY_EXPECTS(runs > 0);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i)
    samples.push_back(time_transfer(bytes, dir, mem));
  return util::median(samples);
}

void SimulatedBus::set_noise(const hw::PcieNoiseProfile& noise) {
  spec_.noise = noise;
}

}  // namespace grophecy::pcie
