#include "pcie/linear_model.h"

#include "util/contracts.h"
#include "util/table.h"
#include "util/units.h"

namespace grophecy::pcie {

double LinearTransferModel::predict_seconds(std::uint64_t bytes) const {
  GROPHECY_EXPECTS(bytes > 0);
  GROPHECY_EXPECTS(alpha_s >= 0.0 && beta_s_per_byte > 0.0);
  return alpha_s + beta_s_per_byte * static_cast<double>(bytes);
}

double LinearTransferModel::bandwidth_gbps() const {
  GROPHECY_EXPECTS(beta_s_per_byte > 0.0);
  return 1.0 / beta_s_per_byte / util::kGB;
}

std::string LinearTransferModel::describe() const {
  return util::strfmt("alpha=%.2f us, bw=%.2f GB/s", alpha_s * 1e6,
                      bandwidth_gbps());
}

}  // namespace grophecy::pcie
