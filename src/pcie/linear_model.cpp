#include "pcie/linear_model.h"

#include "util/contracts.h"
#include "util/table.h"
#include "util/units.h"

namespace grophecy::pcie {

double LinearTransferModel::predict_seconds(std::uint64_t bytes) const {
  GROPHECY_EXPECTS(bytes > 0);
  GROPHECY_EXPECTS(alpha_s >= 0.0 && beta_s_per_byte > 0.0);
  return alpha_s + beta_s_per_byte * static_cast<double>(bytes);
}

double LinearTransferModel::bandwidth_gbps() const {
  GROPHECY_EXPECTS(beta_s_per_byte > 0.0);
  return 1.0 / beta_s_per_byte / util::kGB;
}

std::string LinearTransferModel::describe() const {
  return util::strfmt("alpha=%.2f us, bw=%.2f GB/s", alpha_s * 1e6,
                      bandwidth_gbps());
}

LinearTransferModel model_from_spec(const hw::PcieDirectionProfile& profile) {
  GROPHECY_EXPECTS(profile.latency_s > 0.0);
  GROPHECY_EXPECTS(profile.asymptotic_gbps > 0.0);
  LinearTransferModel model;
  model.alpha_s = profile.latency_s;
  model.beta_s_per_byte = 1.0 / (profile.asymptotic_gbps * util::kGB);
  return model;
}

BusModel bus_model_from_spec(const hw::PcieSpec& spec, hw::HostMemory mem) {
  BusModel bus;
  bus.memory_mode = mem;
  bus.h2d = model_from_spec(spec.profile(hw::Direction::kHostToDevice, mem));
  bus.d2h = model_from_spec(spec.profile(hw::Direction::kDeviceToHost, mem));
  return bus;
}

}  // namespace grophecy::pcie
