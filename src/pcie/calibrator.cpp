#include "pcie/calibrator.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/table.h"

namespace grophecy::pcie {

namespace {

/// Relative 95% CI half-width of the sample mean; infinite when the sample
/// is too small to estimate a spread.
double rel_half_width(std::span<const double> samples) {
  if (samples.size() < 2) return std::numeric_limits<double>::infinity();
  const double m = util::mean(samples);
  if (m <= 0.0) return std::numeric_limits<double>::infinity();
  const double sd = util::stddev(samples);
  return 1.96 * sd / std::sqrt(static_cast<double>(samples.size())) / m;
}

/// Bounded exponential backoff before retry `attempt` (0-based).
double backoff_seconds(const RobustnessOptions& r, int attempt) {
  return std::min(r.backoff_initial_s * std::pow(2.0, attempt),
                  r.backoff_max_s);
}

const char* direction_name(hw::Direction dir) {
  return dir == hw::Direction::kHostToDevice ? "H2D" : "D2H";
}

}  // namespace

RobustnessOptions RobustnessOptions::robust() {
  RobustnessOptions r;
  r.max_retries = 3;
  r.timeout_s = 60.0;
  r.reject_outliers = true;
  r.adaptive = true;
  return r;
}

CalibrationOptions CalibrationOptions::paper() { return {}; }

CalibrationOptions CalibrationOptions::robust() {
  CalibrationOptions options;
  options.estimator = ProbeEstimator::kMedian;
  options.robustness = RobustnessOptions::robust();
  return options;
}

int CalibrationReport::total_retries() const {
  int n = 0;
  for (const auto* dir : {&h2d, &d2h})
    for (const ProbeTelemetry& probe : dir->probes) n += probe.retries;
  return n;
}

int CalibrationReport::total_rejected() const {
  int n = 0;
  for (const auto* dir : {&h2d, &d2h})
    for (const ProbeTelemetry& probe : dir->probes)
      n += probe.samples_rejected;
  return n;
}

int CalibrationReport::total_timeouts() const {
  int n = 0;
  for (const auto* dir : {&h2d, &d2h})
    for (const ProbeTelemetry& probe : dir->probes) n += probe.timeouts;
  return n;
}

CalibrationSummary CalibrationReport::summary() const {
  CalibrationSummary s;
  s.converged = converged;
  s.used_fallback = used_fallback;
  s.retries = total_retries();
  s.rejected_samples = total_rejected();
  s.timeouts = total_timeouts();
  s.warning = warning;
  return s;
}

std::string CalibrationReport::describe() const {
  std::string out =
      converged ? "calibration: converged\n"
                : "calibration: DEGRADED (spec-derived fallback)\n";
  if (from_cache || cache_hits + cache_misses > 0)
    out += util::strfmt(
        "  cache: %s (process-wide: %llu hit(s), %llu miss(es))\n",
        from_cache ? "HIT — measurements skipped" : "miss — measured here",
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(cache_misses));
  const std::pair<const char*, const DirectionCalibration*> directions[] = {
      {"H2D", &h2d}, {"D2H", &d2h}};
  for (const auto& [label, dir] : directions) {
    out += util::strfmt("  %s: %s%s (r^2=%.4f)\n", label,
                        dir->model.describe().c_str(),
                        dir->from_spec ? " [from spec]" : "",
                        dir->r_squared);
    for (const ProbeTelemetry& probe : dir->probes) {
      out += util::strfmt(
          "    probe %s: kept %d, rejected %d, retries %d (timeouts %d, "
          "backoff %.0f ms), CI half-width %.2f%%\n",
          util::format_bytes(probe.bytes).c_str(), probe.samples_kept,
          probe.samples_rejected, probe.retries, probe.timeouts,
          probe.backoff_total_s * 1e3, probe.rel_half_width * 100.0);
    }
  }
  if (!warning.empty()) out += "  warning: " + warning + "\n";
  return out;
}

TransferCalibrator::TransferCalibrator(CalibrationOptions options)
    : options_(std::move(options)) {
  GROPHECY_EXPECTS(options_.small_bytes > 0);
  GROPHECY_EXPECTS(options_.small_bytes < options_.large_bytes);
  GROPHECY_EXPECTS(options_.replicates > 0);
  const RobustnessOptions& r = options_.robustness;
  GROPHECY_EXPECTS(r.max_retries >= 0);
  GROPHECY_EXPECTS(r.backoff_initial_s > 0.0);
  GROPHECY_EXPECTS(r.backoff_max_s >= r.backoff_initial_s);
  GROPHECY_EXPECTS(r.timeout_s > 0.0);
  GROPHECY_EXPECTS(r.outlier_z > 0.0);
  GROPHECY_EXPECTS(r.target_rel_half_width > 0.0);
  GROPHECY_EXPECTS(r.max_replicates >= options_.replicates);
  for (std::uint64_t bytes : options_.sweep_bytes) GROPHECY_EXPECTS(bytes > 0);
}

bool TransferCalibrator::measure_probe(TransferTimer& timer,
                                       std::uint64_t bytes,
                                       hw::Direction dir, hw::HostMemory mem,
                                       ProbeTelemetry& tel,
                                       std::string& failure) const {
  const RobustnessOptions& r = options_.robustness;
  tel.bytes = bytes;

  std::vector<double> samples;
  // Draws one sample, retrying transient failures with bounded exponential
  // backoff. Returns false when the retry budget is exhausted.
  auto draw_one = [&]() -> bool {
    for (int attempt = 0;; ++attempt) {
      try {
        const double t = timer.time_transfer(bytes, dir, mem);
        if (t > r.timeout_s)
          throw MeasurementError(
              util::strfmt("transfer exceeded %.1f s watchdog", r.timeout_s),
              /*timed_out=*/true);
        samples.push_back(t);
        return true;
      } catch (const MeasurementError& e) {
        if (e.timed_out()) ++tel.timeouts;
        if (attempt >= r.max_retries) {
          failure = util::strfmt(
              "%s probe at %s failed after %d attempt(s): %s",
              direction_name(dir), util::format_bytes(bytes).c_str(),
              attempt + 1, e.what());
          return false;
        }
        tel.backoff_total_s += backoff_seconds(r, attempt);
        ++tel.retries;
      }
    }
  };

  for (int i = 0; i < options_.replicates; ++i)
    if (!draw_one()) return false;

  auto kept_of = [&](std::span<const double> all) {
    return r.reject_outliers ? util::mad_filter(all, r.outlier_z)
                             : std::vector<double>(all.begin(), all.end());
  };
  std::vector<double> kept = kept_of(samples);

  if (r.adaptive) {
    while (static_cast<int>(samples.size()) < r.max_replicates &&
           rel_half_width(kept) > r.target_rel_half_width) {
      if (!draw_one()) return false;
      kept = kept_of(samples);
    }
  }

  tel.samples_kept = static_cast<int>(kept.size());
  tel.samples_rejected = static_cast<int>(samples.size() - kept.size());
  tel.estimate_s = options_.estimator == ProbeEstimator::kMean
                       ? util::mean(kept)
                       : util::median(kept);
  const double achieved = rel_half_width(kept);
  tel.rel_half_width = std::isfinite(achieved) ? achieved : 0.0;
  return true;
}

bool TransferCalibrator::try_calibrate_direction(TransferTimer& timer,
                                                 hw::Direction dir,
                                                 hw::HostMemory mem,
                                                 DirectionCalibration& out,
                                                 std::string& failure) const {
  std::vector<std::uint64_t> sizes;
  if (options_.fit == FitMethod::kTwoPoint) {
    sizes = {options_.small_bytes, options_.large_bytes};
  } else if (!options_.sweep_bytes.empty()) {
    sizes = options_.sweep_bytes;
  } else {
    // Default Theil–Sen sweep: the two paper probes plus log-spaced
    // interior sizes. Small sizes are deliberately over-represented —
    // they are the only ones whose residuals resolve alpha.
    sizes = {options_.small_bytes, 4 * util::kKiB,   16 * util::kKiB,
             64 * util::kKiB,      256 * util::kKiB, util::kMiB,
             16 * util::kMiB,      128 * util::kMiB, options_.large_bytes};
    sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                               [&](std::uint64_t b) {
                                 return b > options_.large_bytes;
                               }),
                sizes.end());
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  }

  for (std::uint64_t bytes : sizes) {
    out.probes.emplace_back();
    if (!measure_probe(timer, bytes, dir, mem, out.probes.back(), failure))
      return false;
  }

  if (options_.fit == FitMethod::kTwoPoint) {
    const double t_small = out.probes.front().estimate_s;
    const double t_large = out.probes.back().estimate_s;
    out.model.alpha_s = t_small;
    out.model.beta_s_per_byte =
        t_large / static_cast<double>(options_.large_bytes);
    out.r_squared = 1.0;  // exact by construction at the two probes
  } else {
    std::vector<double> x, y;
    for (const ProbeTelemetry& probe : out.probes) {
      x.push_back(static_cast<double>(probe.bytes));
      y.push_back(probe.estimate_s);
    }
    const util::LinearFit fit = util::theil_sen(x, y);
    out.model.alpha_s = fit.intercept;
    out.model.beta_s_per_byte = fit.slope;
    out.r_squared = fit.r_squared;
  }

  if (!(out.model.alpha_s > 0.0 && out.model.beta_s_per_byte > 0.0)) {
    failure = util::strfmt(
        "%s fit produced non-physical parameters (alpha=%g s, beta=%g s/B)",
        direction_name(dir), out.model.alpha_s, out.model.beta_s_per_byte);
    return false;
  }
  return true;
}

LinearTransferModel TransferCalibrator::calibrate_direction(
    TransferTimer& timer, hw::Direction dir, hw::HostMemory mem) const {
  DirectionCalibration out;
  std::string failure;
  if (!try_calibrate_direction(timer, dir, mem, out, failure))
    throw CalibrationError(failure);
  return out.model;
}

BusModel TransferCalibrator::calibrate(TransferTimer& timer,
                                       hw::HostMemory mem) const {
  BusModel bus;
  bus.memory_mode = mem;
  bus.h2d = calibrate_direction(timer, hw::Direction::kHostToDevice, mem);
  bus.d2h = calibrate_direction(timer, hw::Direction::kDeviceToHost, mem);
  return bus;
}

CalibrationReport TransferCalibrator::calibrate_robust(
    TransferTimer& timer, hw::HostMemory mem,
    const hw::PcieSpec* fallback_spec) const {
  CalibrationReport report;
  report.model.memory_mode = mem;

  bool all_ok = true;
  const std::pair<hw::Direction, DirectionCalibration*> directions[] = {
      {hw::Direction::kHostToDevice, &report.h2d},
      {hw::Direction::kDeviceToHost, &report.d2h}};
  for (const auto& [dir, dir_cal] : directions) {
    std::string failure;
    if (try_calibrate_direction(timer, dir, mem, *dir_cal, failure)) continue;
    all_ok = false;
    if (fallback_spec == nullptr) throw CalibrationError(failure);
    // Degradation ladder, last rung: a trustworthy-but-blind model derived
    // from the machine spec, with the reason on record.
    dir_cal->model = model_from_spec(fallback_spec->profile(dir, mem));
    dir_cal->from_spec = true;
    dir_cal->r_squared = 0.0;
    report.used_fallback = true;
    if (!report.warning.empty()) report.warning += "; ";
    report.warning += failure + " — using spec-derived model";
  }

  report.converged = all_ok;
  report.model.h2d = report.h2d.model;
  report.model.d2h = report.d2h.model;
  return report;
}

}  // namespace grophecy::pcie
