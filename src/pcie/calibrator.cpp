#include "pcie/calibrator.h"

#include "util/contracts.h"

namespace grophecy::pcie {

TransferCalibrator::TransferCalibrator(CalibrationOptions options)
    : options_(options) {
  GROPHECY_EXPECTS(options_.small_bytes > 0);
  GROPHECY_EXPECTS(options_.small_bytes < options_.large_bytes);
  GROPHECY_EXPECTS(options_.replicates > 0);
}

LinearTransferModel TransferCalibrator::calibrate_direction(
    TransferTimer& timer, hw::Direction dir, hw::HostMemory mem) const {
  auto mean_of = [&](std::uint64_t bytes) {
    double sum = 0.0;
    for (int i = 0; i < options_.replicates; ++i)
      sum += timer.time_transfer(bytes, dir, mem);
    return sum / options_.replicates;
  };

  const double t_small = mean_of(options_.small_bytes);
  const double t_large = mean_of(options_.large_bytes);

  LinearTransferModel model;
  model.alpha_s = t_small;
  model.beta_s_per_byte =
      t_large / static_cast<double>(options_.large_bytes);
  GROPHECY_ENSURES(model.alpha_s > 0.0 && model.beta_s_per_byte > 0.0);
  return model;
}

BusModel TransferCalibrator::calibrate(TransferTimer& timer,
                                       hw::HostMemory mem) const {
  BusModel bus;
  bus.memory_mode = mem;
  bus.h2d = calibrate_direction(timer, hw::Direction::kHostToDevice, mem);
  bus.d2h = calibrate_direction(timer, hw::Direction::kDeviceToHost, mem);
  return bus;
}

}  // namespace grophecy::pcie
