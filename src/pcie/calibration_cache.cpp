#include "pcie/calibration_cache.h"

#include <bit>
#include <utility>

#include "util/checksum.h"
#include "util/table.h"

namespace grophecy::pcie {

namespace {

/// Incrementally hashes heterogeneous fields into one FNV-1a state.
/// Doubles are folded via their bit representation: the cache must
/// distinguish any inputs the calibrator could distinguish, and the
/// calibrator sees exact double values.
class KeyHasher {
 public:
  KeyHasher& field(std::uint64_t value) {
    hash_ = util::fnv1a64_fold(hash_, value);
    return *this;
  }
  KeyHasher& field(double value) {
    return field(std::bit_cast<std::uint64_t>(value));
  }
  KeyHasher& field(int value) {
    return field(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  }
  KeyHasher& field(bool value) { return field(std::uint64_t{value ? 1u : 0u}); }
  KeyHasher& field(std::string_view value) {
    // Length-prefixed so ("ab","c") and ("a","bc") fold differently.
    field(static_cast<std::uint64_t>(value.size()));
    for (char c : value)
      hash_ = util::fnv1a64_fold(hash_, static_cast<unsigned char>(c));
    return *this;
  }

  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void fold_profile(KeyHasher& h, const hw::PcieDirectionProfile& p) {
  h.field(p.latency_s)
      .field(p.asymptotic_gbps)
      .field(p.hump_extra_s)
      .field(p.hump_center_bytes)
      .field(p.hump_log_width)
      .field(p.page_staging_s_per_page);
}

}  // namespace

std::string calibration_cache_key(const hw::PcieSpec& spec,
                                  const CalibrationOptions& options,
                                  hw::HostMemory memory, std::uint64_t seed) {
  KeyHasher h;
  // Machine side: everything SimulatedBus reads when producing samples.
  h.field(spec.name).field(spec.generation).field(spec.lanes);
  fold_profile(h, spec.pinned_h2d);
  fold_profile(h, spec.pinned_d2h);
  fold_profile(h, spec.pageable_h2d);
  fold_profile(h, spec.pageable_d2h);
  h.field(spec.noise.sigma_floor)
      .field(spec.noise.sigma_small)
      .field(spec.noise.small_scale_bytes)
      .field(spec.noise.outlier_probability)
      .field(spec.noise.outlier_factor);
  // Procedure side: everything TransferCalibrator reads.
  h.field(options.small_bytes).field(options.large_bytes);
  h.field(options.replicates);
  h.field(static_cast<int>(options.fit));
  h.field(static_cast<int>(options.estimator));
  h.field(static_cast<std::uint64_t>(options.sweep_bytes.size()));
  for (std::uint64_t bytes : options.sweep_bytes) h.field(bytes);
  const RobustnessOptions& r = options.robustness;
  h.field(r.max_retries)
      .field(r.backoff_initial_s)
      .field(r.backoff_max_s)
      .field(r.timeout_s)
      .field(r.reject_outliers)
      .field(r.outlier_z)
      .field(r.adaptive)
      .field(r.target_rel_half_width)
      .field(r.max_replicates);
  // Run side.
  h.field(static_cast<int>(memory));
  h.field(seed);
  // Keep the machine name readable in the key for debugging; the hash
  // carries the actual identity.
  return util::strfmt("%s/%016llx", spec.name.c_str(),
                      static_cast<unsigned long long>(h.hash()));
}

CalibrationCache& CalibrationCache::instance() {
  static CalibrationCache cache;
  return cache;
}

CalibrationReport CalibrationCache::get_or_calibrate(const std::string& key,
                                                     const Factory& factory) {
  // The promise lives in the owning call's frame; the map only ever holds
  // Flight handles, so concurrent misses on *different* keys are fully
  // independent and calibrate in parallel.
  std::promise<CalibrationReport> promise;
  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      flight = it->second;
    } else {
      ++misses_;
      owner = true;
      flight = std::make_shared<Flight>();
      flight->future = promise.get_future().share();
      entries_.emplace(key, flight);
    }
  }

  if (owner) {
    try {
      promise.set_value(factory());
    } catch (...) {
      // Publish the failure to every joined waiter first (they all
      // rethrow this same typed exception), then evict so a later
      // request retries instead of inheriting a cached failure. The
      // eviction is by identity: if clear() raced in and a fresh flight
      // already occupies the slot, that healthy flight must survive.
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == flight) entries_.erase(it);
    }
  }

  CalibrationReport report = flight->future.get();  // waits for the owner
  {
    std::lock_guard<std::mutex> lock(mutex_);
    report.from_cache = !owner;
    report.cache_hits = hits_;
    report.cache_misses = misses_;
  }
  return report;
}

CalibrationCache::Stats CalibrationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_};
}

std::size_t CalibrationCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void CalibrationCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace grophecy::pcie
