#include "pcie/allocation.h"

#include <cmath>

#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::pcie {

const char* alloc_kind_name(AllocKind kind) {
  switch (kind) {
    case AllocKind::kDevice: return "device";
    case AllocKind::kPageableHost: return "pageable";
    case AllocKind::kPinnedHost: return "pinned";
  }
  return "?";
}

SimulatedAllocator::SimulatedAllocator(hw::AllocationProfile profile,
                                       std::uint64_t seed)
    : profile_(profile), rng_(seed) {}

double SimulatedAllocator::expected_time(std::uint64_t bytes,
                                         AllocKind kind) const {
  GROPHECY_EXPECTS(bytes > 0);
  const double d = static_cast<double>(bytes);
  const double pages = std::ceil(d / 4096.0);
  switch (kind) {
    case AllocKind::kDevice:
      return profile_.device_base_s +
             profile_.device_per_mib_s * (d / static_cast<double>(util::kMiB));
    case AllocKind::kPageableHost:
      return profile_.pageable_base_s + profile_.pageable_per_page_s * pages;
    case AllocKind::kPinnedHost:
      return profile_.pinned_base_s + profile_.pinned_per_page_s * pages;
  }
  throw ContractViolation("invalid AllocKind");
}

double SimulatedAllocator::time_allocation(std::uint64_t bytes,
                                           AllocKind kind) {
  return rng_.lognormal(expected_time(bytes, kind), profile_.jitter_sigma);
}

double SimulatedAllocator::measure_mean(std::uint64_t bytes, AllocKind kind,
                                        int runs) {
  GROPHECY_EXPECTS(runs > 0);
  double sum = 0.0;
  for (int i = 0; i < runs; ++i) sum += time_allocation(bytes, kind);
  return sum / runs;
}

double LinearAllocModel::predict_seconds(std::uint64_t bytes) const {
  GROPHECY_EXPECTS(bytes > 0);
  GROPHECY_EXPECTS(base_s > 0.0 && slope_s_per_byte >= 0.0);
  return base_s + slope_s_per_byte * static_cast<double>(bytes);
}

const LinearAllocModel& AllocationModel::kind(AllocKind k) const {
  switch (k) {
    case AllocKind::kDevice: return device;
    case AllocKind::kPageableHost: return pageable_host;
    case AllocKind::kPinnedHost: return pinned_host;
  }
  throw ContractViolation("invalid AllocKind");
}

AllocationCalibrator::AllocationCalibrator(AllocCalibrationOptions options)
    : options_(options) {
  GROPHECY_EXPECTS(options_.small_bytes > 0);
  GROPHECY_EXPECTS(options_.small_bytes < options_.large_bytes);
  GROPHECY_EXPECTS(options_.replicates > 0);
}

LinearAllocModel AllocationCalibrator::calibrate_kind(AllocationTimer& timer,
                                                      AllocKind kind) const {
  auto mean_of = [&](std::uint64_t bytes) {
    double sum = 0.0;
    for (int i = 0; i < options_.replicates; ++i)
      sum += timer.time_allocation(bytes, kind);
    return sum / options_.replicates;
  };
  const double t_small = mean_of(options_.small_bytes);
  const double t_large = mean_of(options_.large_bytes);

  LinearAllocModel model;
  // Unlike the transfer calibration, the small probe is not negligible in
  // size, so solve the two-point line exactly.
  model.slope_s_per_byte =
      (t_large - t_small) /
      static_cast<double>(options_.large_bytes - options_.small_bytes);
  if (model.slope_s_per_byte < 0.0) model.slope_s_per_byte = 0.0;
  model.base_s = t_small - model.slope_s_per_byte *
                               static_cast<double>(options_.small_bytes);
  if (model.base_s <= 0.0) model.base_s = t_small;
  GROPHECY_ENSURES(model.base_s > 0.0);
  return model;
}

AllocationModel AllocationCalibrator::calibrate(
    AllocationTimer& timer) const {
  AllocationModel model;
  model.device = calibrate_kind(timer, AllocKind::kDevice);
  model.pageable_host = calibrate_kind(timer, AllocKind::kPageableHost);
  model.pinned_host = calibrate_kind(timer, AllocKind::kPinnedHost);
  return model;
}

}  // namespace grophecy::pcie
