// The paper's PCIe transfer-time model (contribution 1, §III-C).
//
// A transfer of d bytes is modeled as T(d) = alpha + beta * d, where alpha
// is the first-byte latency and 1/beta the asymptotic bandwidth. The two
// parameters per direction are obtained by the TransferCalibrator from just
// two measurements on the target system.
#pragma once

#include <cstdint>
#include <string>

#include "hw/machine.h"

namespace grophecy::pcie {

/// T(d) = alpha + beta * d for one transfer direction.
struct LinearTransferModel {
  double alpha_s = 0.0;         ///< Fixed per-transfer latency, seconds.
  double beta_s_per_byte = 0.0; ///< Inverse bandwidth, seconds per byte.

  /// Predicted time in seconds for a transfer of `bytes` bytes.
  /// Requires bytes > 0 and a valid (calibrated) model.
  double predict_seconds(std::uint64_t bytes) const;

  /// The model's asymptotic bandwidth, GB/s (1/beta).
  double bandwidth_gbps() const;

  /// Human-readable summary, e.g. "alpha=11.02 us, bw=2.54 GB/s".
  std::string describe() const;
};

/// Calibrated models for both directions under one host-memory mode.
/// This is the object GROPHECY++ carries around to price transfer plans.
struct BusModel {
  hw::HostMemory memory_mode = hw::HostMemory::kPinned;
  LinearTransferModel h2d;
  LinearTransferModel d2h;

  const LinearTransferModel& direction(hw::Direction dir) const {
    return dir == hw::Direction::kHostToDevice ? h2d : d2h;
  }

  /// Predicted time for one transfer in the given direction.
  double predict_seconds(std::uint64_t bytes, hw::Direction dir) const {
    return direction(dir).predict_seconds(bytes);
  }
};

/// Spec-derived model: alpha from the profile's latency floor, beta from
/// its asymptotic bandwidth. This is the degradation fallback when
/// measurement-based calibration cannot converge (docs/robustness.md):
/// trustworthy headline parameters, but blind to whatever real-system
/// effects calibration would have absorbed.
LinearTransferModel model_from_spec(const hw::PcieDirectionProfile& profile);

/// Spec-derived models for both directions under one memory mode.
BusModel bus_model_from_spec(const hw::PcieSpec& spec, hw::HostMemory mem);

}  // namespace grophecy::pcie
