// Simulated PCIe bus — the "physical" interconnect of the modeled machine.
//
// In the paper, transfer times are measured on real hardware. Here the
// SimulatedBus plays the role of that hardware: it produces per-transfer
// times from the machine's ground-truth PcieDirectionProfile (latency floor,
// asymptotic bandwidth, mid-size non-linearity, pageable staging costs) plus
// seeded stochastic jitter and optional slow-transfer outliers.
//
// The calibration and modeling code never looks inside the bus; it only
// talks to the abstract TransferTimer interface, exactly as GROPHECY++ only
// ever timed cudaMemcpy calls. Swapping in a real CUDA-backed timer would
// require no changes above this interface.
#pragma once

#include <cstdint>

#include "hw/machine.h"
#include "util/rng.h"

namespace grophecy::pcie {

/// Anything that can time a single CPU<->GPU transfer of a given size.
/// Implemented by SimulatedBus here; on a real system it would wrap
/// cudaMemcpy + a host timer.
class TransferTimer {
 public:
  virtual ~TransferTimer() = default;

  /// Times one transfer of `bytes` bytes. Returns seconds. Each call is an
  /// independent observation (includes run-to-run variation).
  virtual double time_transfer(std::uint64_t bytes, hw::Direction dir,
                               hw::HostMemory mem) = 0;
};

/// Stochastic simulator of a PCIe link described by hw::PcieSpec.
class SimulatedBus final : public TransferTimer {
 public:
  /// Creates a bus with the given physical spec and RNG seed. The same
  /// (spec, seed) pair always reproduces the same sequence of times.
  SimulatedBus(hw::PcieSpec spec, std::uint64_t seed);

  /// Noiseless ground-truth transfer time (the curve the jitter is applied
  /// to). Exposed for tests and for plotting the "true" curve.
  double expected_time(std::uint64_t bytes, hw::Direction dir,
                       hw::HostMemory mem) const;

  /// One noisy observation, as a measurement harness would see.
  double time_transfer(std::uint64_t bytes, hw::Direction dir,
                       hw::HostMemory mem) override;

  /// Arithmetic mean of `runs` independent observations (the paper averages
  /// 10 runs for every reported time). Outlier-sensitive: a single 2x-slow
  /// transfer (the paper's §V-A anomaly) among 10 runs inflates the result
  /// by 10%, which two-point calibration then bakes into alpha or beta.
  /// Prefer measure_median, or the robust calibration pipeline
  /// (TransferCalibrator::calibrate_robust), when outliers are possible.
  double measure_mean(std::uint64_t bytes, hw::Direction dir,
                      hw::HostMemory mem, int runs);

  /// Median of `runs` independent observations. Robust to occasional
  /// outlier transfers: up to half the runs can be arbitrarily slow without
  /// moving the result beyond the sample spread.
  double measure_median(std::uint64_t bytes, hw::Direction dir,
                        hw::HostMemory mem, int runs);

  /// Replaces the noise profile (used by experiments that need the paper's
  /// occasionally-2x-slow outlier transfers, §V-A).
  void set_noise(const hw::PcieNoiseProfile& noise);

  const hw::PcieSpec& spec() const { return spec_; }

 private:
  hw::PcieSpec spec_;
  util::Rng rng_;
};

}  // namespace grophecy::pcie
