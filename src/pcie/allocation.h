// Memory-allocation overhead modeling (the paper's future work, §VII:
// "we plan to ... account for the overhead of memory allocation").
//
// Mirrors the transfer-model design: a SimulatedAllocator plays the role of
// the real allocator (cudaMalloc / malloc / cudaHostAlloc), and a
// two-point AllocationCalibrator derives a linear cost model
// T(bytes) = base + slope * bytes per allocation kind — the same
// measure-two-points recipe the paper uses for the bus.
#pragma once

#include <cstdint>

#include "hw/machine.h"
#include "util/rng.h"

namespace grophecy::pcie {

/// What is being allocated.
enum class AllocKind {
  kDevice,        ///< cudaMalloc (GPU memory).
  kPageableHost,  ///< malloc.
  kPinnedHost,    ///< cudaHostAlloc (page-locked).
};

const char* alloc_kind_name(AllocKind kind);

/// Anything that can time one allocation+free cycle of a given size.
class AllocationTimer {
 public:
  virtual ~AllocationTimer() = default;
  virtual double time_allocation(std::uint64_t bytes, AllocKind kind) = 0;
};

/// Stochastic simulator of the machine's allocators.
class SimulatedAllocator final : public AllocationTimer {
 public:
  SimulatedAllocator(hw::AllocationProfile profile, std::uint64_t seed);

  /// Noiseless ground truth.
  double expected_time(std::uint64_t bytes, AllocKind kind) const;

  double time_allocation(std::uint64_t bytes, AllocKind kind) override;

  /// Arithmetic mean of `runs` observations.
  double measure_mean(std::uint64_t bytes, AllocKind kind, int runs);

 private:
  hw::AllocationProfile profile_;
  util::Rng rng_;
};

/// Linear allocation-cost model: T(bytes) = base + slope * bytes.
struct LinearAllocModel {
  double base_s = 0.0;
  double slope_s_per_byte = 0.0;

  /// Requires bytes > 0 and a calibrated model.
  double predict_seconds(std::uint64_t bytes) const;
};

/// Calibrated models for all three allocation kinds.
struct AllocationModel {
  LinearAllocModel device;
  LinearAllocModel pageable_host;
  LinearAllocModel pinned_host;

  const LinearAllocModel& kind(AllocKind k) const;
};

/// Two-point calibration, one small and one large probe per kind,
/// replicated and averaged like the transfer calibration.
struct AllocCalibrationOptions {
  std::uint64_t small_bytes = 4096;
  std::uint64_t large_bytes = 256ULL << 20;
  int replicates = 10;
};

class AllocationCalibrator {
 public:
  explicit AllocationCalibrator(AllocCalibrationOptions options = {});

  LinearAllocModel calibrate_kind(AllocationTimer& timer,
                                  AllocKind kind) const;
  AllocationModel calibrate(AllocationTimer& timer) const;

 private:
  AllocCalibrationOptions options_;
};

}  // namespace grophecy::pcie
