#include "dataflow/transfer_plan.h"

#include <sstream>

#include "util/units.h"

namespace grophecy::dataflow {

namespace {
std::uint64_t sum_bytes(const std::vector<Transfer>& transfers) {
  std::uint64_t total = 0;
  for (const Transfer& t : transfers) total += t.bytes;
  return total;
}
}  // namespace

std::uint64_t TransferPlan::input_bytes() const {
  return sum_bytes(host_to_device);
}

std::uint64_t TransferPlan::output_bytes() const {
  return sum_bytes(device_to_host);
}

std::uint64_t TransferPlan::total_bytes() const {
  return input_bytes() + output_bytes();
}

std::size_t TransferPlan::transfer_count() const {
  return host_to_device.size() + device_to_host.size();
}

double TransferPlan::predicted_seconds(const pcie::BusModel& bus) const {
  double total = 0.0;
  for (const Transfer& t : host_to_device)
    total += bus.predict_seconds(t.bytes, hw::Direction::kHostToDevice);
  for (const Transfer& t : device_to_host)
    total += bus.predict_seconds(t.bytes, hw::Direction::kDeviceToHost);
  return total;
}

std::string TransferPlan::describe() const {
  std::ostringstream oss;
  oss << "transfer plan: " << util::format_bytes(input_bytes()) << " in, "
      << util::format_bytes(output_bytes()) << " out\n";
  for (const Transfer& t : host_to_device)
    oss << "  H2D " << t.array_name << ": " << util::format_bytes(t.bytes)
        << " (" << t.section.to_string() << ")\n";
  for (const Transfer& t : device_to_host)
    oss << "  D2H " << t.array_name << ": " << util::format_bytes(t.bytes)
        << " (" << t.section.to_string() << ")\n";
  return oss.str();
}

}  // namespace grophecy::dataflow
