// Process-wide cache of usage-analysis results.
//
// The data-usage analyzer is a pure function of the skeleton content, and
// its transfer plan is independent of the iteration count (paper §III-B:
// input moves once before the first iteration, output once after the
// last). Artifacts are therefore keyed by the skeleton's
// usage_fingerprint — which excludes `iterations` — so an iteration sweep
// analyzes each data size once and every other point is a lookup.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dataflow/transfer_plan.h"
#include "dataflow/usage_analyzer.h"
#include "skeleton/skeleton.h"
#include "util/artifact_cache.h"

namespace grophecy::dataflow {

/// Everything the analyzer derives from one skeleton, computed together
/// in a single walk and shared immutably.
struct UsageArtifact {
  TransferPlan plan;
  std::vector<ArrayUsage> usages;
};

/// Returns the usage artifact for `app`, keyed by `usage_key` (the
/// skeleton's usage_fingerprint — the caller supplies it so a skeleton
/// hashed once at build is never re-hashed). Analyzes at most once per
/// distinct skeleton content. `from_cache`, when non-null, reports
/// whether this call was a hit.
std::shared_ptr<const UsageArtifact> cached_usage(
    std::uint64_t usage_key, const skeleton::AppSkeleton& app,
    bool* from_cache = nullptr);

/// The process-wide cache behind cached_usage (accounting and tests).
util::ArtifactCache<UsageArtifact>& usage_cache();

}  // namespace grophecy::dataflow
