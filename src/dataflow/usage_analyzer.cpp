#include "dataflow/usage_analyzer.h"

#include <map>

#include "brs/extract.h"
#include "brs/section_set.h"
#include "util/contracts.h"

namespace grophecy::dataflow {

namespace {

struct ArrayState {
  brs::SectionSet written;        ///< Sections produced on the GPU so far.
  brs::SectionSet needs_input;    ///< Read-before-write sections.
  brs::SectionSet all_writes;     ///< Every written section (for copy-back).
};

std::map<skeleton::ArrayId, ArrayState> walk(
    const skeleton::AppSkeleton& app) {
  std::map<skeleton::ArrayId, ArrayState> state;
  for (const skeleton::KernelSkeleton& kernel : app.kernels) {
    for (const skeleton::Statement& stmt : kernel.body) {
      // Within a statement all loads happen before any store (a statement
      // that updates a[i] in place reads the old value first).
      for (const skeleton::ArrayRef& ref : stmt.refs) {
        if (ref.kind != skeleton::RefKind::kLoad) continue;
        const brs::Section s = brs::access_section(app, kernel, ref);
        ArrayState& as = state[ref.array];
        // Only the part of the read NOT provably produced on the GPU needs
        // a host-to-device transfer ("read but not previously written",
        // §III-B — taken per section piece, not all-or-nothing).
        for (const brs::Section& uncovered : as.written.subtract_from(s))
          as.needs_input.add(uncovered);
      }
      for (const skeleton::ArrayRef& ref : stmt.refs) {
        if (ref.kind != skeleton::RefKind::kStore) continue;
        const brs::Section s = brs::access_section(app, kernel, ref);
        ArrayState& as = state[ref.array];
        as.written.add(s);
        as.all_writes.add(s);
      }
    }
  }
  return state;
}

}  // namespace

TransferPlan UsageAnalyzer::analyze(const skeleton::AppSkeleton& app) const {
  app.validate();
  TransferPlan plan;
  for (const auto& [array_id, as] : walk(app)) {
    const skeleton::ArrayDecl& decl = app.array(array_id);
    if (!as.needs_input.empty()) {
      Transfer t;
      t.array = array_id;
      t.array_name = decl.name;
      t.section = as.needs_input.bounding_union();
      t.direction = hw::Direction::kHostToDevice;
      t.bytes = t.section.bytes(decl);
      GROPHECY_ENSURES(t.bytes > 0);
      plan.host_to_device.push_back(std::move(t));
    }
    if (!as.all_writes.empty() && !app.is_temporary(array_id)) {
      Transfer t;
      t.array = array_id;
      t.array_name = decl.name;
      t.section = as.all_writes.bounding_union();
      t.direction = hw::Direction::kDeviceToHost;
      t.bytes = t.section.bytes(decl);
      GROPHECY_ENSURES(t.bytes > 0);
      plan.device_to_host.push_back(std::move(t));
    }
  }
  return plan;
}

std::vector<ArrayUsage> UsageAnalyzer::classify(
    const skeleton::AppSkeleton& app) const {
  app.validate();
  std::vector<ArrayUsage> usages;
  for (const auto& [array_id, as] : walk(app)) {
    ArrayUsage usage;
    usage.array = array_id;
    usage.read_before_write = !as.needs_input.empty();
    usage.written = !as.all_writes.empty();
    usage.temporary = app.is_temporary(array_id);
    usages.push_back(usage);
  }
  return usages;
}

}  // namespace grophecy::dataflow
