// Transfer plans: what must cross the PCIe bus, and pricing them.
//
// The data-usage analyzer produces a TransferPlan; the PCIe linear model
// prices it. Input data moves host-to-device once before the first
// iteration; output data moves device-to-host once after the last (paper
// §IV-B), so a plan is independent of the iteration count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "brs/section.h"
#include "hw/machine.h"
#include "pcie/linear_model.h"
#include "skeleton/skeleton.h"

namespace grophecy::dataflow {

/// One array's movement in one direction. The paper assumes each array is
/// transferred separately (§III-B), so there is exactly one Transfer per
/// (array, direction) pair in a plan.
struct Transfer {
  skeleton::ArrayId array = -1;
  std::string array_name;
  brs::Section section;
  hw::Direction direction = hw::Direction::kHostToDevice;
  std::uint64_t bytes = 0;
};

/// The complete data movement of one application offload.
struct TransferPlan {
  std::vector<Transfer> host_to_device;  ///< Before the first iteration.
  std::vector<Transfer> device_to_host;  ///< After the last iteration.

  std::uint64_t input_bytes() const;
  std::uint64_t output_bytes() const;
  std::uint64_t total_bytes() const;
  std::size_t transfer_count() const;

  /// Predicted total transfer time under a calibrated bus model.
  double predicted_seconds(const pcie::BusModel& bus) const;

  /// Multi-line human-readable listing.
  std::string describe() const;
};

}  // namespace grophecy::dataflow
