#include "dataflow/usage_cache.h"

namespace grophecy::dataflow {

util::ArtifactCache<UsageArtifact>& usage_cache() {
  static util::ArtifactCache<UsageArtifact> cache;
  return cache;
}

std::shared_ptr<const UsageArtifact> cached_usage(
    std::uint64_t usage_key, const skeleton::AppSkeleton& app,
    bool* from_cache) {
  return usage_cache().get_or_build(
      usage_key,
      [&] {
        UsageAnalyzer analyzer;
        UsageArtifact artifact;
        artifact.plan = analyzer.analyze(app);
        artifact.usages = analyzer.classify(app);
        return artifact;
      },
      from_cache);
}

}  // namespace grophecy::dataflow
