// The data-usage analyzer (paper contribution 2, §III-B).
//
// Walks the application's kernel sequence in program order, tracking which
// array sections have already been written on the GPU:
//
//   * a load whose section is not provably covered by prior writes needs
//     its data on the device -> contributes to the host-to-device set;
//   * every store contributes to the device-to-host set, unless the array
//     is hinted as a temporary;
//   * sparse arrays and data-dependent references use the conservative
//     whole-array rule.
//
// The per-array UNION of each set becomes one Transfer (arrays move
// separately). Because the same kernel sequence repeats every iteration,
// analyzing a single iteration yields the complete plan: later iterations
// only touch data that is already resident.
#pragma once

#include "dataflow/transfer_plan.h"
#include "skeleton/skeleton.h"

namespace grophecy::dataflow {

/// Per-array dataflow classification, exposed for reporting and tests.
struct ArrayUsage {
  skeleton::ArrayId array = -1;
  bool read_before_write = false;  ///< Needs host-to-device transfer.
  bool written = false;            ///< Produces data on the device.
  bool temporary = false;          ///< Hinted: skip the copy-back.
};

/// Stateless analysis of an application skeleton.
class UsageAnalyzer {
 public:
  /// Computes the transfer plan for offloading the whole kernel sequence.
  /// Requires a validated skeleton.
  TransferPlan analyze(const skeleton::AppSkeleton& app) const;

  /// Per-array classification (same walk, summary form).
  std::vector<ArrayUsage> classify(const skeleton::AppSkeleton& app) const;
};

}  // namespace grophecy::dataflow
