// Runtime skeleton capture: infer a code skeleton from an instrumented run.
//
// The paper's code skeletons were written by hand from the CPU source
// (§II-C). This module provides the natural companion tool: instrument the
// loop body of the real CPU code, run it once on a SMALL problem size, and
// the Recorder reconstructs the skeleton — loop nest, per-statement FLOP
// counts, and array references with their subscripts *inferred*:
//
//   * accesses whose observed indices fit an affine function of the loop
//     variables become exact affine references (stencil shifts, strides
//     and linearizations are recovered, verified against every sample);
//   * accesses that fit no affine function become per-dimension gathers,
//     with the hidden index's loop dependences detected from which loop
//     variations move the observed index;
//   * boundary-guarded accesses (stencil halos skipped at the edges) are
//     tolerated: sites are matched by (array, ordinal) per iteration, and
//     inference uses whichever samples exist.
//
// Usage (see examples/capture_demo.cpp):
//
//   capture::Recorder rec("blur");
//   auto img = rec.array("img", ElemType::kF32, {n, n});
//   auto out = rec.array("out", ElemType::kF32, {n, n});
//   rec.begin_kernel("blur");
//   rec.declare_loop("i", 0, n, /*parallel=*/true);
//   rec.declare_loop("j", 0, n, /*parallel=*/true);
//   for (i...) for (j...) {
//     rec.iteration({i, j});
//     rec.load(img, {i, j});
//     if (i > 0) rec.load(img, {i - 1, j});
//     rec.flops(4);
//     rec.store(out, {i, j});
//   }
//   rec.end_kernel();
//   skeleton::AppSkeleton skel = rec.infer();
//
// The inferred skeleton can then be re-scaled (extents are those of the
// declared arrays/loops) and projected like any hand-written one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "skeleton/skeleton.h"

namespace grophecy::capture {

/// Opaque handle for a registered array.
struct ArrayHandle {
  int id = -1;
};

/// Records one instrumented execution and infers the skeleton.
class Recorder {
 public:
  explicit Recorder(std::string app_name);

  /// Registers an array (before any kernel).
  ArrayHandle array(std::string name, skeleton::ElemType type,
                    std::vector<std::int64_t> dims, bool sparse = false);

  /// Marks an array as a temporary (the paper's §III-B hint).
  void temporary(ArrayHandle handle);

  /// Sets the outer iteration count of the finished skeleton.
  void iterations(int count);

  /// Starts recording a kernel; declare its loops before iterating.
  void begin_kernel(std::string name);

  /// Declares the next (inner) loop level of the current kernel.
  void declare_loop(std::string name, std::int64_t lower, std::int64_t upper,
                    bool parallel, std::int64_t step = 1);

  /// Announces the current loop indices (outermost first; shorter vectors
  /// address outer-loop statements). Must precede the iteration's
  /// load/store/flops calls.
  void iteration(std::vector<std::int64_t> loop_values);

  /// Records one access with the concrete per-dimension indices. The
  /// optional `site` tag identifies the instrumentation point; accesses
  /// with the same tag are samples of one array reference. Untagged
  /// accesses are matched by their per-iteration ordinal, which is only
  /// correct when every iteration performs the same access sequence —
  /// guarded accesses (stencil halos) MUST be tagged.
  void load(ArrayHandle handle, std::vector<std::int64_t> indices,
            std::string_view site = {});
  void store(ArrayHandle handle, std::vector<std::int64_t> indices,
             std::string_view site = {});

  /// Accumulates arithmetic performed in the current iteration.
  void flops(double count);
  void special(double count);

  /// Finishes the current kernel.
  void end_kernel();

  /// Infers and validates the skeleton. Requires at least one kernel with
  /// at least one recorded iteration.
  skeleton::AppSkeleton infer() const;

 private:
  struct Observation {
    std::vector<std::int64_t> loop_values;
    std::vector<std::int64_t> indices;
  };
  /// One access site: the k-th access to a given array within an
  /// iteration, separated by kind.
  struct SiteKey {
    int array = -1;
    bool is_store = false;
    int ordinal = 0;          ///< Used only when tag is empty.
    std::string tag;
    bool operator<(const SiteKey& other) const {
      if (array != other.array) return array < other.array;
      if (is_store != other.is_store) return is_store < other.is_store;
      if (tag != other.tag) return tag < other.tag;
      return ordinal < other.ordinal;
    }
  };
  struct SiteData {
    std::vector<Observation> samples;  ///< Capped; see kMaxSamplesPerSite.
    std::uint64_t executions = 0;
    std::size_t loop_depth = 0;  ///< Loop values seen at this site.
  };
  struct KernelRecord {
    std::string name;
    std::vector<skeleton::Loop> loops;
    std::map<SiteKey, SiteData> sites;
    double total_flops = 0.0;
    double total_special = 0.0;
    std::uint64_t iterations_seen = 0;
    std::map<std::size_t, std::uint64_t> iterations_by_depth;
  };

  void record(ArrayHandle handle, bool is_store,
              std::vector<std::int64_t> indices, std::string_view site);

  std::string app_name_;
  std::vector<skeleton::ArrayDecl> arrays_;
  std::vector<int> temporaries_;
  int iterations_ = 1;
  std::vector<KernelRecord> kernels_;
  bool in_kernel_ = false;
  std::vector<std::int64_t> current_values_;
  std::map<std::pair<int, bool>, int> current_ordinals_;
};

}  // namespace grophecy::capture
