#include "capture/recorder.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace grophecy::capture {

namespace {

/// Per-site sample cap: the first block of iterations plus power-of-two
/// stragglers, so both early (outer loops frozen) and late (outer loops
/// varied) behaviour is represented.
constexpr std::uint64_t kDenseSamples = 512;

bool keep_sample(std::uint64_t execution_index) {
  if (execution_index < kDenseSamples) return true;
  return (execution_index & (execution_index - 1)) == 0;  // powers of two
}

/// Solves the normal equations of index = c0 + sum ci * v_i by Gaussian
/// elimination with partial pivoting. Returns false if singular.
bool solve_least_squares(std::vector<std::vector<double>> ata,
                         std::vector<double> atb,
                         std::vector<double>& solution) {
  const std::size_t n = atb.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::abs(ata[row][col]) > std::abs(ata[pivot][col])) pivot = row;
    if (std::abs(ata[pivot][col]) < 1e-9) return false;
    std::swap(ata[col], ata[pivot]);
    std::swap(atb[col], atb[pivot]);
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      const double factor = ata[row][col] / ata[col][col];
      for (std::size_t k = col; k < n; ++k)
        ata[row][k] -= factor * ata[col][k];
      atb[row] -= factor * atb[col];
    }
  }
  solution.resize(n);
  for (std::size_t i = 0; i < n; ++i) solution[i] = atb[i] / ata[i][i];
  return true;
}

}  // namespace

Recorder::Recorder(std::string app_name) : app_name_(std::move(app_name)) {}

ArrayHandle Recorder::array(std::string name, skeleton::ElemType type,
                            std::vector<std::int64_t> dims, bool sparse) {
  GROPHECY_EXPECTS(!in_kernel_);
  skeleton::ArrayDecl decl;
  decl.name = std::move(name);
  decl.type = type;
  decl.dims = std::move(dims);
  decl.sparse = sparse;
  arrays_.push_back(std::move(decl));
  return ArrayHandle{static_cast<int>(arrays_.size()) - 1};
}

void Recorder::temporary(ArrayHandle handle) {
  GROPHECY_EXPECTS(handle.id >= 0 &&
                   static_cast<std::size_t>(handle.id) < arrays_.size());
  temporaries_.push_back(handle.id);
}

void Recorder::iterations(int count) {
  GROPHECY_EXPECTS(count >= 1);
  iterations_ = count;
}

void Recorder::begin_kernel(std::string name) {
  GROPHECY_EXPECTS(!in_kernel_);
  KernelRecord record;
  record.name = std::move(name);
  kernels_.push_back(std::move(record));
  in_kernel_ = true;
  current_values_.clear();
}

void Recorder::declare_loop(std::string name, std::int64_t lower,
                            std::int64_t upper, bool parallel,
                            std::int64_t step) {
  GROPHECY_EXPECTS(in_kernel_);
  GROPHECY_EXPECTS(kernels_.back().iterations_seen == 0);
  skeleton::Loop loop;
  loop.name = std::move(name);
  loop.lower = lower;
  loop.upper = upper;
  loop.step = step;
  loop.parallel = parallel;
  kernels_.back().loops.push_back(std::move(loop));
}

void Recorder::iteration(std::vector<std::int64_t> loop_values) {
  GROPHECY_EXPECTS(in_kernel_);
  KernelRecord& kernel = kernels_.back();
  GROPHECY_EXPECTS(loop_values.size() <= kernel.loops.size());
  current_values_ = std::move(loop_values);
  current_ordinals_.clear();
  ++kernel.iterations_by_depth[current_values_.size()];
  if (current_values_.size() == kernel.loops.size())
    ++kernel.iterations_seen;
}

void Recorder::record(ArrayHandle handle, bool is_store,
                      std::vector<std::int64_t> indices,
                      std::string_view site) {
  GROPHECY_EXPECTS(in_kernel_);
  GROPHECY_EXPECTS(handle.id >= 0 &&
                   static_cast<std::size_t>(handle.id) < arrays_.size());
  GROPHECY_EXPECTS(indices.size() ==
                   arrays_[static_cast<std::size_t>(handle.id)].dims.size());
  KernelRecord& kernel = kernels_.back();

  SiteKey key;
  key.array = handle.id;
  key.is_store = is_store;
  if (site.empty())
    key.ordinal = current_ordinals_[{handle.id, is_store}]++;
  else
    key.tag = std::string(site);
  SiteData& data = kernel.sites[key];
  if (data.executions == 0) {
    data.loop_depth = current_values_.size();
  } else {
    GROPHECY_EXPECTS(data.loop_depth == current_values_.size());
  }
  if (keep_sample(data.executions))
    data.samples.push_back(Observation{current_values_, std::move(indices)});
  ++data.executions;
}

void Recorder::load(ArrayHandle handle, std::vector<std::int64_t> indices,
                    std::string_view site) {
  record(handle, false, std::move(indices), site);
}

void Recorder::store(ArrayHandle handle, std::vector<std::int64_t> indices,
                     std::string_view site) {
  record(handle, true, std::move(indices), site);
}

void Recorder::flops(double count) {
  GROPHECY_EXPECTS(in_kernel_);
  GROPHECY_EXPECTS(count >= 0.0);
  kernels_.back().total_flops += count;
}

void Recorder::special(double count) {
  GROPHECY_EXPECTS(in_kernel_);
  GROPHECY_EXPECTS(count >= 0.0);
  kernels_.back().total_special += count;
}

void Recorder::end_kernel() {
  GROPHECY_EXPECTS(in_kernel_);
  GROPHECY_EXPECTS(kernels_.back().iterations_seen > 0 ||
                   !kernels_.back().sites.empty());
  in_kernel_ = false;
}

skeleton::AppSkeleton Recorder::infer() const {
  GROPHECY_EXPECTS(!in_kernel_);
  GROPHECY_EXPECTS(!kernels_.empty());

  skeleton::AppSkeleton app;
  app.name = app_name_;
  app.arrays = arrays_;
  for (int temp : temporaries_) app.temporaries.push_back(temp);
  app.iterations = iterations_;

  for (const KernelRecord& record : kernels_) {
    skeleton::KernelSkeleton kernel;
    kernel.name = record.name;
    kernel.loops = record.loops;

    // One statement per observed loop depth, deepest last; arithmetic is
    // attributed to the deepest statement.
    std::vector<std::size_t> depths;
    for (const auto& [key, site] : record.sites) {
      (void)key;
      if (std::find(depths.begin(), depths.end(), site.loop_depth) ==
          depths.end())
        depths.push_back(site.loop_depth);
    }
    std::sort(depths.begin(), depths.end());
    GROPHECY_EXPECTS(!depths.empty());

    std::map<std::size_t, std::size_t> stmt_of_depth;
    for (std::size_t depth : depths) {
      skeleton::Statement stmt;
      stmt.depth = depth == kernel.loops.size()
                       ? -1
                       : static_cast<int>(depth);
      stmt_of_depth[depth] = kernel.body.size();
      kernel.body.push_back(std::move(stmt));
    }
    {
      const std::size_t deepest = depths.back();
      const std::uint64_t execs = record.iterations_by_depth.count(deepest)
                                      ? record.iterations_by_depth.at(deepest)
                                      : 1;
      skeleton::Statement& deepest_stmt =
          kernel.body[stmt_of_depth[deepest]];
      deepest_stmt.flops = record.total_flops / static_cast<double>(execs);
      deepest_stmt.special_ops =
          record.total_special / static_cast<double>(execs);
    }

    for (const auto& [key, site] : record.sites) {
      skeleton::ArrayRef ref;
      ref.array = key.array;
      ref.kind = key.is_store ? skeleton::RefKind::kStore
                              : skeleton::RefKind::kLoad;
      const std::size_t rank =
          arrays_[static_cast<std::size_t>(key.array)].dims.size();
      const std::size_t depth = site.loop_depth;

      // Loops that actually vary across this site's samples.
      std::vector<std::size_t> varying;
      for (std::size_t l = 0; l < depth; ++l) {
        for (std::size_t s = 1; s < site.samples.size(); ++s) {
          if (site.samples[s].loop_values[l] !=
              site.samples[0].loop_values[l]) {
            varying.push_back(l);
            break;
          }
        }
      }

      for (std::size_t d = 0; d < rank; ++d) {
        // Fit index_d = c0 + sum over varying loops, then verify exactly.
        const std::size_t unknowns = varying.size() + 1;
        std::vector<std::vector<double>> ata(
            unknowns, std::vector<double>(unknowns, 0.0));
        std::vector<double> atb(unknowns, 0.0);
        for (const Observation& sample : site.samples) {
          std::vector<double> row(unknowns, 1.0);
          for (std::size_t v = 0; v < varying.size(); ++v)
            row[v + 1] = static_cast<double>(sample.loop_values[varying[v]]);
          for (std::size_t r = 0; r < unknowns; ++r) {
            for (std::size_t c = 0; c < unknowns; ++c)
              ata[r][c] += row[r] * row[c];
            atb[r] += row[r] * static_cast<double>(sample.indices[d]);
          }
        }
        std::vector<double> solution;
        bool affine = solve_least_squares(ata, atb, solution);
        skeleton::AffineExpr expr;
        if (affine) {
          expr.constant = std::llround(solution[0]);
          for (std::size_t v = 0; v < varying.size(); ++v) {
            const std::int64_t coeff = std::llround(solution[v + 1]);
            if (coeff != 0)
              expr.terms.emplace_back(
                  static_cast<skeleton::LoopId>(varying[v]), coeff);
          }
          for (const Observation& sample : site.samples) {
            if (expr.evaluate(sample.loop_values) != sample.indices[d]) {
              affine = false;
              break;
            }
          }
        }
        if (affine) {
          ref.subscripts.push_back(std::move(expr));
          continue;
        }
        // Data dependent: record the dimension as hidden and detect which
        // loop variations move the observed index.
        ref.subscripts.push_back(skeleton::AffineExpr::make_constant(0));
        ref.indirect_dims.push_back(static_cast<int>(d));
        for (std::size_t l : varying) {
          bool moves = false;
          for (std::size_t s1 = 0; s1 < site.samples.size() && !moves;
               ++s1) {
            for (std::size_t s2 = s1 + 1; s2 < site.samples.size(); ++s2) {
              const auto& a = site.samples[s1];
              const auto& b = site.samples[s2];
              if (a.loop_values[l] == b.loop_values[l]) continue;
              bool others_equal = true;
              for (std::size_t other = 0; other < depth; ++other)
                if (other != l &&
                    a.loop_values[other] != b.loop_values[other])
                  others_equal = false;
              if (others_equal && a.indices[d] != b.indices[d]) {
                moves = true;
                break;
              }
            }
          }
          if (moves)
            ref.indirect_deps.push_back(static_cast<skeleton::LoopId>(l));
        }
        // No isolating evidence: conservatively depend on every loop.
        if (ref.indirect_deps.empty()) {
          for (std::size_t l = 0; l < depth; ++l)
            ref.indirect_deps.push_back(static_cast<skeleton::LoopId>(l));
        }
      }
      // Dedup hidden deps accumulated per dimension.
      std::sort(ref.indirect_deps.begin(), ref.indirect_deps.end());
      ref.indirect_deps.erase(
          std::unique(ref.indirect_deps.begin(), ref.indirect_deps.end()),
          ref.indirect_deps.end());
      kernel.body[stmt_of_depth[depth]].refs.push_back(std::move(ref));
    }
    app.kernels.push_back(std::move(kernel));
  }

  app.validate();
  return app;
}

}  // namespace grophecy::capture
