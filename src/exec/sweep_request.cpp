#include "exec/sweep_request.h"

#include <utility>

#include "core/experiment.h"
#include "hw/machine_registry.h"
#include "util/error.h"
#include "workloads/workload.h"

namespace grophecy::exec {

SweepRequest::SweepRequest(hw::MachineSpec machine)
    : machine_(std::move(machine)) {}

SweepRequest SweepRequest::on(hw::MachineSpec machine) {
  return SweepRequest(std::move(machine));
}

SweepRequest& SweepRequest::workloads(std::vector<std::string> names) {
  workloads_ = std::move(names);
  return *this;
}

SweepRequest& SweepRequest::machines(std::vector<std::string> names) {
  machine_names_ = std::move(names);
  return *this;
}

SweepRequest& SweepRequest::machines(AllMachines) {
  machine_names_ = hw::MachineRegistry::global().names();
  return *this;
}

SweepRequest& SweepRequest::sizes(std::vector<std::string> labels) {
  size_labels_ = std::move(labels);
  return *this;
}

SweepRequest& SweepRequest::sizes(AllSizes) {
  size_labels_.clear();
  return *this;
}

SweepRequest& SweepRequest::iterations(std::vector<int> counts) {
  iterations_ = std::move(counts);
  return *this;
}

SweepRequest& SweepRequest::options(core::ProjectionOptions options) {
  options_ = std::move(options);
  return *this;
}

SweepRequest& SweepRequest::seed(std::uint64_t base_seed) {
  base_seed_ = base_seed;
  return *this;
}

std::vector<JobSpec> SweepRequest::jobs() const {
  if (workloads_.empty())
    throw UsageError("SweepRequest: no workloads selected");
  if (iterations_.empty())
    throw UsageError("SweepRequest: no iteration counts selected");
  // Machines resolve before the grid expands, so an unknown name fails
  // the request up front (with the registered fleet listed) instead of
  // per-job inside the engine. The single-machine request expands with
  // one empty machine name — the byte-stable legacy grid.
  for (const std::string& name : machine_names_)
    hw::MachineRegistry::global().find(name);
  const std::vector<std::string> machine_axis =
      machine_names_.empty() ? std::vector<std::string>{""} : machine_names_;
  const workloads::PaperSuite& suite = workloads::PaperSuite::instance();
  std::vector<JobSpec> specs;
  for (const std::string& machine : machine_axis) {
    for (const std::string& name : workloads_) {
      const workloads::Workload& workload = suite.find(name);
      std::vector<std::string> labels = size_labels_;
      if (labels.empty())
        for (const workloads::DataSize& size : workload.paper_data_sizes())
          labels.push_back(size.label);
      for (const std::string& label : labels) {
        workloads::find_data_size(workload, label);  // validate early
        for (int iterations : iterations_)
          specs.push_back({name, label, iterations, machine});
      }
    }
  }
  return specs;
}

SweepEngine::JobFn SweepRequest::job_fn() const {
  // The lambda captures by value: a request may go out of scope while the
  // engine still holds the function. Everything job-specific is derived
  // inside the call, so concurrent invocations share nothing mutable.
  const hw::MachineSpec machine = machine_;
  const core::ProjectionOptions base_options = options_;
  const std::uint64_t base_seed = base_seed_;
  return [machine, base_options,
          base_seed](const JobSpec& spec) -> core::ProjectionReport {
    // The shared suite index resolves names in O(log n) without
    // reconstructing the four workloads per job.
    const workloads::Workload& workload =
        workloads::PaperSuite::instance().find(spec.workload);
    const workloads::DataSize size =
        workloads::find_data_size(workload, spec.size_label);
    core::ProjectionOptions options = base_options;
    // Measurement streams: per job, a pure function of (base, identity) —
    // and the identity includes the machine name, so the same grid point
    // on two machines draws decorrelated streams.
    options.seed = spec.stream_seed(base_seed);
    // Calibration: per system, shared by every job of the request — one
    // CalibrationCache entry per sweep *per machine* (the cache keys on
    // the bus spec, so machines never share a calibration).
    options.calibration_seed = base_seed;
    // A named machine overrides the request's default: resolve it through
    // the registry (already validated at expansion; a spec replayed from
    // a foreign journal still gets the find() UsageError contract).
    const hw::MachineSpec& target =
        spec.machine.empty() ? machine
                             : hw::MachineRegistry::global().find(spec.machine);
    core::ExperimentRunner runner(target, std::move(options));
    return runner.run(workload, size, spec.iterations);
  };
}

SweepSummary SweepRequest::run(SweepEngine& engine) const {
  return engine.run(jobs(), job_fn());
}

SweepSummary SweepRequest::run(SweepOptions options) const {
  SweepEngine engine(std::move(options));
  return run(engine);
}

}  // namespace grophecy::exec
