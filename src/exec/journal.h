// Crash-safe append-only result journal.
//
// A thousand-point sweep campaign must survive the process dying at any
// instant — power loss, OOM kill, ctrl-C — losing at most the record that
// was mid-write. The journal provides exactly that contract and nothing
// more:
//
//   * append-only: one record per line, never rewritten, never reordered;
//   * checksummed: every line carries a CRC-32 of its payload, so a torn
//     final line (the crash artifact) is detected and skipped on read
//     instead of being parsed as garbage;
//   * durable: an append is flushed to the OS immediately and fsync'd
//     either inline (the default) or at the caller's next sync() — the
//     sweep engine batches the fsync per committed run of jobs; an
//     acknowledged record survives an immediate crash, an unsynced tail
//     is at worst the torn-line case the reader already tolerates;
//   * thread-safe: append/sync/close serialize on an internal mutex, so
//     concurrent writers cannot interleave bytes of two records;
//   * tolerant: read() never throws on a damaged file — it returns every
//     record whose checksum verifies and counts the lines that did not.
//
// Line format (strict JSON, one object per line):
//
//   {"crc":"<8 lowercase hex>","rec":<payload>}
//
// where <payload> is the caller's record (exec::JobRecord serializes to a
// flat JSON object) and the checksum covers the payload bytes exactly.
// The journal itself treats payloads as opaque strings; pairing records
// to jobs is the SweepEngine's business (see exec/sweep.h).
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace grophecy::exec {

/// Everything a read recovered from a journal file.
///
/// Corruption is reported *with its location*, because the two places it
/// can appear mean very different things. A torn FINAL line is the
/// expected crash artifact: the writer died mid-append, and append-only
/// discipline guarantees nothing after it existed. A corrupt INTERIOR
/// line — one followed by further lines — cannot be produced by a crash
/// of this writer at all; it means the file was damaged after the fact
/// (bit rot, truncation+reuse, a foreign editor) and the caller should
/// say so loudly instead of shrugging it off as a torn tail.
struct JournalReadResult {
  /// Checksum-verified payloads, in file order (append order).
  std::vector<std::string> records;
  /// Lines that failed the format or checksum check (tail + interior).
  int corrupt_lines = 0;
  /// 1 when the final line of the file failed validation (the torn-tail
  /// crash artifact), else 0.
  int corrupt_tail = 0;
  /// Corrupt lines that are followed by at least one further line —
  /// never a crash artifact; real damage.
  int corrupt_interior = 0;
};

/// The journal file handle. Opening is separate from reading so a resume
/// can first read the existing records, then append new ones to the same
/// file.
class ResultJournal {
 public:
  ResultJournal() = default;
  ~ResultJournal();

  ResultJournal(const ResultJournal&) = delete;
  ResultJournal& operator=(const ResultJournal&) = delete;

  /// Reads and verifies `path`. A missing file is an empty journal, not
  /// an error; a damaged file yields its valid records plus a count of
  /// the rest. Never throws.
  static JournalReadResult read(const std::string& path);

  /// Opens `path` for appending (created if missing). Throws
  /// grophecy::UsageError when the file cannot be opened.
  void open_append(const std::string& path);

  bool is_open() const { return file_ != nullptr; }

  /// Appends one record, flushed to the OS immediately. The payload must
  /// be a single line (no '\n'); the checksum wrapper is added here.
  /// With sync_now (the default) the record is also fsync'd before
  /// returning; pass false to batch the fsync and call sync() once per
  /// group of appends.
  void append(std::string_view payload, bool sync_now = true);

  /// Pushes everything appended so far through the OS cache (fsync).
  void sync();

  void close();

 private:
  void sync_locked();

  mutable std::mutex mutex_;  ///< Serializes append/sync/close.
  std::FILE* file_ = nullptr;
};

}  // namespace grophecy::exec
