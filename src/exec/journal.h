// Crash-safe append-only result journal.
//
// A thousand-point sweep campaign must survive the process dying at any
// instant — power loss, OOM kill, ctrl-C — losing at most the record that
// was mid-write. The journal provides exactly that contract and nothing
// more:
//
//   * append-only: one record per line, never rewritten, never reordered;
//   * checksummed: every line carries a CRC-32 of its payload, so a torn
//     final line (the crash artifact) is detected and skipped on read
//     instead of being parsed as garbage;
//   * durable: every append is flushed and fsync'd before returning, so
//     an acknowledged record survives an immediate crash;
//   * tolerant: read() never throws on a damaged file — it returns every
//     record whose checksum verifies and counts the lines that did not.
//
// Line format (strict JSON, one object per line):
//
//   {"crc":"<8 lowercase hex>","rec":<payload>}
//
// where <payload> is the caller's record (exec::JobRecord serializes to a
// flat JSON object) and the checksum covers the payload bytes exactly.
// The journal itself treats payloads as opaque strings; pairing records
// to jobs is the SweepEngine's business (see exec/sweep.h).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace grophecy::exec {

/// Everything a read recovered from a journal file.
struct JournalReadResult {
  /// Checksum-verified payloads, in file order (append order).
  std::vector<std::string> records;
  /// Lines that failed the format or checksum check — normally 0, or 1
  /// when the final line was torn by a crash mid-append.
  int corrupt_lines = 0;
};

/// The journal file handle. Opening is separate from reading so a resume
/// can first read the existing records, then append new ones to the same
/// file.
class ResultJournal {
 public:
  ResultJournal() = default;
  ~ResultJournal();

  ResultJournal(const ResultJournal&) = delete;
  ResultJournal& operator=(const ResultJournal&) = delete;

  /// Reads and verifies `path`. A missing file is an empty journal, not
  /// an error; a damaged file yields its valid records plus a count of
  /// the rest. Never throws.
  static JournalReadResult read(const std::string& path);

  /// Opens `path` for appending (created if missing). Throws
  /// grophecy::UsageError when the file cannot be opened.
  void open_append(const std::string& path);

  bool is_open() const { return file_ != nullptr; }

  /// Appends one record, then flushes and fsyncs. The payload must be a
  /// single line (no '\n'); the checksum wrapper is added here.
  void append(std::string_view payload);

  void close();

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace grophecy::exec
