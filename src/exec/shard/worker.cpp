#include "exec/shard/worker.h"

#include <cstdlib>
#include <limits>

#include "exec/journal.h"
#include "exec/shard/protocol.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define GROPHECY_SHARD_POSIX 1
#endif

namespace grophecy::exec::shard {

#ifdef GROPHECY_SHARD_POSIX

void worker_main(int fd, const std::string& shard_journal_path,
                 const SweepOptions& options,
                 const SweepEngine::JobFn& fn) {
  // The worker's own execution profile: strictly serial, attempts run
  // inline on this (the only) thread. The in-process deadline watchdog is
  // deliberately disabled — process-level supervision replaces it: a hung
  // attempt silences the heartbeats and the supervisor SIGKILLs the whole
  // worker, which is strictly stronger than abandoning a thread. Retries,
  // backoff, and record shape are exactly the in-process engine's, which
  // is what makes the shard journal byte-identical to a serial run.
  SweepOptions worker_options = options;
  worker_options.shards = 0;
  worker_options.workers = 1;
  worker_options.deadline_s = std::numeric_limits<double>::infinity();
  worker_options.journal_path.clear();
  SweepEngine engine(std::move(worker_options));

  ResultJournal journal;
  if (!shard_journal_path.empty()) {
    try {
      journal.open_append(shard_journal_path);
    } catch (...) {
      _exit(kWorkerExitJournal);
    }
  }

  // No work is assigned before the hello, so dying anywhere above this
  // line is a clean respawn for the supervisor, never a lost job.
  if (!write_frame(fd, MsgType::kHello, "")) _exit(kWorkerExitClean);

  while (true) {
    const std::optional<Frame> frame = read_frame(fd);
    // EOF or a broken frame means the supervisor is gone (killed, or its
    // end of the socket closed at exit). Orphaned workers must not keep
    // running jobs nobody will collect.
    if (!frame) _exit(kWorkerExitClean);
    if (frame->type == MsgType::kShutdown) _exit(kWorkerExitClean);
    if (frame->type != MsgType::kJob) _exit(kWorkerExitProtocol);
    const std::optional<JobAssignment> assignment = decode_job(frame->payload);
    if (!assignment) _exit(kWorkerExitProtocol);

    // One heartbeat at job start, from this same thread. A job that
    // wedges in an infinite loop sends nothing more — the silence is the
    // supervisor's kill signal, so heartbeat_timeout_s bounds the
    // worst-case honest job time.
    if (!write_frame(fd, MsgType::kHeartbeat, "")) _exit(kWorkerExitClean);

    const JobOutcome outcome = engine.execute_job(assignment->spec, fn);

    // Durable before acked: the record reaches the shard journal (CRC +
    // fsync) before the completion frame is sent. An acked record can
    // never be lost; an unacked one is recovered from the shard on
    // resume. A crash between the two at worst re-runs one job.
    const std::string record_json = outcome.record.to_json();
    if (journal.is_open()) journal.append(record_json);

    Completion completion;
    completion.index = assignment->index;
    completion.status = outcome.status == JobStatus::kOk ? JobStatus::kOk
                                                         : JobStatus::kFailed;
    completion.attempts = outcome.attempts;
    completion.elapsed_s = outcome.elapsed_s;
    completion.backoff_s = outcome.backoff_s;
    completion.record_json = record_json;
    if (!write_frame(fd, MsgType::kDone, encode_done(completion)))
      _exit(kWorkerExitClean);
  }
}

#else  // !GROPHECY_SHARD_POSIX

void worker_main(int, const std::string&, const SweepOptions&,
                 const SweepEngine::JobFn&) {
  // Unreachable: run_sharded refuses to fork on non-POSIX platforms.
  std::abort();
}

#endif

}  // namespace grophecy::exec::shard
