// The supervisor <-> worker pipe protocol of the process-sharded sweep.
//
// A supervisor and each of its forked workers share one AF_UNIX
// socketpair and speak a deliberately tiny length-prefixed protocol over
// it. Length-prefixed framing — not line-oriented text — because the
// failure mode this subsystem exists for is a peer dying *mid-write*: a
// torn frame must be detectable as torn (the byte count doesn't match)
// rather than parseable as a shorter message. Every frame is
//
//   u32 little-endian length | 1 type byte | payload
//
// where the length covers the type byte plus the payload. Frame types:
//
//   kHello      worker -> supervisor, once at startup: "forked, journal
//               open, ready for work". The supervisor assigns nothing
//               before the hello, so a worker that dies during its own
//               setup is a clean respawn, never a lost job.
//   kJob        supervisor -> worker: one JobSpec plus its submission
//               index. The worker owns the job until kDone or death.
//   kHeartbeat  worker -> supervisor: "alive and making progress on the
//               current job". Sent from the worker's single thread — a
//               job stuck in an infinite loop therefore stops the
//               heartbeats, which is precisely the signal the
//               supervisor's kill policy wants (a background heartbeat
//               thread would keep beating for a wedged job and defeat
//               detection).
//   kDone       worker -> supervisor: completion ack. Payload is a flat
//               JSON meta object, a '\n', and the exact JobRecord JSON
//               bytes the worker appended to its shard journal — the
//               supervisor re-uses those bytes verbatim in the merge so
//               the canonical journal is byte-identical to a serial run.
//   kShutdown   supervisor -> worker: drain and _exit(0).
//
// Payload objects are util::FlatJson — the same hardened flat-JSON codec
// the journal and the serve wire use. A malformed or oversized frame is
// a protocol violation; the supervisor treats it like a worker death
// (kill, respawn), never trusts partial data.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exec/sweep.h"

namespace grophecy::exec::shard {

enum class MsgType : char {
  kHello = 'R',
  kJob = 'J',
  kHeartbeat = 'H',
  kDone = 'C',
  kShutdown = 'Q',
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kHeartbeat;
  std::string payload;
};

/// Frames larger than this are a protocol violation (a JobRecord line is
/// a few hundred bytes; a megabyte means a corrupted length prefix).
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 20;

/// Writes one frame to `fd` (a socket), handling short writes and EINTR,
/// suppressing SIGPIPE. Returns false when the peer is gone (EPIPE /
/// ECONNRESET) or the write failed — the caller decides whether that
/// means "worker died" (supervisor) or "supervisor died, exit" (worker).
bool write_frame(int fd, MsgType type, std::string_view payload);

/// Blocks until one full frame arrives on `fd`. std::nullopt on EOF,
/// error, or a malformed/oversized frame — for the single-threaded
/// worker all of those mean the same thing: the supervisor is gone or
/// broken, so exit.
std::optional<Frame> read_frame(int fd);

/// Incremental frame decoder for the supervisor's poll loop: call
/// read_available once per POLLIN, collect every frame that completed.
/// Bytes of a torn final frame stay buffered and are simply discarded
/// with the reader when the worker's death is processed.
class FrameReader {
 public:
  enum class Status {
    kOpen,      ///< Connection healthy (frames may or may not have arrived).
    kEof,       ///< Peer closed (worker exited); buffered partial = torn.
    kProtocol,  ///< Malformed/oversized frame: treat the worker as bad.
  };

  /// Performs one read(2) on `fd` and appends decoded frames to `out`.
  Status read_available(int fd, std::vector<Frame>& out);

 private:
  std::string buffer_;
};

// --- payload codecs -----------------------------------------------------
// Kept as tested pure functions; the supervisor and worker never hand-roll
// JSON.

/// kJob payload: the spec plus its submission index.
std::string encode_job(std::size_t index, const JobSpec& spec);
struct JobAssignment {
  std::size_t index = 0;
  JobSpec spec;
};
std::optional<JobAssignment> decode_job(std::string_view payload);

/// kDone payload: outcome meta + '\n' + the journaled record bytes.
struct Completion {
  std::size_t index = 0;
  JobStatus status = JobStatus::kFailed;  ///< kOk or kFailed only.
  int attempts = 0;
  double elapsed_s = 0.0;
  double backoff_s = 0.0;
  std::string record_json;  ///< Exact bytes appended to the shard journal.
};
std::string encode_done(const Completion& completion);
std::optional<Completion> decode_done(std::string_view payload);

}  // namespace grophecy::exec::shard
