// The process-shard supervisor: worker-death survival for sweeps.
//
// Threads share a fate: a segfault, an OOM kill, or a genuinely infinite
// loop in one in-process worker takes the whole sweep (and every
// uncommitted result) with it. SweepOptions::shards > 0 trades the thread
// pool for N forked worker *processes*, and this module is the parent
// side of that trade. The supervisor:
//
//   * forks the workers (plain fork, no exec — the job closure crosses
//     for free) and talks to each over its own AF_UNIX socketpair with
//     the length-prefixed protocol of exec/shard/protocol.h;
//   * hands out jobs dynamically in submission order, one in flight per
//     worker;
//   * detects death three ways: socket EOF (the kernel closes the fd when
//     the process dies), waitpid classification (clean exit / nonzero
//     exit / fatal signal), and heartbeat silence (a worker holding a job
//     that says nothing for heartbeat_timeout_s is presumed wedged and is
//     SIGKILLed — an infinite loop cannot be detected any other way);
//   * re-queues the dead worker's in-flight job at the FRONT of the queue
//     and respawns a replacement with the same bounded exponential
//     backoff policy the retry path uses (recorded, not slept), under a
//     total respawn budget so a dying *machine* cannot respawn forever;
//   * quarantines poison: a job whose execution has now killed
//     poison_kill_threshold workers stops being re-assigned and becomes a
//     permanent, structured ErrorKind::kWorkerDeath failure — one bad job
//     cannot chew through the fleet while every other job completes.
//
// The supervisor is strictly single-threaded — one poll(2) loop, no
// worker pool, no committer thread — so fork(2) is always called from a
// single-threaded process (well-defined even under TSan) and no lock can
// be held across a fork.
//
// Journaling and the crash-consistent merge are the other half of the
// story (SweepEngine::run_sharded, defined in supervisor.cpp): each
// worker appends to its own shard journal before acking, and the
// supervisor folds acked record bytes into the canonical journal in
// submission order after the run — byte-identical to a serial run of the
// same grid. If the *supervisor* dies, the shard files remain; the next
// run re-reads them via existing_shard_paths() and only genuinely missing
// jobs execute again. See docs/robustness.md ("Process isolation and
// sharding").
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "exec/shard/protocol.h"
#include "exec/sweep.h"

namespace grophecy::exec::shard {

/// The shard journal path for worker slot `slot` of `journal_path`:
/// "<journal_path>.shard<slot, 3 digits>". Kept next to the canonical
/// journal so shards survive exactly as long as their sweep's directory.
std::string shard_path(const std::string& journal_path, int slot);

/// Every existing shard file of `journal_path`, sorted. Matches any slot
/// number, not just the current shard count, so a resume with fewer
/// shards still recovers every file a wider previous run left behind.
std::vector<std::string> existing_shard_paths(const std::string& journal_path);

/// One pending job: its index into the sweep's unique submission-order
/// job list (the index the merge sorts by) plus the spec itself.
struct PendingJob {
  std::size_t index = 0;
  JobSpec spec;
};

/// How supervision ended for one pending job.
enum class ShardJobStatus {
  kCompleted,    ///< A worker acked it (ok or failed — see the record).
  kQuarantined,  ///< Killed >= poison_kill_threshold workers; poison.
  kAbandoned,    ///< Respawn budget exhausted before it could run.
};

struct ShardJobResult {
  ShardJobStatus status = ShardJobStatus::kAbandoned;
  Completion completion;      ///< Meaningful when kCompleted.
  int worker_kills = 0;       ///< Worker deaths attributed to this job.
  std::string death_message;  ///< Last death classification, when killed.
};

/// Sweep-level accounting of the supervision pass.
struct SuperviseResult {
  std::map<std::size_t, ShardJobResult> jobs;  ///< Keyed by PendingJob::index.
  int worker_deaths = 0;
  int worker_respawns = 0;
  double respawn_backoff_s = 0.0;  ///< Recorded (never slept) backoff.
};

/// The poll-loop parent of the worker fleet. Construct with the sweep's
/// options (validated; shards >= 1), the job function, and the pending
/// jobs in submission order; run() forks, supervises, and reaps every
/// worker before returning. POSIX only — run() throws UsageError
/// elsewhere. Single use: construct, run once, discard.
class ShardSupervisor {
 public:
  /// `journal_path` is the canonical journal path ("" = no journaling);
  /// workers derive their shard paths from it via shard_path().
  ShardSupervisor(const SweepOptions& options, const SweepEngine::JobFn& fn,
                  std::string journal_path, std::vector<PendingJob> pending);

  SuperviseResult run();

 private:
  struct Slot;  // One worker process: pid, socket, reader, in-flight job.

  void spawn(std::vector<Slot>& slots, std::size_t slot_index);
  /// Reaps a dead worker, attributes its in-flight job (re-queue or
  /// quarantine), and respawns a replacement when there is still queued
  /// work and respawn budget. `reason` adds context (e.g. "heartbeat
  /// timeout") to the waitpid classification.
  void handle_death(std::vector<Slot>& slots, std::size_t slot_index,
                    SuperviseResult& result, const char* reason = nullptr);
  void assign_if_possible(Slot& slot);

  const SweepOptions& options_;
  const SweepEngine::JobFn& fn_;
  std::string journal_path_;
  std::vector<PendingJob> pending_;

  // Supervision state (valid during run()).
  std::vector<std::size_t> queue_;           ///< Indices into pending_.
  std::map<std::size_t, int> kills_by_job_;  ///< pending_ index -> deaths.
  std::size_t settled_ = 0;  ///< Jobs with a final ShardJobResult.
  int respawn_budget_ = 0;
};

}  // namespace grophecy::exec::shard
