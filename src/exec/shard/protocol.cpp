#include "exec/shard/protocol.h"

#include <cerrno>
#include <cstring>

#include "util/jsonl.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#define GROPHECY_SHARD_POSIX 1
#endif

namespace grophecy::exec::shard {

#ifdef GROPHECY_SHARD_POSIX

namespace {

/// send(2) with MSG_NOSIGNAL so a dead peer yields EPIPE instead of
/// killing the process with SIGPIPE — the whole point of this subsystem
/// is that peers die.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame: peer died
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void put_u32le(char* out, std::uint32_t value) {
  out[0] = static_cast<char>(value & 0xff);
  out[1] = static_cast<char>((value >> 8) & 0xff);
  out[2] = static_cast<char>((value >> 16) & 0xff);
  out[3] = static_cast<char>((value >> 24) & 0xff);
}

std::uint32_t get_u32le(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

}  // namespace

bool write_frame(int fd, MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  std::string frame;
  frame.resize(4);
  put_u32le(frame.data(), static_cast<std::uint32_t>(payload.size() + 1));
  frame += static_cast<char>(type);
  frame += payload;
  return write_all(fd, frame.data(), frame.size());
}

std::optional<Frame> read_frame(int fd) {
  char header[4];
  if (!read_all(fd, header, sizeof header)) return std::nullopt;
  const std::uint32_t length = get_u32le(header);
  if (length < 1 || length > kMaxFramePayload + 1) return std::nullopt;
  std::string body(length, '\0');
  if (!read_all(fd, body.data(), body.size())) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MsgType>(body[0]);
  frame.payload = body.substr(1);
  return frame;
}

FrameReader::Status FrameReader::read_available(int fd,
                                                std::vector<Frame>& out) {
  char chunk[65536];
  ssize_t n;
  do {
    n = ::read(fd, chunk, sizeof chunk);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Status::kProtocol;
  const bool eof = (n == 0);
  buffer_.append(chunk, static_cast<std::size_t>(n));

  while (buffer_.size() >= 4) {
    const std::uint32_t length = get_u32le(buffer_.data());
    if (length < 1 || length > kMaxFramePayload + 1) return Status::kProtocol;
    if (buffer_.size() < 4 + static_cast<std::size_t>(length)) break;
    Frame frame;
    frame.type = static_cast<MsgType>(buffer_[4]);
    frame.payload = buffer_.substr(5, length - 1);
    out.push_back(std::move(frame));
    buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  }
  // Whatever is still buffered at EOF is a torn frame: the worker died
  // mid-write. The caller discards it with the reader.
  return eof ? Status::kEof : Status::kOpen;
}

#else  // !GROPHECY_SHARD_POSIX

bool write_frame(int, MsgType, std::string_view) { return false; }
std::optional<Frame> read_frame(int) { return std::nullopt; }
FrameReader::Status FrameReader::read_available(int, std::vector<Frame>&) {
  return Status::kEof;
}

#endif

std::string encode_job(std::size_t index, const JobSpec& spec) {
  util::FlatJson object;
  object.emplace_back("index", static_cast<double>(index));
  object.emplace_back("workload", spec.workload);
  object.emplace_back("size", spec.size_label);
  object.emplace_back("iterations", static_cast<double>(spec.iterations));
  // Like the journal: the machine key exists only when the spec names one,
  // so single-machine assignments keep their exact legacy bytes.
  if (!spec.machine.empty()) object.emplace_back("machine", spec.machine);
  return util::write_flat_json(object);
}

std::optional<JobAssignment> decode_job(std::string_view payload) {
  const auto object = util::parse_flat_json(payload);
  if (!object) return std::nullopt;
  const auto index = util::json_number(*object, "index");
  const auto workload = util::json_string(*object, "workload");
  const auto size = util::json_string(*object, "size");
  const auto iterations = util::json_number(*object, "iterations");
  if (!index || *index < 0 || !workload || !size || !iterations)
    return std::nullopt;
  JobAssignment assignment;
  assignment.index = static_cast<std::size_t>(*index);
  assignment.spec =
      JobSpec{*workload, *size, static_cast<int>(*iterations),
              util::json_string(*object, "machine").value_or("")};
  return assignment;
}

std::string encode_done(const Completion& completion) {
  util::FlatJson meta;
  meta.emplace_back("index", static_cast<double>(completion.index));
  meta.emplace_back("status", std::string(completion.status == JobStatus::kOk
                                              ? "ok"
                                              : "failed"));
  meta.emplace_back("attempts", static_cast<double>(completion.attempts));
  meta.emplace_back("elapsed_s", completion.elapsed_s);
  meta.emplace_back("backoff_s", completion.backoff_s);
  return util::write_flat_json(meta) + "\n" + completion.record_json;
}

std::optional<Completion> decode_done(std::string_view payload) {
  const std::size_t newline = payload.find('\n');
  if (newline == std::string_view::npos) return std::nullopt;
  const auto meta = util::parse_flat_json(payload.substr(0, newline));
  if (!meta) return std::nullopt;
  const auto index = util::json_number(*meta, "index");
  const auto status = util::json_string(*meta, "status");
  const auto attempts = util::json_number(*meta, "attempts");
  const auto elapsed = util::json_number(*meta, "elapsed_s");
  const auto backoff = util::json_number(*meta, "backoff_s");
  if (!index || *index < 0 || !status || !attempts || !elapsed || !backoff)
    return std::nullopt;
  if (*status != "ok" && *status != "failed") return std::nullopt;
  Completion completion;
  completion.index = static_cast<std::size_t>(*index);
  completion.status = *status == "ok" ? JobStatus::kOk : JobStatus::kFailed;
  completion.attempts = static_cast<int>(*attempts);
  completion.elapsed_s = *elapsed;
  completion.backoff_s = *backoff;
  completion.record_json = std::string(payload.substr(newline + 1));
  // The record must round-trip as a JobRecord downstream; reject frames
  // whose record part is obviously torn here so the supervisor treats
  // them as a protocol violation, not a result.
  if (!JobRecord::from_json(completion.record_json)) return std::nullopt;
  return completion;
}

}  // namespace grophecy::exec::shard
