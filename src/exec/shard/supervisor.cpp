#include "exec/shard/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>

#include "exec/journal.h"
#include "exec/shard/protocol.h"
#include "exec/shard/worker.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/table.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define GROPHECY_SHARD_POSIX 1
#endif

namespace grophecy::exec::shard {

std::string shard_path(const std::string& journal_path, int slot) {
  return journal_path + util::strfmt(".shard%03d", slot);
}

std::vector<std::string> existing_shard_paths(
    const std::string& journal_path) {
  std::vector<std::string> paths;
#ifdef GROPHECY_SHARD_POSIX
  if (journal_path.empty()) return paths;
  const std::size_t slash = journal_path.find_last_of('/');
  const bool rooted = slash != std::string::npos;
  const std::string dir =
      !rooted ? std::string(".")
              : (slash == 0 ? std::string("/") : journal_path.substr(0, slash));
  const std::string base =
      rooted ? journal_path.substr(slash + 1) : journal_path;
  const std::string prefix = base + ".shard";
  DIR* handle = ::opendir(dir.c_str());
  if (!handle) return paths;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0)
      continue;
    // Only all-digit suffixes: "<base>.shard017", any width — a resume
    // with fewer shards still collects every file a wider run left.
    if (!std::all_of(name.begin() + static_cast<std::ptrdiff_t>(prefix.size()),
                     name.end(), [](char c) { return c >= '0' && c <= '9'; }))
      continue;
    paths.push_back(rooted ? journal_path.substr(0, slash + 1) + name : name);
  }
  ::closedir(handle);
  std::sort(paths.begin(), paths.end());
#else
  (void)journal_path;
#endif
  return paths;
}

#ifdef GROPHECY_SHARD_POSIX

namespace {

constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "unknown";
  }
}

/// Human classification of a reaped worker's wait status: fatal signal,
/// nonzero exit (with the known worker exit codes spelled out), or a
/// clean exit that nonetheless abandoned its job.
std::string describe_wait_status(int status) {
  if (WIFSIGNALED(status))
    return util::strfmt("killed by signal %d (%s)", WTERMSIG(status),
                        signal_name(WTERMSIG(status)));
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kWorkerExitClean)
      return "exited cleanly without completing its job";
    if (code == kWorkerExitJournal)
      return util::strfmt("exited with status %d (could not open its shard "
                          "journal)", code);
    if (code == kWorkerExitProtocol)
      return util::strfmt("exited with status %d (protocol error)", code);
    return util::strfmt("exited with status %d", code);
  }
  return "died with an unrecognized wait status";
}

}  // namespace

/// One worker process as the supervisor sees it.
struct ShardSupervisor::Slot {
  pid_t pid = -1;
  int fd = -1;               ///< Supervisor end of the socketpair.
  bool ready = false;        ///< Hello received; jobs may be assigned.
  std::size_t job = kNoJob;  ///< Index into pending_, kNoJob when idle.
  Clock::time_point last_activity;
  int respawns = 0;  ///< Times this slot has been respawned (backoff exp).
  FrameReader reader;

  bool live() const { return pid > 0; }
  /// Slots that must produce bytes within the heartbeat timeout: a
  /// worker holding a job, or one that has not said hello yet. Idle
  /// ready workers owe nothing and are never timed out.
  bool watched() const { return live() && (!ready || job != kNoJob); }
};

ShardSupervisor::ShardSupervisor(const SweepOptions& options,
                                 const SweepEngine::JobFn& fn,
                                 std::string journal_path,
                                 std::vector<PendingJob> pending)
    : options_(options),
      fn_(fn),
      journal_path_(std::move(journal_path)),
      pending_(std::move(pending)) {}

void ShardSupervisor::spawn(std::vector<Slot>& slots, std::size_t slot_index) {
  Slot& slot = slots[slot_index];
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
    throw UsageError(util::strfmt("sharded sweep: socketpair failed: %s",
                                  std::strerror(errno)));
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(sv[0]);
    ::close(sv[1]);
    throw UsageError(util::strfmt("sharded sweep: fork failed: %s",
                                  std::strerror(err)));
  }
  if (pid == 0) {
    // Child. Drop the supervisor end of our own pair AND every inherited
    // supervisor-end fd of the sibling slots: if a sibling's supervisor
    // end survived in this process, that sibling would never see EOF when
    // the supervisor dies and would linger as an orphan.
    ::close(sv[0]);
    for (const Slot& other : slots)
      if (other.fd >= 0) ::close(other.fd);
    const std::string journal =
        journal_path_.empty()
            ? std::string()
            : shard_path(journal_path_, static_cast<int>(slot_index));
    worker_main(sv[1], journal, options_, fn_);  // [[noreturn]]
  }
  ::close(sv[1]);
  const int respawns = slot.respawns;
  slot = Slot{};
  slot.pid = pid;
  slot.fd = sv[0];
  slot.last_activity = Clock::now();
  slot.respawns = respawns;
}

void ShardSupervisor::assign_if_possible(Slot& slot) {
  if (!slot.live() || !slot.ready || slot.job != kNoJob || queue_.empty())
    return;
  const std::size_t pos = queue_.front();
  queue_.erase(queue_.begin());
  slot.job = pos;
  slot.last_activity = Clock::now();
  // A failed write means the worker died under us; the poll loop will see
  // the EOF and route this job through the normal death path.
  write_frame(slot.fd, MsgType::kJob,
              encode_job(pos, pending_[pos].spec));
}

void ShardSupervisor::handle_death(std::vector<Slot>& slots,
                                   std::size_t slot_index,
                                   SuperviseResult& result,
                                   const char* reason) {
  Slot& slot = slots[slot_index];
  ::close(slot.fd);
  slot.fd = -1;
  int status = 0;
  ::waitpid(slot.pid, &status, 0);
  slot.pid = -1;
  ++result.worker_deaths;

  std::string death = describe_wait_status(status);
  if (reason) death = util::strfmt("%s; %s", death.c_str(), reason);

  if (slot.job != kNoJob) {
    const std::size_t pos = slot.job;
    slot.job = kNoJob;
    const int kills = ++kills_by_job_[pos];
    if (kills >= options_.poison_kill_threshold) {
      // Poison: this job has now taken poison_kill_threshold workers
      // with it. It stops being re-assigned and becomes a permanent,
      // structured failure; every other job keeps running.
      ShardJobResult job_result;
      job_result.status = ShardJobStatus::kQuarantined;
      job_result.worker_kills = kills;
      job_result.death_message = death;
      result.jobs[pending_[pos].index] = std::move(job_result);
      ++settled_;
    } else {
      // Front of the queue: the interrupted job runs next, preserving
      // submission-order-first scheduling as closely as death allows.
      queue_.insert(queue_.begin(), pos);
    }
  }

  // Respawn a replacement only when there is queued work for it. The
  // budget bounds pathological machines (every fork dies instantly):
  // once spent, no worker is ever forked again and run() fails whatever
  // cannot drain. Backoff is recorded, not slept, like the retry path.
  if (!queue_.empty() && respawn_budget_ > 0) {
    --respawn_budget_;
    ++result.worker_respawns;
    result.respawn_backoff_s +=
        std::min(options_.backoff_initial_s * std::pow(2.0, slot.respawns),
                 options_.backoff_max_s);
    spawn(slots, slot_index);
    ++slots[slot_index].respawns;
  }
}

SuperviseResult ShardSupervisor::run() {
  SuperviseResult result;
  if (pending_.empty()) return result;

  queue_.clear();
  kills_by_job_.clear();
  settled_ = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) queue_.push_back(i);
  // Generous: enough for every job to kill a worker once, every slot to
  // die twice, and still finish. A run that exceeds it is not having
  // transient bad luck; its machine or its grid is broken.
  respawn_budget_ =
      2 * static_cast<int>(pending_.size()) + 2 * options_.shards;

  const int worker_count = std::max(
      1, std::min(options_.shards, static_cast<int>(pending_.size())));
  std::vector<Slot> slots(static_cast<std::size_t>(worker_count));
  for (std::size_t s = 0; s < slots.size(); ++s) spawn(slots, s);

  while (settled_ < pending_.size()) {
    bool any_live = false;
    for (const Slot& slot : slots) any_live |= slot.live();
    if (!any_live) break;  // Budget exhausted; abandon the queue below.

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].live()) continue;
      fds.push_back(pollfd{slots[s].fd, POLLIN, 0});
      fd_slot.push_back(s);
    }

    // Wake in time to enforce the earliest heartbeat deadline. Death by
    // EOF needs no timeout — the kernel closes the socket the instant
    // the worker dies and poll returns immediately.
    int timeout_ms = -1;
    const Clock::time_point now = Clock::now();
    for (const Slot& slot : slots) {
      if (!slot.watched()) continue;
      const double remaining =
          options_.heartbeat_timeout_s -
          seconds_between(slot.last_activity, now);
      const int ms =
          remaining <= 0.0
              ? 0
              : static_cast<int>(std::min(remaining * 1000.0 + 1.0, 3.6e6));
      timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
    }

    const int events = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                              timeout_ms);
    if (events < 0) {
      if (errno == EINTR) continue;
      throw UsageError(util::strfmt("sharded sweep: poll failed: %s",
                                    std::strerror(errno)));
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t s = fd_slot[k];
      Slot& slot = slots[s];
      if (!slot.live()) continue;

      std::vector<Frame> frames;
      const FrameReader::Status status =
          slot.reader.read_available(slot.fd, frames);
      slot.last_activity = Clock::now();

      bool protocol_violation = status == FrameReader::Status::kProtocol;
      for (const Frame& frame : frames) {
        if (protocol_violation) break;
        switch (frame.type) {
          case MsgType::kHello:
            slot.ready = true;
            break;
          case MsgType::kHeartbeat:
            break;  // last_activity already refreshed.
          case MsgType::kDone: {
            const std::optional<Completion> completion =
                decode_done(frame.payload);
            if (!completion || slot.job == kNoJob ||
                completion->index != slot.job) {
              protocol_violation = true;
              break;
            }
            ShardJobResult job_result;
            job_result.status = ShardJobStatus::kCompleted;
            job_result.completion = *completion;
            const auto kills = kills_by_job_.find(slot.job);
            job_result.worker_kills =
                kills == kills_by_job_.end() ? 0 : kills->second;
            result.jobs[pending_[slot.job].index] = std::move(job_result);
            ++settled_;
            slot.job = kNoJob;
            break;
          }
          default:
            // Workers never send kJob/kShutdown; anything else is noise
            // from a corrupted peer.
            protocol_violation = true;
            break;
        }
      }

      if (protocol_violation) {
        // Partial trust is no trust: kill the worker outright and let
        // the death machinery re-assign its job.
        ::kill(slot.pid, SIGKILL);
        handle_death(slots, s, result, "protocol violation");
        continue;
      }
      if (status == FrameReader::Status::kEof) {
        handle_death(slots, s, result);
        continue;
      }
      assign_if_possible(slot);
    }

    // Heartbeat enforcement: a watched worker silent past the timeout is
    // presumed wedged (an infinite loop emits no frames and never dies
    // on its own) and is SIGKILLed. waitpid then classifies the kill.
    const Clock::time_point scan = Clock::now();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      if (!slot.watched()) continue;
      if (seconds_between(slot.last_activity, scan) <
          options_.heartbeat_timeout_s)
        continue;
      ::kill(slot.pid, SIGKILL);
      handle_death(slots, s, result,
                   "silent past the heartbeat timeout; presumed stuck");
    }

    // Catch-all assignment pass: a worker idled by a Done while the
    // queue was empty picks up jobs re-queued by later deaths.
    for (Slot& slot : slots) assign_if_possible(slot);
  }

  // Respawn budget exhausted with jobs still queued: fail them as
  // structured worker-death errors rather than looping forever.
  for (const std::size_t pos : queue_) {
    ShardJobResult job_result;
    job_result.status = ShardJobStatus::kAbandoned;
    const auto kills = kills_by_job_.find(pos);
    job_result.worker_kills =
        kills == kills_by_job_.end() ? 0 : kills->second;
    job_result.death_message = util::strfmt(
        "worker respawn budget exhausted after %d respawns",
        result.worker_respawns);
    result.jobs[pending_[pos].index] = std::move(job_result);
    ++settled_;
  }
  queue_.clear();

  // Orderly teardown: shutdown frame (best effort), close — which is EOF
  // and therefore exit for any worker that missed the frame — then reap.
  for (Slot& slot : slots) {
    if (!slot.live()) continue;
    write_frame(slot.fd, MsgType::kShutdown, "");
    ::close(slot.fd);
    slot.fd = -1;
  }
  for (Slot& slot : slots) {
    if (slot.pid <= 0) continue;
    int status = 0;
    ::waitpid(slot.pid, &status, 0);
    slot.pid = -1;
  }
  return result;
}

#else  // !GROPHECY_SHARD_POSIX

struct ShardSupervisor::Slot {};

ShardSupervisor::ShardSupervisor(const SweepOptions& options,
                                 const SweepEngine::JobFn& fn,
                                 std::string journal_path,
                                 std::vector<PendingJob> pending)
    : options_(options),
      fn_(fn),
      journal_path_(std::move(journal_path)),
      pending_(std::move(pending)) {}

SuperviseResult ShardSupervisor::run() {
  throw UsageError(
      "SweepOptions.shards > 0 requires a POSIX platform "
      "(fork, socketpair, poll)");
}

void ShardSupervisor::spawn(std::vector<Slot>&, std::size_t) {}
void ShardSupervisor::handle_death(std::vector<Slot>&, std::size_t,
                                   SuperviseResult&, const char*) {}
void ShardSupervisor::assign_if_possible(Slot&) {}

#endif

}  // namespace grophecy::exec::shard

namespace grophecy::exec {

// The sharded twin of run_unique, defined here next to the supervisor it
// drives. Same inputs, same observable artifacts: outcomes, counters, and
// journal appends in submission order, byte-identical (with
// record_wall_time = false) to the in-process engine running the same
// grid — that equivalence is what the chaos suite asserts.
SweepSummary SweepEngine::run_sharded(const std::vector<JobSpec>& jobs,
                                      const JobFn& fn) {
#ifndef GROPHECY_SHARD_POSIX
  throw UsageError(
      "SweepOptions.shards > 0 requires a POSIX platform "
      "(fork, socketpair, poll)");
#else
  using shard::Completion;
  using shard::PendingJob;
  using shard::ShardJobResult;
  using shard::ShardJobStatus;

  SweepSummary summary;
  summary.outcomes.reserve(jobs.size());

  // Canonical journal: the resume baseline. Later records win, exactly
  // as in run_unique.
  std::map<std::string, JobRecord> canonical;
  if (!options_.journal_path.empty()) {
    JournalReadResult previous = ResultJournal::read(options_.journal_path);
    summary.journal_path = options_.journal_path;
    summary.journal_corrupt_lines = previous.corrupt_lines;
    summary.journal_corrupt_interior = previous.corrupt_interior;
    for (const std::string& payload : previous.records) {
      if (auto record = JobRecord::from_json(payload)) {
        canonical[record->fingerprint] = std::move(*record);
      } else {
        ++summary.journal_corrupt_lines;
        ++summary.journal_corrupt_interior;
      }
    }
  }

  // Shard recovery: results a previous (killed) supervisor's workers made
  // durable but never merged. A torn shard tail is the expected crash
  // artifact of a killed worker and is NOT counted as corruption;
  // interior shard damage is real and is surfaced loudly.
  std::map<std::string, std::pair<JobRecord, std::string>> recovered;
  if (!options_.journal_path.empty()) {
    for (const std::string& path :
         shard::existing_shard_paths(options_.journal_path)) {
      const JournalReadResult shard_read = ResultJournal::read(path);
      const int interior_before = summary.journal_corrupt_interior;
      summary.journal_corrupt_lines += shard_read.corrupt_interior;
      summary.journal_corrupt_interior += shard_read.corrupt_interior;
      for (const std::string& payload : shard_read.records) {
        auto record = JobRecord::from_json(payload);
        if (!record) {
          ++summary.journal_corrupt_lines;
          ++summary.journal_corrupt_interior;
          continue;
        }
        const std::string fingerprint = record->fingerprint;
        recovered[fingerprint] = {std::move(*record), payload};
      }
      // Name the exact shard journal that took interior damage so
      // describe() points triage at the file, not at a guess.
      if (summary.journal_corrupt_interior > interior_before)
        summary.journal_path += "; " + path;
    }
  }

  // Resume decisions, in submission order: canonical ok replays without
  // appending (it is already in the file); a shard-recovered ok replays
  // AND merges; everything else — missing or failed — executes.
  enum class Source { kCanonical, kShard, kExecute };
  std::vector<Source> source(jobs.size(), Source::kExecute);
  std::vector<PendingJob> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string fingerprint = jobs[i].fingerprint();
    if (options_.resume) {
      const auto from_canonical = canonical.find(fingerprint);
      if (from_canonical != canonical.end() &&
          from_canonical->second.status == RecordStatus::kOk) {
        source[i] = Source::kCanonical;
        continue;
      }
      const auto from_shard = recovered.find(fingerprint);
      if (from_shard != recovered.end() &&
          from_shard->second.first.status == RecordStatus::kOk) {
        source[i] = Source::kShard;
        continue;
      }
    }
    PendingJob job;
    job.index = i;
    job.spec = jobs[i];
    pending.push_back(std::move(job));
  }

  shard::SuperviseResult supervised;
  if (!pending.empty()) {
    shard::ShardSupervisor supervisor(options_, fn, options_.journal_path,
                                      std::move(pending));
    supervised = supervisor.run();
  }
  summary.worker_deaths = supervised.worker_deaths;
  summary.worker_respawns = supervised.worker_respawns;
  summary.respawn_backoff_s = supervised.respawn_backoff_s;

  // Merge + outcome assembly, strictly in submission order. The merge
  // appends the exact record bytes the workers journaled (carried on the
  // kDone frame / recovered from the shard), so the canonical journal is
  // byte-identical to a single-process run of the same grid.
  ResultJournal merged;
  if (!options_.journal_path.empty())
    merged.open_append(options_.journal_path);
  bool appended = false;
  const auto merge_append = [&](const std::string& payload) {
    if (!merged.is_open()) return;
    merged.append(payload, /*sync_now=*/false);
    appended = true;
  };

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobSpec& spec = jobs[i];
    const std::string fingerprint = spec.fingerprint();
    JobOutcome outcome;
    outcome.spec = spec;
    switch (source[i]) {
      case Source::kCanonical: {
        outcome.status = JobStatus::kResumed;
        outcome.record = canonical[fingerprint];
        outcome.report = outcome.record.to_report();
        break;
      }
      case Source::kShard: {
        const auto& [record, payload] = recovered[fingerprint];
        outcome.status = JobStatus::kResumed;
        outcome.record = record;
        outcome.report = record.to_report();
        merge_append(payload);
        break;
      }
      case Source::kExecute: {
        const auto it = supervised.jobs.find(i);
        // The supervisor settles every pending job, one way or another.
        GROPHECY_EXPECTS(it != supervised.jobs.end());
        const ShardJobResult& job_result = it->second;
        if (job_result.status == ShardJobStatus::kCompleted) {
          const Completion& completion = job_result.completion;
          outcome.status = completion.status == JobStatus::kOk
                               ? JobStatus::kOk
                               : JobStatus::kFailed;
          outcome.attempts = completion.attempts;
          outcome.elapsed_s = completion.elapsed_s;
          outcome.backoff_s = completion.backoff_s;
          outcome.record = *JobRecord::from_json(completion.record_json);
          if (outcome.status == JobStatus::kOk) {
            outcome.report = outcome.record.to_report();
          } else {
            JobError error;
            error.kind =
                outcome.record.error_kind.value_or(ErrorKind::kException);
            error.message = outcome.record.error_message;
            error.timed_out = error.kind == ErrorKind::kTimeout;
            outcome.error = std::move(error);
          }
          merge_append(completion.record_json);
        } else {
          // Quarantined poison or an abandoned queue: a structured
          // kWorkerDeath failure, journaled like any other failure.
          outcome.status = JobStatus::kFailed;
          outcome.attempts = job_result.worker_kills;
          JobError error;
          error.kind = ErrorKind::kWorkerDeath;
          error.message =
              job_result.status == ShardJobStatus::kQuarantined
                  ? util::strfmt(
                        "job %s killed %d worker process%s (last: %s); "
                        "quarantined as poison",
                        spec.key().c_str(), job_result.worker_kills,
                        job_result.worker_kills == 1 ? "" : "es",
                        job_result.death_message.c_str())
                  : util::strfmt("job %s not run: %s", spec.key().c_str(),
                                 job_result.death_message.c_str());
          outcome.record.fingerprint = fingerprint;
          outcome.record.workload = spec.workload;
          outcome.record.size_label = spec.size_label;
          outcome.record.iterations = spec.iterations;
          outcome.record.status = RecordStatus::kFailed;
          outcome.record.attempts = outcome.attempts;
          outcome.record.error_kind = error.kind;
          outcome.record.error_message = error.message;
          outcome.error = std::move(error);
          merge_append(outcome.record.to_json());
          if (job_result.status == ShardJobStatus::kQuarantined)
            ++summary.quarantined;
        }
        break;
      }
    }

    switch (outcome.status) {
      case JobStatus::kOk: ++summary.ok; break;
      case JobStatus::kResumed: ++summary.resumed; break;
      case JobStatus::kDeduped: ++summary.deduped; break;
      case JobStatus::kFailed: ++summary.failed; break;
    }
    if (outcome.attempts > 1) ++summary.retried;
    summary.attempts += outcome.attempts;
    summary.backoff_total_s += outcome.backoff_s;
    summary.degraded |= outcome.record.calibration_fallback;
    summary.outcomes.push_back(std::move(outcome));
  }

  // Durable merge, then retire the shards: once every recovered or acked
  // record is fsync'd in the canonical journal the shard files are
  // redundant, and leaving them would re-merge stale results next run.
  if (merged.is_open()) {
    if (appended) merged.sync();
    merged.close();
    for (const std::string& path :
         shard::existing_shard_paths(options_.journal_path))
      ::unlink(path.c_str());
  }
  return summary;
#endif
}

}  // namespace grophecy::exec
