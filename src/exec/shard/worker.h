// The sweep shard worker process: a single-threaded job-execution loop
// at the far end of a fork.
//
// A worker is forked by shard::ShardSupervisor and never execs: it
// inherits the whole parent image — the JobFn closure, the parsed
// workload suite, any warm calibration cache — so it can execute
// arbitrary job functions with zero serialization of code or captured
// state. It is deliberately single-threaded:
//
//   * fork(2) of a multi-threaded process only carries the calling
//     thread into the child; staying single-threaded on both sides
//     keeps every fork well-defined (no locks held by threads that no
//     longer exist);
//   * heartbeats are sent from the same thread that runs jobs, so a job
//     spinning forever silences them — which is exactly how the
//     supervisor detects a stuck worker. A background heartbeat thread
//     would keep beating under a wedged job and mask it.
//
// Every finished job is appended to the worker's own crash-safe shard
// journal (CRC + fsync) *before* the completion ack is sent: an acked
// record is durable, and a record the supervisor never saw acked is
// still recovered from the shard on resume. The worker exits — always
// via _exit, never by unwinding into the forked copy of the parent's
// stack and atexit handlers — when told to shut down, or the moment the
// supervisor side of the socket goes away.
#pragma once

#include <string>

#include "exec/sweep.h"

namespace grophecy::exec::shard {

/// Worker exit codes (WEXITSTATUS) the supervisor classifies in its
/// death messages. 0 is the only clean exit (shutdown or supervisor EOF).
inline constexpr int kWorkerExitClean = 0;
inline constexpr int kWorkerExitJournal = 3;   ///< Shard journal open failed.
inline constexpr int kWorkerExitProtocol = 4;  ///< Unparseable frame.

/// Runs the worker loop on `fd` (the worker end of the supervisor's
/// socketpair), journaling to `shard_journal_path` (empty = no journal).
/// `options` is the sweep's option block; the worker derives its own
/// in-process profile from it (serial, inline attempts — the heartbeat
/// timeout is the process-level deadline, so the thread watchdog is
/// not used). Never returns; terminates with _exit.
[[noreturn]] void worker_main(int fd, const std::string& shard_journal_path,
                              const SweepOptions& options,
                              const SweepEngine::JobFn& fn);

}  // namespace grophecy::exec::shard
