// The one way to name and run a sweep grid.
//
// Before this builder existed the repo had three ways to spell the same
// thing: hand-rolled JobSpec vectors in paper_report, per-bench grid loops
// in sweep_common.h, and ad-hoc loops in tests. SweepRequest collapses
// them: a grid is (machine) x (workloads) x (data sizes) x (iteration
// counts), declared fluently and expanded deterministically:
//
//   exec::SweepEngine engine({.workers = 8});
//   exec::SweepSummary summary = exec::SweepRequest::on(hw::anl_eureka())
//                                    .workloads({"CFD", "SRAD"})
//                                    .sizes(exec::all_sizes)
//                                    .iterations({1, 8})
//                                    .run(engine);
//
// JobSpec stays journal-facing pure data; the request is the *recipe* that
// produces the specs and the job function. The job function it builds is
// thread-safe by construction: every job gets its own ExperimentRunner
// whose master seed is JobSpec::stream_seed(base_seed) — a pure function
// of the job's identity — so measured values are identical for any worker
// count or scheduling order. Calibration, by contrast, is seeded from the
// base seed alone (shared across jobs), so all jobs of one request hit one
// pcie::CalibrationCache entry and the system calibrates once per sweep,
// not once per job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/grophecy.h"
#include "exec/sweep.h"
#include "hw/machine.h"

namespace grophecy::exec {

/// Tag selecting every paper data size of each workload (the default).
struct AllSizes {};
inline constexpr AllSizes all_sizes{};

/// Tag selecting every machine in hw::MachineRegistry::global().
struct AllMachines {};
inline constexpr AllMachines all_machines{};

/// Fluent builder for a sweep grid; see file comment.
class SweepRequest {
 public:
  /// Starts a request against one machine.
  static SweepRequest on(hw::MachineSpec machine);

  /// Selects the workloads by name, in grid order. Unknown names throw
  /// UsageError (listing the valid names) when the grid is expanded.
  SweepRequest& workloads(std::vector<std::string> names);

  /// Fans the request across machines by registry name: the grid becomes
  /// (machines) x (workloads) x (sizes) x (iterations), machines
  /// outermost, and every JobSpec carries its machine's name (so jobs on
  /// different machines have distinct fingerprints, journal keys, and
  /// measurement streams). Each machine resolves through
  /// hw::MachineRegistry::global() — unknown names throw UsageError
  /// (listing the registered fleet) at expansion. Calibration stays
  /// single-flight per machine: all jobs share the request's calibration
  /// seed, and the pcie::CalibrationCache keys on the machine's bus spec,
  /// so a cross-machine sweep calibrates once per machine, not per job.
  /// An empty list (the default) restores the single-machine request —
  /// specs carry no machine name and the grid is byte-identical to the
  /// pre-cross-machine builder.
  SweepRequest& machines(std::vector<std::string> names);
  /// Fans across every machine registered in the global registry, in
  /// registry order (builtins first, then shipped specs by filename).
  SweepRequest& machines(AllMachines);

  /// Selects data sizes by Table I label, applied to every selected
  /// workload. Labels a workload lacks throw UsageError at expansion.
  SweepRequest& sizes(std::vector<std::string> labels);
  /// Selects every paper data size of each workload (the default).
  SweepRequest& sizes(AllSizes);

  /// Selects the iteration counts (default {1}).
  SweepRequest& iterations(std::vector<int> counts);

  /// Projection knobs applied to every job. The per-job master seed and
  /// the shared calibration seed are derived from base_seed regardless of
  /// options.seed / options.calibration_seed (the request owns seeding;
  /// see seed()).
  SweepRequest& options(core::ProjectionOptions options);

  /// Sets the base seed (default: ProjectionOptions{}.seed). Per-job
  /// measurement streams are stream_seed(base); calibration is seeded
  /// from base alone so the whole request shares one calibration.
  SweepRequest& seed(std::uint64_t base_seed);

  /// Expands the grid: workloads x sizes x iterations, in declaration
  /// order. Pure data — this is what run() submits and the journal keys.
  /// Throws UsageError for unknown workload names or size labels, and for
  /// an empty grid dimension.
  std::vector<JobSpec> jobs() const;

  /// The thread-safe job function described in the file comment. Exposed
  /// so callers with special engine needs can still run the canonical
  /// per-job construction through their own SweepEngine invocation.
  SweepEngine::JobFn job_fn() const;

  /// Expands the grid and runs it on the given engine.
  SweepSummary run(SweepEngine& engine) const;

  /// Convenience: constructs a SweepEngine(options) and runs on it.
  SweepSummary run(SweepOptions options = {}) const;

  const hw::MachineSpec& machine() const { return machine_; }

 private:
  explicit SweepRequest(hw::MachineSpec machine);

  hw::MachineSpec machine_;
  std::vector<std::string> machine_names_;  ///< Empty => single-machine.
  std::vector<std::string> workloads_;
  std::vector<std::string> size_labels_;  ///< Empty => all paper sizes.
  std::vector<int> iterations_{1};
  core::ProjectionOptions options_;
  std::uint64_t base_seed_ = core::ProjectionOptions{}.seed;
};

}  // namespace grophecy::exec
