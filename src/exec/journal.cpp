#include "exec/journal.h"

#include <fstream>
#include <optional>

#include "util/checksum.h"
#include "util/contracts.h"
#include "util/error.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define GROPHECY_HAVE_FSYNC 1
#endif

namespace grophecy::exec {

namespace {

constexpr std::string_view kPrefix = "{\"crc\":\"";      // then 8 hex chars
constexpr std::string_view kMiddle = "\",\"rec\":";      // then the payload
constexpr std::size_t kCrcHexLen = 8;

/// Extracts and verifies one journal line; empty optional when torn or
/// corrupt.
std::optional<std::string> validate_line(std::string_view line) {
  if (line.size() < kPrefix.size() + kCrcHexLen + kMiddle.size() + 1)
    return std::nullopt;
  if (line.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  const std::string_view crc = line.substr(kPrefix.size(), kCrcHexLen);
  const std::size_t rec_at = kPrefix.size() + kCrcHexLen;
  if (line.substr(rec_at, kMiddle.size()) != kMiddle) return std::nullopt;
  if (line.back() != '}') return std::nullopt;
  const std::string_view payload = line.substr(
      rec_at + kMiddle.size(), line.size() - rec_at - kMiddle.size() - 1);
  if (util::crc32_hex(payload) != crc) return std::nullopt;
  return std::string(payload);
}

}  // namespace

ResultJournal::~ResultJournal() { close(); }

JournalReadResult ResultJournal::read(const std::string& path) {
  JournalReadResult result;
  std::ifstream file(path);
  if (!file) return result;  // missing journal == nothing to resume
  std::string line;
  bool last_line_corrupt = false;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    if (auto payload = validate_line(line)) {
      result.records.push_back(std::move(*payload));
      last_line_corrupt = false;
    } else {
      ++result.corrupt_lines;
      last_line_corrupt = true;
    }
  }
  // Only the file's final line can be a torn-append crash artifact;
  // every other invalid line is interior damage the caller must surface.
  result.corrupt_tail = last_line_corrupt ? 1 : 0;
  result.corrupt_interior = result.corrupt_lines - result.corrupt_tail;
  return result;
}

void ResultJournal::open_append(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  GROPHECY_EXPECTS(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "ab");
  if (!file_)
    throw UsageError("cannot open sweep journal for append: " + path);
}

void ResultJournal::append(std::string_view payload, bool sync_now) {
  GROPHECY_EXPECTS(payload.find('\n') == std::string_view::npos);
  std::string line;
  line.reserve(payload.size() + 32);
  line += kPrefix;
  line += util::crc32_hex(payload);
  line += kMiddle;
  line += payload;
  line += "}\n";
  std::lock_guard<std::mutex> lock(mutex_);
  GROPHECY_EXPECTS(file_ != nullptr);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0)
    throw MeasurementError("sweep journal write failed");
  if (sync_now) sync_locked();
}

void ResultJournal::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_) sync_locked();
}

void ResultJournal::sync_locked() {
#ifdef GROPHECY_HAVE_FSYNC
  // Push the record(s) through the OS cache: an acknowledged append must
  // survive an immediate crash, not just a clean process exit.
  fsync(fileno(file_));
#endif
}

void ResultJournal::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace grophecy::exec
