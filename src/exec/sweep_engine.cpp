#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <sstream>

#include "exec/journal.h"
#include "exec/sweep.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/table.h"

namespace grophecy::exec {

namespace {

/// Maps the exception in flight to the sweep error taxonomy. Only
/// measurement failures and watchdog timeouts are transient; everything
/// else is a property of the configuration, and retrying cannot help.
JobError classify_current_exception() {
  JobError error;
  try {
    throw;
  } catch (const MeasurementError& e) {
    error.kind = e.timed_out() ? "timeout" : "measurement";
    error.timed_out = e.timed_out();
    error.retryable = true;
    error.message = e.what();
  } catch (const CalibrationError& e) {
    error.kind = "calibration";
    error.message = e.what();
  } catch (const ParseError& e) {
    error.kind = "parse";
    error.message = e.what();
  } catch (const UsageError& e) {
    error.kind = "usage";
    error.message = e.what();
  } catch (const ContractViolation& e) {
    error.kind = "contract";
    error.message = e.what();
  } catch (const std::exception& e) {
    error.kind = "exception";
    error.message = e.what();
  } catch (...) {
    error.kind = "exception";
    error.message = "unknown exception";
  }
  return error;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

SweepEngine::SweepEngine(SweepOptions options) : options_(std::move(options)) {
  GROPHECY_EXPECTS(options_.max_retries >= 0);
  GROPHECY_EXPECTS(options_.backoff_initial_s >= 0.0);
  GROPHECY_EXPECTS(options_.backoff_max_s >= options_.backoff_initial_s);
  GROPHECY_EXPECTS(options_.deadline_s > 0.0);
}

SweepEngine::~SweepEngine() {
  for (std::thread& thread : abandoned_)
    if (thread.joinable()) thread.join();
}

SweepEngine::AttemptResult SweepEngine::run_attempt(const JobSpec& spec,
                                                    const JobFn& fn) {
  if (std::isinf(options_.deadline_s)) {
    // No watchdog: run inline, call-for-call identical to the bare loop.
    try {
      return {fn(spec), {}};
    } catch (...) {
      return {std::nullopt, classify_current_exception()};
    }
  }

  // Supervised attempt: the job runs on a worker thread while this thread
  // watches the clock. The task copies fn and spec so an abandoned worker
  // never dereferences caller stack frames after run() returns.
  std::packaged_task<core::ProjectionReport()> task(
      [fn, spec] { return fn(spec); });
  std::future<core::ProjectionReport> future = task.get_future();
  std::thread worker(std::move(task));
  const auto deadline = std::chrono::duration<double>(options_.deadline_s);
  if (future.wait_for(deadline) != std::future_status::ready) {
    abandoned_.push_back(std::move(worker));
    JobError error;
    error.kind = "timeout";
    error.timed_out = true;
    error.retryable = true;
    error.message = util::strfmt(
        "job %s exceeded the %.3gs deadline; attempt abandoned",
        spec.key().c_str(), options_.deadline_s);
    return {std::nullopt, error};
  }
  worker.join();
  try {
    return {future.get(), {}};
  } catch (...) {
    return {std::nullopt, classify_current_exception()};
  }
}

SweepSummary SweepEngine::run(const std::vector<JobSpec>& jobs,
                              const JobFn& fn) {
  SweepSummary summary;
  summary.outcomes.reserve(jobs.size());

  // Load whatever a previous (possibly killed) run journaled. Later
  // records win, so a re-run of a previously failed job supersedes it.
  std::map<std::string, JobRecord> journaled;
  ResultJournal journal;
  if (!options_.journal_path.empty()) {
    JournalReadResult previous = ResultJournal::read(options_.journal_path);
    summary.journal_corrupt_lines = previous.corrupt_lines;
    for (const std::string& payload : previous.records) {
      if (auto record = JobRecord::from_json(payload))
        journaled[record->fingerprint] = std::move(*record);
      else
        ++summary.journal_corrupt_lines;
    }
    journal.open_append(options_.journal_path);
  }

  for (const JobSpec& spec : jobs) {
    JobOutcome outcome;
    outcome.spec = spec;
    const std::string fingerprint = spec.fingerprint();

    // Resume: a journaled success is replayed, not re-measured. Failed
    // records do not shortcut — the whole point of resuming is giving the
    // missing and failed jobs another chance.
    const auto it = journaled.find(fingerprint);
    if (options_.resume && it != journaled.end() &&
        it->second.status == "ok") {
      outcome.status = JobStatus::kResumed;
      outcome.record = it->second;
      outcome.report = it->second.to_report();
      ++summary.resumed;
      summary.degraded |= outcome.record.calibration_fallback;
      summary.outcomes.push_back(std::move(outcome));
      continue;
    }

    const auto start = std::chrono::steady_clock::now();
    while (true) {
      ++outcome.attempts;
      ++summary.attempts;
      AttemptResult attempt = run_attempt(spec, fn);
      if (attempt.report) {
        outcome.status = JobStatus::kOk;
        outcome.report = std::move(attempt.report);
        break;
      }
      outcome.error = attempt.error;
      if (attempt.error.retryable &&
          outcome.attempts <= options_.max_retries) {
        // Bounded exponential backoff, same shape as the PR 1 calibration
        // policy. Recorded, not slept: the simulated harness must stay
        // fast and deterministic; a real-hardware runner would sleep.
        const double backoff =
            std::min(options_.backoff_initial_s *
                         std::pow(2.0, outcome.attempts - 1),
                     options_.backoff_max_s);
        outcome.backoff_s += backoff;
        continue;
      }
      outcome.status = JobStatus::kFailed;
      break;
    }
    outcome.elapsed_s = seconds_since(start);
    summary.backoff_total_s += outcome.backoff_s;
    if (outcome.attempts > 1) ++summary.retried;

    if (outcome.status == JobStatus::kOk) {
      ++summary.ok;
      outcome.record = JobRecord::from_report(
          spec, *outcome.report, outcome.attempts, outcome.elapsed_s);
      summary.degraded |= outcome.record.calibration_fallback;
    } else {
      ++summary.failed;
      outcome.record.fingerprint = fingerprint;
      outcome.record.workload = spec.workload;
      outcome.record.size_label = spec.size_label;
      outcome.record.iterations = spec.iterations;
      outcome.record.status = "failed";
      outcome.record.attempts = outcome.attempts;
      outcome.record.elapsed_s = outcome.elapsed_s;
      outcome.record.error_kind = outcome.error->kind;
      outcome.record.error_message = outcome.error->message;
    }
    if (journal.is_open()) journal.append(outcome.record.to_json());
    summary.outcomes.push_back(std::move(outcome));
  }
  return summary;
}

const JobOutcome* SweepSummary::find(const JobSpec& spec) const {
  const std::string fingerprint = spec.fingerprint();
  for (const JobOutcome& outcome : outcomes)
    if (outcome.record.fingerprint == fingerprint ||
        outcome.spec.fingerprint() == fingerprint)
      return &outcome;
  return nullptr;
}

std::string SweepSummary::describe() const {
  std::ostringstream oss;
  oss << "sweep: " << outcomes.size() << " jobs — " << ok << " ok, "
      << resumed << " resumed, " << failed << " failed ("
      << retried << " retried; " << attempts << " attempts; "
      << util::strfmt("%.3f", backoff_total_s) << "s backoff)";
  if (degraded) oss << " [DEGRADED: spec-derived calibration in use]";
  if (journal_corrupt_lines > 0)
    oss << " [journal: " << journal_corrupt_lines << " corrupt line(s)]";
  oss << '\n';
  for (const JobOutcome& outcome : outcomes) {
    oss << "  " << outcome.spec.key() << ": ";
    switch (outcome.status) {
      case JobStatus::kOk:
        oss << util::strfmt("ok (%d attempt%s)", outcome.attempts,
                            outcome.attempts == 1 ? "" : "s");
        break;
      case JobStatus::kResumed:
        oss << "resumed from journal";
        break;
      case JobStatus::kFailed:
        oss << "FAILED [" << outcome.error->kind << "] "
            << outcome.error->message;
        break;
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace grophecy::exec
