#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <map>
#include <sstream>

#include "exec/journal.h"
#include "exec/sweep.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/table.h"

namespace grophecy::exec {

JobError classify_current_exception() {
  JobError error;
  try {
    throw;
  } catch (const MeasurementError& e) {
    error.kind =
        e.timed_out() ? ErrorKind::kTimeout : ErrorKind::kMeasurement;
    error.timed_out = e.timed_out();
    error.retryable = true;
    error.message = e.what();
  } catch (const CalibrationError& e) {
    error.kind = ErrorKind::kCalibration;
    error.message = e.what();
  } catch (const ParseError& e) {
    error.kind = ErrorKind::kParse;
    error.message = e.what();
  } catch (const UsageError& e) {
    error.kind = ErrorKind::kUsage;
    error.message = e.what();
  } catch (const ContractViolation& e) {
    error.kind = ErrorKind::kContract;
    error.message = e.what();
  } catch (const std::exception& e) {
    error.kind = ErrorKind::kException;
    error.message = e.what();
  } catch (...) {
    error.kind = ErrorKind::kException;
    error.message = "unknown exception";
  }
  return error;
}

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Folds one committed outcome into the summary counters. Called in
/// submission order only, so the resulting summary is identical for any
/// worker count.
void tally(SweepSummary& summary, const JobOutcome& outcome) {
  switch (outcome.status) {
    case JobStatus::kOk:
      ++summary.ok;
      break;
    case JobStatus::kResumed:
      ++summary.resumed;
      break;
    case JobStatus::kDeduped:
      ++summary.deduped;
      break;
    case JobStatus::kFailed:
      ++summary.failed;
      break;
  }
  if (outcome.attempts > 1) ++summary.retried;
  summary.attempts += outcome.attempts;
  summary.backoff_total_s += outcome.backoff_s;
  summary.degraded |= outcome.record.calibration_fallback;
}

}  // namespace

void SweepOptions::validate() const {
  auto require = [](bool ok, const char* field, const std::string& why) {
    if (!ok)
      throw UsageError(util::strfmt("SweepOptions.%s %s", field,
                                    why.c_str()));
  };
  require(workers >= 0, "workers",
          util::strfmt("must be non-negative, got %d", workers));
  require(shards >= 0, "shards",
          util::strfmt("must be non-negative, got %d", shards));
  require(max_retries >= 0, "max_retries",
          util::strfmt("must be non-negative, got %d", max_retries));
  require(backoff_initial_s >= 0.0, "backoff_initial_s",
          util::strfmt("must be non-negative, got %g", backoff_initial_s));
  require(backoff_max_s >= backoff_initial_s, "backoff_max_s",
          util::strfmt("must be >= backoff_initial_s (%g), got %g",
                       backoff_initial_s, backoff_max_s));
  // NaN fails the comparison too, which is exactly right.
  require(deadline_s > 0.0, "deadline_s",
          util::strfmt("must be positive, got %g", deadline_s));
  require(heartbeat_timeout_s > 0.0, "heartbeat_timeout_s",
          util::strfmt("must be positive, got %g", heartbeat_timeout_s));
  require(poison_kill_threshold >= 1, "poison_kill_threshold",
          util::strfmt("must be >= 1, got %d", poison_kill_threshold));
}

SweepEngine::SweepEngine(SweepOptions options) : options_(std::move(options)) {
  options_.validate();
}

SweepEngine::~SweepEngine() {
  for (std::thread& thread : abandoned_)
    if (thread.joinable()) thread.join();
}

int SweepEngine::effective_workers() const {
  if (options_.workers > 0) return options_.workers;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

SweepEngine::AttemptResult SweepEngine::run_attempt(const JobSpec& spec,
                                                    const JobFn& fn) {
  if (std::isinf(options_.deadline_s)) {
    // No watchdog: run inline, call-for-call identical to the bare loop.
    try {
      return {fn(spec), {}};
    } catch (...) {
      return {std::nullopt, classify_current_exception()};
    }
  }

  // Supervised attempt: the job runs on a worker thread while this thread
  // watches the clock. The task copies fn and spec so an abandoned worker
  // never dereferences caller stack frames after run() returns.
  std::packaged_task<core::ProjectionReport()> task(
      [fn, spec] { return fn(spec); });
  std::future<core::ProjectionReport> future = task.get_future();
  std::thread worker(std::move(task));
  const auto deadline = std::chrono::duration<double>(options_.deadline_s);
  if (future.wait_for(deadline) != std::future_status::ready) {
    {
      std::lock_guard<std::mutex> lock(abandoned_mutex_);
      abandoned_.push_back(std::move(worker));
    }
    JobError error;
    error.kind = ErrorKind::kTimeout;
    error.timed_out = true;
    error.retryable = true;
    error.message = util::strfmt(
        "job %s exceeded the %.3gs deadline; attempt abandoned",
        spec.key().c_str(), options_.deadline_s);
    return {std::nullopt, error};
  }
  worker.join();
  try {
    return {future.get(), {}};
  } catch (...) {
    return {std::nullopt, classify_current_exception()};
  }
}

JobOutcome SweepEngine::execute_job(const JobSpec& spec, const JobFn& fn) {
  JobOutcome outcome;
  outcome.spec = spec;

  const auto start = std::chrono::steady_clock::now();
  while (true) {
    ++outcome.attempts;
    AttemptResult attempt = run_attempt(spec, fn);
    if (attempt.report) {
      outcome.status = JobStatus::kOk;
      outcome.report = std::move(attempt.report);
      break;
    }
    outcome.error = attempt.error;
    if (attempt.error.retryable && outcome.attempts <= options_.max_retries) {
      // Bounded exponential backoff, same shape as the PR 1 calibration
      // policy. Recorded, not slept: the simulated harness must stay
      // fast and deterministic; a real-hardware runner would sleep.
      const double backoff =
          std::min(options_.backoff_initial_s *
                       std::pow(2.0, outcome.attempts - 1),
                   options_.backoff_max_s);
      outcome.backoff_s += backoff;
      continue;
    }
    outcome.status = JobStatus::kFailed;
    break;
  }
  outcome.elapsed_s = seconds_since(start);
  // The journaled wall-clock time is the one nondeterministic field of a
  // record; zeroing it (record_wall_time = false) makes the journal bytes
  // a pure function of the results.
  const double recorded_elapsed =
      options_.record_wall_time ? outcome.elapsed_s : 0.0;

  if (outcome.status == JobStatus::kOk) {
    outcome.record = JobRecord::from_report(spec, *outcome.report,
                                            outcome.attempts,
                                            recorded_elapsed);
  } else {
    outcome.record.fingerprint = spec.fingerprint();
    outcome.record.workload = spec.workload;
    outcome.record.size_label = spec.size_label;
    outcome.record.iterations = spec.iterations;
    outcome.record.status = RecordStatus::kFailed;
    outcome.record.attempts = outcome.attempts;
    outcome.record.elapsed_s = recorded_elapsed;
    outcome.record.error_kind = outcome.error->kind;
    outcome.record.error_message = outcome.error->message;
    outcome.record.machine = spec.machine;
  }
  return outcome;
}

SweepSummary SweepEngine::run(const std::vector<JobSpec>& jobs,
                              const JobFn& fn) {
  // Dedupe pre-pass: identical fingerprints execute once. Duplicates are
  // resolved by expansion AFTER the unique jobs ran, so the worker pool
  // never has to synchronize on an in-flight original, and the journal —
  // which only sees the unique jobs — stays byte-identical across worker
  // counts whether or not the submission list contained duplicates.
  std::map<std::string, std::size_t> first_with_fingerprint;
  std::vector<std::optional<std::size_t>> duplicate_of(jobs.size());
  std::vector<JobSpec> unique;
  unique.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto [it, inserted] =
        first_with_fingerprint.emplace(jobs[i].fingerprint(), i);
    if (inserted)
      unique.push_back(jobs[i]);
    else
      duplicate_of[i] = it->second;
  }
  if (unique.size() == jobs.size()) return run_unique(jobs, fn);

  SweepSummary inner = run_unique(unique, fn);
  SweepSummary summary;
  summary.journal_corrupt_lines = inner.journal_corrupt_lines;
  summary.journal_corrupt_interior = inner.journal_corrupt_interior;
  summary.journal_path = inner.journal_path;
  summary.worker_deaths = inner.worker_deaths;
  summary.worker_respawns = inner.worker_respawns;
  summary.quarantined = inner.quarantined;
  summary.respawn_backoff_s = inner.respawn_backoff_s;
  summary.outcomes.reserve(jobs.size());
  std::size_t next_unique = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!duplicate_of[i]) {
      summary.outcomes.push_back(std::move(inner.outcomes[next_unique++]));
    } else {
      // The original precedes its duplicates in submission order, so its
      // outcome is already in place at its full-list index.
      const JobOutcome& original = summary.outcomes[*duplicate_of[i]];
      JobOutcome outcome;
      outcome.spec = jobs[i];
      outcome.record = original.record;
      outcome.report = original.report;
      outcome.error = original.error;
      // A duplicate of a successful (or resumed) job reused its result; a
      // duplicate of a failed job fails identically — either way, zero
      // executions.
      outcome.status = original.status == JobStatus::kFailed
                           ? JobStatus::kFailed
                           : JobStatus::kDeduped;
      summary.outcomes.push_back(std::move(outcome));
    }
    tally(summary, summary.outcomes.back());
  }
  return summary;
}

SweepSummary SweepEngine::run_unique(const std::vector<JobSpec>& jobs,
                                     const JobFn& fn) {
  if (options_.shards > 0 && !jobs.empty()) return run_sharded(jobs, fn);

  SweepSummary summary;
  summary.outcomes.reserve(jobs.size());

  // Load whatever a previous (possibly killed) run journaled. Later
  // records win, so a re-run of a previously failed job supersedes it.
  std::map<std::string, JobRecord> journaled;
  ResultJournal journal;
  if (!options_.journal_path.empty()) {
    JournalReadResult previous = ResultJournal::read(options_.journal_path);
    summary.journal_path = options_.journal_path;
    summary.journal_corrupt_lines = previous.corrupt_lines;
    summary.journal_corrupt_interior = previous.corrupt_interior;
    for (const std::string& payload : previous.records) {
      if (auto record = JobRecord::from_json(payload)) {
        journaled[record->fingerprint] = std::move(*record);
      } else {
        // A line whose checksum verified but whose payload no longer
        // parses cannot be a torn tail either — count it as interior
        // damage so describe() warns.
        ++summary.journal_corrupt_lines;
        ++summary.journal_corrupt_interior;
      }
    }
    journal.open_append(options_.journal_path);
  }

  // Resume decisions are made up front (deterministically, in submission
  // order): a journaled success is replayed, not re-measured. Failed
  // records do not shortcut — the whole point of resuming is giving the
  // missing and failed jobs another chance.
  auto resumed_outcome =
      [&](const JobSpec& spec) -> std::optional<JobOutcome> {
    if (!options_.resume) return std::nullopt;
    const auto it = journaled.find(spec.fingerprint());
    if (it == journaled.end() || it->second.status != RecordStatus::kOk)
      return std::nullopt;
    JobOutcome outcome;
    outcome.spec = spec;
    outcome.status = JobStatus::kResumed;
    outcome.record = it->second;
    outcome.report = it->second.to_report();
    return outcome;
  };

  const int workers =
      std::max(1, std::min<int>(effective_workers(),
                                static_cast<int>(jobs.size())));

  if (workers <= 1) {
    // Strictly serial, in submission order — call-for-call identical to
    // the bare loop the engine replaced. Each record is made durable
    // (fsync) before the next job starts.
    for (const JobSpec& spec : jobs) {
      JobOutcome outcome;
      if (auto resumed = resumed_outcome(spec))
        outcome = std::move(*resumed);
      else
        outcome = execute_job(spec, fn);
      tally(summary, outcome);
      if (journal.is_open() && outcome.status != JobStatus::kResumed)
        journal.append(outcome.record.to_json());
      summary.outcomes.push_back(std::move(outcome));
    }
    return summary;
  }

  // Parallel execution with a sequenced committer. Workers claim jobs in
  // submission order and publish finished outcomes into `ready`; this
  // thread commits them — journal append, summary counters, outcome list
  // — strictly in submission order, so every observable artifact of the
  // sweep is identical to the serial run of the same job results. The
  // fsync is batched: one sync per drained run of consecutive outcomes
  // instead of one per record (each record is still flushed to the OS
  // before commit proceeds, and a crash loses at most the unsynced tail —
  // exactly the torn-tail case the journal reader already tolerates).
  std::atomic<std::size_t> next_job{0};
  std::mutex mutex;
  std::condition_variable ready_cv;
  std::map<std::size_t, JobOutcome> ready;

  auto worker_loop = [&] {
    while (true) {
      const std::size_t index =
          next_job.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) return;
      const JobSpec& spec = jobs[index];
      JobOutcome outcome;
      if (auto resumed = resumed_outcome(spec))
        outcome = std::move(*resumed);
      else
        outcome = execute_job(spec, fn);
      {
        std::lock_guard<std::mutex> lock(mutex);
        ready.emplace(index, std::move(outcome));
      }
      ready_cv.notify_one();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) pool.emplace_back(worker_loop);

  std::size_t committed = 0;
  while (committed < jobs.size()) {
    std::vector<JobOutcome> batch;
    {
      std::unique_lock<std::mutex> lock(mutex);
      ready_cv.wait(lock, [&] { return ready.count(committed) != 0; });
      // Drain every consecutive outcome that is already finished.
      for (auto it = ready.find(committed); it != ready.end();
           it = ready.find(committed + batch.size())) {
        batch.push_back(std::move(it->second));
        ready.erase(it);
      }
    }
    bool appended = false;
    for (JobOutcome& outcome : batch) {
      tally(summary, outcome);
      if (journal.is_open() && outcome.status != JobStatus::kResumed) {
        journal.append(outcome.record.to_json(), /*sync_now=*/false);
        appended = true;
      }
      summary.outcomes.push_back(std::move(outcome));
    }
    if (appended) journal.sync();
    committed += batch.size();
  }

  for (std::thread& thread : pool) thread.join();
  return summary;
}

const JobOutcome* SweepSummary::find(const JobSpec& spec) const {
  const std::string fingerprint = spec.fingerprint();
  for (const JobOutcome& outcome : outcomes)
    if (outcome.record.fingerprint == fingerprint ||
        outcome.spec.fingerprint() == fingerprint)
      return &outcome;
  return nullptr;
}

std::string SweepSummary::describe() const {
  std::ostringstream oss;
  oss << "sweep: " << outcomes.size() << " jobs — " << ok << " ok, "
      << resumed << " resumed, ";
  if (deduped > 0) oss << deduped << " deduped, ";
  oss << failed << " failed ("
      << retried << " retried; " << attempts << " attempts; "
      << util::strfmt("%.3f", backoff_total_s) << "s backoff)";
  if (degraded) oss << " [DEGRADED: spec-derived calibration in use]";
  // Name the damaged file in the warning — sharded-sweep triage must not
  // have to guess which shard journal took the hit.
  const std::string journal_label =
      journal_path.empty() ? std::string("journal")
                           : "journal " + journal_path;
  if (journal_corrupt_interior > 0)
    // Interior damage can never be the benign torn-tail crash artifact:
    // the writer is append-only, so anything invalid *followed by more
    // lines* means the file was damaged after it was written.
    oss << " [" << journal_label << ": " << journal_corrupt_interior
        << " corrupt INTERIOR line(s) — not a crash artifact; the journal "
           "file has been damaged and lost records were re-run]";
  else if (journal_corrupt_lines > 0)
    oss << " [" << journal_label << ": " << journal_corrupt_lines
        << " corrupt line(s)]";
  oss << '\n';
  for (const JobOutcome& outcome : outcomes) {
    oss << "  " << outcome.spec.key() << ": ";
    switch (outcome.status) {
      case JobStatus::kOk:
        oss << util::strfmt("ok (%d attempt%s)", outcome.attempts,
                            outcome.attempts == 1 ? "" : "s");
        break;
      case JobStatus::kResumed:
        oss << "resumed from journal";
        break;
      case JobStatus::kDeduped:
        oss << "duplicate (reused earlier result)";
        break;
      case JobStatus::kFailed:
        oss << "FAILED [" << to_string(outcome.error->kind) << "] "
            << outcome.error->message;
        break;
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace grophecy::exec
