// JobSpec identity and JobRecord (de)serialization for the sweep journal.
#include <cstdint>

#include "exec/sweep.h"
#include "util/jsonl.h"
#include "util/table.h"

namespace grophecy::exec {

std::string JobSpec::key() const {
  return workload + "/" + size_label + "/x" + std::to_string(iterations);
}

std::string JobSpec::fingerprint() const {
  // FNV-1a 64. The separator byte keeps ("ab","c") distinct from
  // ("a","bc"); the iteration count is folded in via the key.
  const std::string identity =
      workload + '\x1f' + size_label + '\x1f' + std::to_string(iterations);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char byte : identity) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return util::strfmt("%016llx", static_cast<unsigned long long>(hash));
}

std::string JobRecord::to_json() const {
  util::FlatJson object;
  object.emplace_back("fp", fingerprint);
  object.emplace_back("workload", workload);
  object.emplace_back("size", size_label);
  object.emplace_back("iterations", static_cast<double>(iterations));
  object.emplace_back("status", status);
  object.emplace_back("attempts", static_cast<double>(attempts));
  object.emplace_back("elapsed_s", elapsed_s);
  if (status != "ok") {
    object.emplace_back("error_kind", error_kind);
    object.emplace_back("error_message", error_message);
  } else {
    object.emplace_back("machine", machine);
    object.emplace_back("predicted_kernel_s", predicted_kernel_s);
    object.emplace_back("measured_kernel_s", measured_kernel_s);
    object.emplace_back("predicted_transfer_s", predicted_transfer_s);
    object.emplace_back("measured_transfer_s", measured_transfer_s);
    object.emplace_back("measured_cpu_s", measured_cpu_s);
    object.emplace_back("input_bytes", input_bytes);
    object.emplace_back("output_bytes", output_bytes);
    object.emplace_back("calibration_fallback", calibration_fallback);
  }
  return util::write_flat_json(object);
}

std::optional<JobRecord> JobRecord::from_json(std::string_view payload) {
  const auto object = util::parse_flat_json(payload);
  if (!object) return std::nullopt;

  JobRecord record;
  const auto fp = util::json_string(*object, "fp");
  const auto workload = util::json_string(*object, "workload");
  const auto size = util::json_string(*object, "size");
  const auto iterations = util::json_number(*object, "iterations");
  const auto status = util::json_string(*object, "status");
  const auto attempts = util::json_number(*object, "attempts");
  const auto elapsed = util::json_number(*object, "elapsed_s");
  if (!fp || !workload || !size || !iterations || !status || !attempts ||
      !elapsed)
    return std::nullopt;
  if (*status != "ok" && *status != "failed") return std::nullopt;
  record.fingerprint = *fp;
  record.workload = *workload;
  record.size_label = *size;
  record.iterations = static_cast<int>(*iterations);
  record.status = *status;
  record.attempts = static_cast<int>(*attempts);
  record.elapsed_s = *elapsed;

  if (*status != "ok") {
    record.error_kind = util::json_string(*object, "error_kind").value_or("");
    record.error_message =
        util::json_string(*object, "error_message").value_or("");
    return record;
  }

  const auto machine = util::json_string(*object, "machine");
  const auto pk = util::json_number(*object, "predicted_kernel_s");
  const auto mk = util::json_number(*object, "measured_kernel_s");
  const auto pt = util::json_number(*object, "predicted_transfer_s");
  const auto mt = util::json_number(*object, "measured_transfer_s");
  const auto cpu = util::json_number(*object, "measured_cpu_s");
  const auto in_b = util::json_number(*object, "input_bytes");
  const auto out_b = util::json_number(*object, "output_bytes");
  const auto fallback = util::json_bool(*object, "calibration_fallback");
  if (!machine || !pk || !mk || !pt || !mt || !cpu || !in_b || !out_b ||
      !fallback)
    return std::nullopt;
  record.machine = *machine;
  record.predicted_kernel_s = *pk;
  record.measured_kernel_s = *mk;
  record.predicted_transfer_s = *pt;
  record.measured_transfer_s = *mt;
  record.measured_cpu_s = *cpu;
  record.input_bytes = *in_b;
  record.output_bytes = *out_b;
  record.calibration_fallback = *fallback;
  return record;
}

JobRecord JobRecord::from_report(const JobSpec& spec,
                                 const core::ProjectionReport& report,
                                 int attempts, double elapsed_s) {
  JobRecord record;
  record.fingerprint = spec.fingerprint();
  record.workload = spec.workload;
  record.size_label = spec.size_label;
  record.iterations = spec.iterations;
  record.status = "ok";
  record.attempts = attempts;
  record.elapsed_s = elapsed_s;
  record.machine = report.machine_name;
  record.predicted_kernel_s = report.predicted_kernel_s;
  record.measured_kernel_s = report.measured_kernel_s;
  record.predicted_transfer_s = report.predicted_transfer_s;
  record.measured_transfer_s = report.measured_transfer_s;
  record.measured_cpu_s = report.measured_cpu_s;
  record.input_bytes = static_cast<double>(report.plan.input_bytes());
  record.output_bytes = static_cast<double>(report.plan.output_bytes());
  record.calibration_fallback = report.calibration.used_fallback;
  return record;
}

core::ProjectionReport JobRecord::to_report() const {
  core::ProjectionReport report;
  report.app_name = workload + " " + size_label;
  report.machine_name = machine;
  report.iterations = iterations;
  report.predicted_kernel_s = predicted_kernel_s;
  report.measured_kernel_s = measured_kernel_s;
  report.predicted_transfer_s = predicted_transfer_s;
  report.measured_transfer_s = measured_transfer_s;
  report.measured_cpu_s = measured_cpu_s;
  report.calibration.used_fallback = calibration_fallback;
  report.calibration.converged = !calibration_fallback;
  return report;
}

}  // namespace grophecy::exec
