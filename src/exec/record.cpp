// JobSpec identity and JobRecord (de)serialization for the sweep journal.
//
// This file is the JSONL boundary of the sweep types: in memory the error
// taxonomy is grophecy::ErrorKind and the record status is RecordStatus;
// the strings ("measurement", "timeout", ..., "ok"/"failed") exist only
// on the wire, written and parsed here. The journal format is unchanged
// from the stringly-typed era, so any previously written journal resumes.
#include <cstdint>

#include "exec/sweep.h"
#include "util/checksum.h"
#include "util/jsonl.h"
#include "util/table.h"

namespace grophecy::exec {

namespace {

constexpr const char* to_string(RecordStatus status) {
  return status == RecordStatus::kOk ? "ok" : "failed";
}

std::optional<RecordStatus> record_status_from_string(std::string_view name) {
  if (name == "ok") return RecordStatus::kOk;
  if (name == "failed") return RecordStatus::kFailed;
  return std::nullopt;
}

}  // namespace

std::string JobSpec::key() const {
  std::string key =
      workload + "/" + size_label + "/x" + std::to_string(iterations);
  if (!machine.empty()) key += "@" + machine;
  return key;
}

/// The canonical identity string behind fingerprint() and stream_seed().
/// The separator byte keeps ("ab","c") distinct from ("a","bc"); the
/// iteration count is folded in via its decimal form. The machine joins
/// only when named: a legacy single-machine spec keeps the exact identity
/// (and so fingerprint, stream seed, and journal key) it always had.
static std::string identity_of(const JobSpec& spec) {
  std::string identity = spec.workload + '\x1f' + spec.size_label + '\x1f' +
                         std::to_string(spec.iterations);
  if (!spec.machine.empty()) identity += '\x1f' + spec.machine;
  return identity;
}

std::string JobSpec::fingerprint() const {
  return util::strfmt("%016llx", static_cast<unsigned long long>(
                                     util::fnv1a64(identity_of(*this))));
}

std::uint64_t JobSpec::stream_seed(std::uint64_t base_seed) const {
  return util::splitmix64(base_seed ^ util::fnv1a64(identity_of(*this)));
}

std::string JobRecord::to_json() const {
  util::FlatJson object;
  object.emplace_back("fp", fingerprint);
  object.emplace_back("workload", workload);
  object.emplace_back("size", size_label);
  object.emplace_back("iterations", static_cast<double>(iterations));
  object.emplace_back("status", std::string(to_string(status)));
  object.emplace_back("attempts", static_cast<double>(attempts));
  object.emplace_back("elapsed_s", elapsed_s);
  if (status != RecordStatus::kOk) {
    object.emplace_back(
        "error_kind",
        std::string(error_kind ? grophecy::to_string(*error_kind) : ""));
    object.emplace_back("error_message", error_message);
    // Only cross-machine jobs carry a machine identity into failed
    // records; single-machine journals keep their historical bytes.
    if (!machine.empty()) object.emplace_back("machine", machine);
  } else {
    object.emplace_back("machine", machine);
    object.emplace_back("predicted_kernel_s", predicted_kernel_s);
    object.emplace_back("measured_kernel_s", measured_kernel_s);
    object.emplace_back("predicted_transfer_s", predicted_transfer_s);
    object.emplace_back("measured_transfer_s", measured_transfer_s);
    object.emplace_back("measured_cpu_s", measured_cpu_s);
    object.emplace_back("input_bytes", input_bytes);
    object.emplace_back("output_bytes", output_bytes);
    object.emplace_back("calibration_fallback", calibration_fallback);
  }
  return util::write_flat_json(object);
}

std::optional<JobRecord> JobRecord::from_json(std::string_view payload) {
  const auto object = util::parse_flat_json(payload);
  if (!object) return std::nullopt;

  JobRecord record;
  const auto fp = util::json_string(*object, "fp");
  const auto workload = util::json_string(*object, "workload");
  const auto size = util::json_string(*object, "size");
  const auto iterations = util::json_number(*object, "iterations");
  const auto status = util::json_string(*object, "status");
  const auto attempts = util::json_number(*object, "attempts");
  const auto elapsed = util::json_number(*object, "elapsed_s");
  if (!fp || !workload || !size || !iterations || !status || !attempts ||
      !elapsed)
    return std::nullopt;
  const auto parsed_status = record_status_from_string(*status);
  if (!parsed_status) return std::nullopt;
  record.fingerprint = *fp;
  record.workload = *workload;
  record.size_label = *size;
  record.iterations = static_cast<int>(*iterations);
  record.status = *parsed_status;
  record.attempts = static_cast<int>(*attempts);
  record.elapsed_s = *elapsed;

  if (record.status != RecordStatus::kOk) {
    // An unknown kind string (from a future or foreign writer) degrades
    // to kException rather than rejecting the record: the identity and
    // message are still worth replaying.
    if (const auto kind = util::json_string(*object, "error_kind"))
      record.error_kind =
          error_kind_from_string(*kind).value_or(ErrorKind::kException);
    record.error_message =
        util::json_string(*object, "error_message").value_or("");
    record.machine = util::json_string(*object, "machine").value_or("");
    return record;
  }

  const auto machine = util::json_string(*object, "machine");
  const auto pk = util::json_number(*object, "predicted_kernel_s");
  const auto mk = util::json_number(*object, "measured_kernel_s");
  const auto pt = util::json_number(*object, "predicted_transfer_s");
  const auto mt = util::json_number(*object, "measured_transfer_s");
  const auto cpu = util::json_number(*object, "measured_cpu_s");
  const auto in_b = util::json_number(*object, "input_bytes");
  const auto out_b = util::json_number(*object, "output_bytes");
  const auto fallback = util::json_bool(*object, "calibration_fallback");
  if (!machine || !pk || !mk || !pt || !mt || !cpu || !in_b || !out_b ||
      !fallback)
    return std::nullopt;
  record.machine = *machine;
  record.predicted_kernel_s = *pk;
  record.measured_kernel_s = *mk;
  record.predicted_transfer_s = *pt;
  record.measured_transfer_s = *mt;
  record.measured_cpu_s = *cpu;
  record.input_bytes = *in_b;
  record.output_bytes = *out_b;
  record.calibration_fallback = *fallback;
  return record;
}

JobRecord JobRecord::from_report(const JobSpec& spec,
                                 const core::ProjectionReport& report,
                                 int attempts, double elapsed_s) {
  JobRecord record;
  record.fingerprint = spec.fingerprint();
  record.workload = spec.workload;
  record.size_label = spec.size_label;
  record.iterations = spec.iterations;
  record.status = RecordStatus::kOk;
  record.attempts = attempts;
  record.elapsed_s = elapsed_s;
  record.machine = report.machine_name;
  record.predicted_kernel_s = report.predicted_kernel_s;
  record.measured_kernel_s = report.measured_kernel_s;
  record.predicted_transfer_s = report.predicted_transfer_s;
  record.measured_transfer_s = report.measured_transfer_s;
  record.measured_cpu_s = report.measured_cpu_s;
  record.input_bytes = static_cast<double>(report.plan.input_bytes());
  record.output_bytes = static_cast<double>(report.plan.output_bytes());
  record.calibration_fallback = report.calibration.used_fallback;
  return record;
}

core::ProjectionReport JobRecord::to_report() const {
  core::ProjectionReport report;
  report.app_name = workload + " " + size_label;
  report.machine_name = machine;
  report.iterations = iterations;
  report.predicted_kernel_s = predicted_kernel_s;
  report.measured_kernel_s = measured_kernel_s;
  report.predicted_transfer_s = predicted_transfer_s;
  report.measured_transfer_s = measured_transfer_s;
  report.measured_cpu_s = measured_cpu_s;
  report.calibration.used_fallback = calibration_fallback;
  report.calibration.converged = !calibration_fallback;
  return report;
}

}  // namespace grophecy::exec
