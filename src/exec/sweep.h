// The resilient, parallel sweep engine.
//
// The paper's evaluation — and every figure/table bench in this repo — is
// a grid of (workload × data size × iteration count) projections. Run
// naively, that grid has the robustness of its weakest point: one thrown
// MeasurementError or one hung measurement aborts the whole campaign and
// discards every completed result. PR 1 hardened the *probe* level
// (pcie::TransferCalibrator::calibrate_robust); this module lifts the same
// contract to the *sweep* level:
//
//   * isolation   each job runs supervised; a failure becomes a structured
//                 JobError record in the summary, never an escaped
//                 exception, and the rest of the sweep continues;
//   * deadlines   a wall-clock watchdog per attempt converts hangs into
//                 timed-out JobErrors (the job is abandoned, the sweep
//                 moves on);
//   * retries     transient failures (MeasurementError, watchdog
//                 timeouts) are retried with the same bounded exponential
//                 backoff policy as the PR 1 calibrator; CalibrationError,
//                 ParseError, UsageError and ContractViolation are
//                 permanent — retrying cannot help;
//   * journaling  every finished job (ok or failed) is appended to a
//                 crash-safe checksummed journal (exec::ResultJournal)
//                 keyed by a deterministic job fingerprint and made
//                 durable before the sweep moves past it;
//   * resume      a sweep pointed at an existing journal re-runs only the
//                 jobs that are missing or failed; completed results are
//                 replayed from the journal without re-measuring.
//
// Independent grid points additionally run *concurrently* on a fixed-size
// worker pool (SweepOptions::workers) without giving up determinism:
//
//   * jobs are claimed in submission order; each job's result must be a
//     pure function of its spec (the SweepRequest builder arranges this by
//     giving every job its own engine seeded from the job fingerprint), so
//     measured values are identical regardless of worker count or
//     scheduling order;
//   * finished jobs pass through a sequenced committer that appends them
//     to the journal and the summary in submission order — the journal
//     bytes and the summary are the same for 1 worker or 100;
//   * journal appends stay crash-safe behind a mutex, with the fsync
//     batched per committed run of consecutive jobs instead of per record.
//
// With workers == 1 the engine executes jobs strictly in order, one at a
// time, call-for-call identical to the bare serial loop it replaced.
//
// See docs/robustness.md ("The sweep-level degradation ladder" and
// "Concurrency and determinism") for the full policy write-up, and
// exec/sweep_request.h for the builder every bench constructs its grid
// through.
#pragma once

#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "util/error.h"

namespace grophecy::exec {

/// One point of the sweep grid. The spec is pure data — the engine hands
/// it to the caller's job function for execution — so a job is
/// re-creatable from its journal record alone.
struct JobSpec {
  std::string workload;    ///< Workload name (e.g. "CFD").
  std::string size_label;  ///< Data-size label (e.g. "97K").
  int iterations = 1;
  /// Registry name of the machine to project on; empty (the default)
  /// means "the request's machine" — the pre-cross-machine behaviour.
  /// A non-empty name joins the identity (key, fingerprint, stream
  /// seed), so the same grid point on two machines is two distinct
  /// jobs; an empty one leaves all three byte-identical to the
  /// single-machine era, which keeps old journals resumable.
  std::string machine;

  /// Human-readable identity, e.g. "CFD/97K/x1" — or
  /// "CFD/97K/x1@volta_v100" when a machine is named.
  std::string key() const;

  /// Deterministic 64-bit fingerprint of the identity as 16 hex chars;
  /// the journal key. Stable across processes and platforms (FNV-1a).
  std::string fingerprint() const;

  /// Deterministic per-job RNG seed: a pure function of (base_seed, this
  /// spec), decorrelated across specs. Jobs seeded this way measure the
  /// same values regardless of worker count or scheduling order.
  std::uint64_t stream_seed(std::uint64_t base_seed) const;
};

/// Why a job (or one attempt of it) failed. The kind is the framework's
/// ErrorKind taxonomy (util/error.h); string forms exist only at the
/// JSONL boundary (JobRecord) and in human-readable output.
struct JobError {
  ErrorKind kind = ErrorKind::kException;
  std::string message;
  bool timed_out = false;   ///< The deadline watchdog fired.
  bool retryable = false;   ///< Transient: retry may succeed.
};

/// Maps the exception currently in flight (callable from a catch block
/// only) to the sweep error taxonomy. Only measurement failures and
/// watchdog timeouts are transient; everything else is a property of the
/// configuration, and retrying cannot help. Shared by the sweep engine's
/// supervised attempts and the serve::Daemon request executor, so batch
/// and online failures classify identically.
JobError classify_current_exception();

/// How a journaled job ended. Serialized as "ok"/"failed" at the JSONL
/// boundary only (see record.cpp); the journal format is unchanged.
enum class RecordStatus {
  kOk,
  kFailed,
};

/// The journaled snapshot of one finished job: identity, outcome, and the
/// scalar results every sweep table derives its columns from. This is the
/// unit the journal stores and resume replays.
struct JobRecord {
  std::string fingerprint;
  std::string workload;
  std::string size_label;
  int iterations = 1;

  RecordStatus status = RecordStatus::kFailed;
  int attempts = 0;
  double elapsed_s = 0.0;
  /// Why the job failed; empty when ok.
  std::optional<ErrorKind> error_kind;
  std::string error_message;  ///< Empty when ok.

  // Result scalars (meaningful when status == RecordStatus::kOk); every
  // derived metric of core::ProjectionReport (speedups, error
  // percentages, limits) is a function of these.
  std::string machine;
  double predicted_kernel_s = 0.0;
  double measured_kernel_s = 0.0;
  double predicted_transfer_s = 0.0;
  double measured_transfer_s = 0.0;
  double measured_cpu_s = 0.0;
  double input_bytes = 0.0;
  double output_bytes = 0.0;
  bool calibration_fallback = false;  ///< Degraded-mode flag, bubbled up.

  bool ok() const { return status == RecordStatus::kOk; }

  /// Flat-JSON payload for the journal line.
  std::string to_json() const;
  /// Parses a journal payload; std::nullopt when malformed (a corrupt
  /// record is skipped, never fatal).
  static std::optional<JobRecord> from_json(std::string_view payload);

  /// Snapshot of a completed projection.
  static JobRecord from_report(const JobSpec& spec,
                               const core::ProjectionReport& report,
                               int attempts, double elapsed_s);

  /// Reconstructs a ProjectionReport holding the journaled scalars. All
  /// derived metrics (speedups, errors, limits) match the original
  /// report; the structural detail (per-kernel/per-transfer breakdown,
  /// transfer plan) is empty — it is not journaled.
  core::ProjectionReport to_report() const;
};

/// How one job of the sweep ended.
enum class JobStatus {
  kOk,       ///< Executed in this run and succeeded.
  kResumed,  ///< Replayed from the journal; not re-executed.
  kDeduped,  ///< Duplicate of an earlier job in the same sweep: reused its
             ///< result without executing. Not journaled — the journal is
             ///< keyed by fingerprint, so the first occurrence's record
             ///< already covers every duplicate on resume.
  kFailed,   ///< Permanently failed (retries exhausted or not retryable).
};

/// Everything the engine knows about one job after the sweep.
struct JobOutcome {
  JobSpec spec;
  JobStatus status = JobStatus::kFailed;
  int attempts = 0;          ///< Executions this run (0 when resumed).
  double elapsed_s = 0.0;    ///< Wall clock across attempts this run.
  double backoff_s = 0.0;    ///< Total backoff the retry policy imposed.
  JobRecord record;          ///< Journaled snapshot (also for in-memory runs).
  /// The projection, for ok/resumed jobs. Executed jobs carry the full
  /// report; resumed jobs carry the scalar reconstruction
  /// (JobRecord::to_report). Empty for failed jobs.
  std::optional<core::ProjectionReport> report;
  std::optional<JobError> error;  ///< The final error, for failed jobs.

  bool ok() const { return status != JobStatus::kFailed; }
};

/// Engine knobs. Defaults are the transparent profile: no journal, no
/// deadline, retries on transient failures only — a fault-free sweep
/// behaves exactly like the serial loop it replaced, modulo the worker
/// pool (set workers = 1 for strictly serial in-order execution).
struct SweepOptions {
  /// Size of the worker pool executing independent jobs concurrently.
  /// 0 (the default) means std::thread::hardware_concurrency(); 1
  /// preserves the strictly serial in-order execution of the pre-pool
  /// engine. With more than one worker the job function is called
  /// concurrently and must be thread-safe (the SweepRequest builder's
  /// per-job-engine functions are). Ignored when shards > 0 (process
  /// sharding is the parallelism then; each worker process runs its
  /// jobs serially).
  int workers = 0;
  /// Process sharding (POSIX only). 0 (the default) executes jobs
  /// in-process on the thread pool above; N > 0 forks N worker
  /// processes and assigns jobs to them over a length-prefixed pipe
  /// protocol (see exec/shard/supervisor.h). Unlike threads, a worker
  /// process can die — segfault, OOM kill, a truly infinite loop — and
  /// the sweep survives: the supervisor detects the death (waitpid +
  /// heartbeat timeout), respawns the worker with the bounded-backoff
  /// policy below, re-assigns the in-flight job, and quarantines a job
  /// that keeps killing its workers (poison_kill_threshold) as a
  /// permanent ErrorKind::kWorkerDeath failure. With a journal_path
  /// each worker appends to its own crash-safe shard journal and a
  /// deterministic merge step folds the shards into the canonical
  /// journal in submission order — byte-identical to a single-process
  /// run of the same grid (set record_wall_time = false) — and resume
  /// recovers completed work from the shards even after the supervisor
  /// itself was killed.
  int shards = 0;
  /// Sharded mode: a worker that holds a job and has been silent this
  /// long is presumed stuck (an infinite loop heartbeats never) and is
  /// SIGKILLed; the in-flight job goes back to the queue or, past the
  /// poison threshold, to quarantine. This is the process-level
  /// analogue of deadline_s — it must exceed the worst-case honest job
  /// time (including in-worker retries).
  double heartbeat_timeout_s = 30.0;
  /// Sharded mode: worker deaths attributed to the same job before the
  /// job is quarantined as a permanent JobError instead of being
  /// re-assigned to (and re-killing) fresh workers forever.
  int poison_kill_threshold = 2;
  /// Extra attempts per job on a retryable failure. Mirrors the PR 1
  /// calibration policy (pcie::RobustnessOptions).
  int max_retries = 3;
  /// Backoff before retry k is min(backoff_initial_s * 2^k, backoff_max_s),
  /// recorded in the outcome; the simulated harness does not sleep.
  double backoff_initial_s = 1e-3;
  double backoff_max_s = 0.25;
  /// Wall-clock deadline per attempt. Infinity (the default) runs jobs
  /// inline; a finite deadline runs each attempt on a supervised thread
  /// and abandons it when the deadline passes. Job functions used with a
  /// finite deadline must tolerate abandonment (see SweepEngine docs).
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Journal file path; empty disables journaling (and resume).
  std::string journal_path;
  /// Replay journaled "ok" records instead of re-running their jobs.
  bool resume = true;
  /// Record per-job wall-clock time in journal records. Disable to make
  /// the journal bytes a pure function of the jobs and their results —
  /// bitwise identical across runs and worker counts (the determinism
  /// suite relies on this; timing stays available in JobOutcome either
  /// way).
  bool record_wall_time = true;

  /// Throws UsageError naming the offending field for any value the
  /// engine cannot run with (negative counts, non-positive deadlines,
  /// inverted backoff bounds). Mirrors ProjectionOptions::validate:
  /// invalid knobs are a bad *request*, not a programming error, so
  /// they surface as the user-facing taxonomy kind instead of a
  /// ContractViolation. SweepEngine's constructor calls this.
  void validate() const;
};

/// Sweep-wide accounting, the dashboard a campaign is judged by.
struct SweepSummary {
  std::vector<JobOutcome> outcomes;  ///< One per job, in submission order.

  int ok = 0;            ///< Executed and succeeded this run.
  int resumed = 0;       ///< Replayed from the journal (skipped).
  int deduped = 0;       ///< Duplicates that reused an earlier job's result.
  int failed = 0;        ///< Permanently failed.
  int retried = 0;       ///< Jobs that needed more than one attempt.
  int attempts = 0;      ///< Total executions across all jobs.
  double backoff_total_s = 0.0;
  /// True when any successful projection ran in degraded mode (its
  /// calibration fell back to the spec-derived bus model).
  bool degraded = false;
  /// Journal lines that failed validation on resume (torn tail: <= 1
  /// after a crash; more indicates real corruption).
  int journal_corrupt_lines = 0;
  /// Of those, lines *followed by further lines* — impossible as a crash
  /// artifact of the append-only writer; real damage. describe() warns
  /// loudly when nonzero (includes checksummed lines whose payload no
  /// longer parses as a JobRecord).
  int journal_corrupt_interior = 0;
  /// The journal file the corruption counters refer to; empty for
  /// journal-less runs. Sharded runs append every damaged shard journal
  /// ("; <path>") so triage names the exact file instead of leaving the
  /// operator to guess which shard.
  std::string journal_path;

  // --- process-sharded execution accounting (shards > 0 only) ---
  // Deliberately absent from describe(): a transient worker death that
  // was recovered must not change the human-readable summary of an
  // otherwise identical sweep (the chaos gate compares describe() of a
  // killed sharded run against an unfaulted serial run).
  int worker_deaths = 0;     ///< Worker processes that died mid-sweep.
  int worker_respawns = 0;   ///< Replacement workers forked.
  int quarantined = 0;       ///< Poison jobs failed with kWorkerDeath.
  double respawn_backoff_s = 0.0;  ///< Backoff the respawn policy imposed.

  /// The outcome of one spec, or nullptr when it was not in the sweep.
  const JobOutcome* find(const JobSpec& spec) const;

  /// Multi-line human-readable account. Deliberately excludes wall-clock
  /// values, so a deterministic sweep describes identically across runs
  /// and worker counts.
  std::string describe() const;
};

/// Runs batches of projection jobs with fault isolation, deadlines,
/// retries, crash-safe journaling, and a deterministic worker pool.
///
/// The job function maps a spec to its projection; it may throw anything.
/// With workers > 1 it is called concurrently from pool threads and must
/// be thread-safe. With a finite deadline each attempt runs on a
/// supervised thread, and a timed-out attempt's thread is *abandoned* (it
/// keeps running; its result is discarded) — such job functions must only
/// touch state that is safe to race with a subsequent attempt, or be
/// pure. Abandoned threads are joined in the engine destructor, so they
/// must terminate eventually (simulated hangs do; a truly infinite loop
/// would block teardown — real deployments should isolate such jobs in
/// processes, not threads).
class SweepEngine {
 public:
  using JobFn = std::function<core::ProjectionReport(const JobSpec&)>;

  explicit SweepEngine(SweepOptions options = {});
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Runs every job; outcomes, summary counters, and journal appends are
  /// in submission order regardless of worker count. Jobs with an
  /// identical fingerprint are executed once: every later occurrence
  /// reuses the first one's result (JobStatus::kDeduped) without running
  /// or journaling. Never throws for job failures; see SweepSummary.
  /// Throws UsageError only when the journal file cannot be opened.
  SweepSummary run(const std::vector<JobSpec>& jobs, const JobFn& fn);

  const SweepOptions& options() const { return options_; }

  /// The pool size run() will use: options().workers, with 0 resolved to
  /// std::thread::hardware_concurrency() (at least 1).
  int effective_workers() const;

  /// The supervised retry loop for one job (thread-safe; called from pool
  /// workers). Produces a fully-populated outcome including its record.
  /// Public so a shard worker process (exec/shard/worker.h) can run the
  /// exact same attempt/retry/record policy as the in-process engine —
  /// the property that makes a sharded journal byte-identical to a
  /// serial one.
  JobOutcome execute_job(const JobSpec& spec, const JobFn& fn);

 private:
  struct AttemptResult {
    std::optional<core::ProjectionReport> report;
    JobError error;  ///< Meaningful when report is empty.
  };

  AttemptResult run_attempt(const JobSpec& spec, const JobFn& fn);
  /// run() after duplicate fingerprints have been filtered out.
  SweepSummary run_unique(const std::vector<JobSpec>& jobs, const JobFn& fn);
  /// run_unique for shards > 0: forks workers, supervises them, merges
  /// shard journals (exec/shard/supervisor.h).
  SweepSummary run_sharded(const std::vector<JobSpec>& jobs, const JobFn& fn);

  SweepOptions options_;
  std::mutex abandoned_mutex_;          ///< Guards abandoned_ across workers.
  std::vector<std::thread> abandoned_;  ///< Timed-out attempt threads.
};

}  // namespace grophecy::exec
