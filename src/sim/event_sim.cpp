#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gpumodel/kernel_model.h"
#include "gpumodel/occupancy.h"
#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::sim {

EventGpuSimulator::EventGpuSimulator(hw::GpuSpec gpu, std::uint64_t seed,
                                     EventSimOptions options)
    : gpu_(std::move(gpu)), rng_(seed), options_(options) {
  GROPHECY_EXPECTS(options_.jitter_quantum >= 0.0);
}

double EventGpuSimulator::simulate(const gpumodel::KernelCharacteristics& kc,
                                   double block_jitter_sigma,
                                   util::Rng* rng) const {
  if (options_.engine == SimEngine::kReference)
    return simulate_reference(kc, block_jitter_sigma, rng);
  if (block_jitter_sigma > 0.0 && rng != nullptr)
    return engine_.simulate_jittered(kc, gpu_, block_jitter_sigma,
                                     options_.jitter_quantum, *rng) +
           gpu_.kernel_launch_overhead_s;
  return engine_.simulate_expected(kc, gpu_) + gpu_.kernel_launch_overhead_s;
}

double EventGpuSimulator::simulate_reference(
    const gpumodel::KernelCharacteristics& kc, double block_jitter_sigma,
    util::Rng* rng) const {
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu_, kc.variant.block_size, kc.regs_per_thread,
      kc.smem_per_block_bytes);
  GROPHECY_EXPECTS(occ.blocks_per_sm > 0);

  const BlockDemands base = block_demands(kc, gpu_, occ);
  const double clock_hz = gpu_.core_clock_ghz * 1e9;
  const double sm_issue_rate = clock_hz;  // issue cycles per second per SM
  const double chip_bw = gpu_.mem_bandwidth_gbps * util::kGB *
                         gpu_.achieved_bw_fraction;

  std::int64_t pending = kc.num_blocks;
  sm_load_.assign(static_cast<std::size_t>(gpu_.num_sms), 0);
  running_.clear();
  running_.reserve(static_cast<std::size_t>(gpu_.num_sms) *
                   occ.blocks_per_sm);
  auto& running = running_;
  auto& sm_load = sm_load_;

  double now = 0.0;
  while (pending > 0 || !running.empty()) {
    // Greedy backfill: place pending blocks on the least-loaded SMs.
    while (pending > 0) {
      const auto lightest = std::min_element(sm_load.begin(), sm_load.end());
      if (*lightest >= occ.blocks_per_sm) break;
      RunningBlock block;
      block.sm = static_cast<int>(lightest - sm_load.begin());
      double jitter = 1.0;
      if (block_jitter_sigma > 0.0 && rng != nullptr)
        jitter = rng->lognormal(1.0, block_jitter_sigma);
      block.compute_left = base.compute_cycles * jitter;
      block.memory_left = base.memory_bytes * jitter;
      block.floor_left = base.floor_s * jitter;
      ++*lightest;
      running.push_back(block);
      --pending;
    }
    GROPHECY_ENSURES(!running.empty());

    // A degenerate block (no compute, no memory, no floor) finishes
    // immediately; retire before computing rates to keep dt finite.
    bool retired_degenerate = false;
    for (std::size_t i = running.size(); i-- > 0;) {
      if (running[i].done()) {
        --sm_load[static_cast<std::size_t>(running[i].sm)];
        running[i] = running.back();
        running.pop_back();
        retired_degenerate = true;
      }
    }
    if (retired_degenerate) continue;

    // Instantaneous fair-share rates.
    int memory_consumers = 0;
    for (const RunningBlock& block : running)
      if (block.memory_left > kSimEps) ++memory_consumers;
    const double mem_rate =
        memory_consumers > 0 ? chip_bw / memory_consumers : 0.0;
    compute_consumers_.assign(static_cast<std::size_t>(gpu_.num_sms), 0);
    auto& compute_consumers = compute_consumers_;
    for (const RunningBlock& block : running)
      if (block.compute_left > kSimEps)
        ++compute_consumers[static_cast<std::size_t>(block.sm)];

    // Next event: the earliest exhaustion of any demand of any block.
    double dt = std::numeric_limits<double>::infinity();
    for (const RunningBlock& block : running) {
      if (block.compute_left > kSimEps) {
        const double rate =
            sm_issue_rate /
            compute_consumers[static_cast<std::size_t>(block.sm)];
        dt = std::min(dt, block.compute_left / rate);
      }
      if (block.memory_left > kSimEps)
        dt = std::min(dt, block.memory_left / mem_rate);
      if (block.floor_left > kSimEps) dt = std::min(dt, block.floor_left);
    }
    GROPHECY_ENSURES(std::isfinite(dt) && dt >= 0.0);

    // Advance every block by dt.
    now += dt;
    for (RunningBlock& block : running) {
      if (block.compute_left > kSimEps) {
        const double rate =
            sm_issue_rate /
            compute_consumers[static_cast<std::size_t>(block.sm)];
        block.compute_left =
            std::max(0.0, block.compute_left - rate * dt);
      }
      if (block.memory_left > kSimEps)
        block.memory_left =
            std::max(0.0, block.memory_left - mem_rate * dt);
      if (block.floor_left > kSimEps)
        block.floor_left = std::max(0.0, block.floor_left - dt);
    }

    // Retire finished blocks, freeing their SM slots.
    for (std::size_t i = running.size(); i-- > 0;) {
      if (running[i].done()) {
        --sm_load[static_cast<std::size_t>(running[i].sm)];
        running[i] = running.back();
        running.pop_back();
      }
    }
  }
  return now + gpu_.kernel_launch_overhead_s;
}

SimBreakdown EventGpuSimulator::expected_launch(
    const gpumodel::KernelCharacteristics& kc) const {
  SimBreakdown out;
  out.launch_s = gpu_.kernel_launch_overhead_s;
  out.total_s = simulate(kc, 0.0, nullptr);
  return out;
}

double EventGpuSimulator::run_launch_seconds(
    const gpumodel::KernelCharacteristics& kc) {
  // Per-block jitter plus a whole-launch jitter matching the wave sim.
  const double base = simulate(kc, gpu_.timing_jitter_sigma, &rng_);
  return rng_.lognormal(base, gpu_.timing_jitter_sigma * 0.5);
}

}  // namespace grophecy::sim
