#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gpumodel/kernel_model.h"
#include "gpumodel/occupancy.h"
#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::sim {

namespace {
constexpr double kSpecialInstCost = 4.0;
constexpr double kEps = 1e-15;

/// Static per-block demands derived from the kernel characteristics, using
/// the same per-warp math as the wave simulator.
struct BlockDemands {
  double compute_cycles = 0.0;  ///< SM issue cycles.
  double memory_bytes = 0.0;    ///< Effective DRAM demand (replay/locality).
  double floor_s = 0.0;         ///< Serial floor: exposed latency + syncs.
};

BlockDemands block_demands(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu,
                           const gpumodel::Occupancy& occ) {
  const double clock_hz = gpu.core_clock_ghz * 1e9;
  const double issue_cycles =
      static_cast<double>(gpu.warp_size) / gpu.cores_per_sm;
  const int warps_per_block =
      (kc.variant.block_size + gpu.warp_size - 1) / gpu.warp_size;

  const double insts_per_thread =
      (kc.flops_per_thread / gpu.flops_per_core_per_cycle +
       kc.special_per_thread * kSpecialInstCost +
       kc.index_insts_per_thread) *
      gpu.instruction_overhead;

  double warp_traffic = 0.0;
  double warp_mem_insts = 0.0;
  double warp_latency_cycles = 0.0;
  for (const gpumodel::MemAccess& access : kc.accesses) {
    const gpumodel::WarpAccessCost cost =
        gpumodel::warp_access_cost(access, gpu);
    double replay = 1.0;
    if (access.cls == gpumodel::AccessClass::kStrided ||
        access.cls == gpumodel::AccessClass::kScattered)
      replay = gpu.uncoalesced_replay_factor;
    double latency = gpu.dram_latency_cycles;
    if (access.cls == gpumodel::AccessClass::kScattered)
      latency *= gpu.indirect_access_penalty;
    double locality = 1.0;
    if (access.gathered_stream) locality = 1.0 / gpu.gather_stream_fraction;
    warp_traffic += access.count_per_thread * cost.bytes_moved * replay *
                    locality;
    warp_mem_insts += access.count_per_thread;
    warp_latency_cycles += access.count_per_thread * latency;
  }

  // Latency hiding among the SM's resident warps, capped by the MWP the
  // bus sustains (same overlap policy as the wave simulator).
  const double achieved_bw =
      gpu.mem_bandwidth_gbps * util::kGB * gpu.achieved_bw_fraction;
  const double bw_bytes_per_cycle_sm = achieved_bw / gpu.num_sms / clock_hz;
  const double dep_delay =
      warp_mem_insts > 0.0
          ? (warp_traffic / warp_mem_insts) / bw_bytes_per_cycle_sm
          : 1.0;
  const double mwp = std::max(1.0, gpu.dram_latency_cycles / dep_delay);
  const double resident_warps =
      std::max(1.0, static_cast<double>(occ.active_warps));
  const double overlap = std::max(1.0, std::min(resident_warps, mwp));

  BlockDemands demands;
  demands.compute_cycles =
      warps_per_block * insts_per_thread * issue_cycles;
  demands.memory_bytes = warps_per_block * warp_traffic;
  const double latency_cycles =
      warps_per_block * warp_latency_cycles / overlap;
  const double sync_cycles =
      kc.syncs_per_thread *
      (gpu.sync_cycles + warps_per_block * issue_cycles);
  demands.floor_s = (latency_cycles + sync_cycles) / clock_hz;
  return demands;
}

/// One resident block's remaining demands.
struct RunningBlock {
  int sm = 0;
  double compute_left = 0.0;
  double memory_left = 0.0;
  double floor_left = 0.0;

  bool done() const {
    return compute_left <= kEps && memory_left <= kEps && floor_left <= kEps;
  }
};

}  // namespace

EventGpuSimulator::EventGpuSimulator(hw::GpuSpec gpu, std::uint64_t seed)
    : gpu_(std::move(gpu)), rng_(seed) {}

double EventGpuSimulator::simulate(const gpumodel::KernelCharacteristics& kc,
                                   double block_jitter_sigma,
                                   util::Rng* rng) const {
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu_, kc.variant.block_size, kc.regs_per_thread,
      kc.smem_per_block_bytes);
  GROPHECY_EXPECTS(occ.blocks_per_sm > 0);

  const BlockDemands base = block_demands(kc, gpu_, occ);
  const double clock_hz = gpu_.core_clock_ghz * 1e9;
  const double sm_issue_rate = clock_hz;  // issue cycles per second per SM
  const double chip_bw = gpu_.mem_bandwidth_gbps * util::kGB *
                         gpu_.achieved_bw_fraction;

  std::int64_t pending = kc.num_blocks;
  std::vector<int> sm_load(static_cast<std::size_t>(gpu_.num_sms), 0);
  std::vector<RunningBlock> running;
  running.reserve(static_cast<std::size_t>(gpu_.num_sms) * occ.blocks_per_sm);

  double now = 0.0;
  while (pending > 0 || !running.empty()) {
    // Greedy backfill: place pending blocks on the least-loaded SMs.
    while (pending > 0) {
      const auto lightest = std::min_element(sm_load.begin(), sm_load.end());
      if (*lightest >= occ.blocks_per_sm) break;
      RunningBlock block;
      block.sm = static_cast<int>(lightest - sm_load.begin());
      double jitter = 1.0;
      if (block_jitter_sigma > 0.0 && rng != nullptr)
        jitter = rng->lognormal(1.0, block_jitter_sigma);
      block.compute_left = base.compute_cycles * jitter;
      block.memory_left = base.memory_bytes * jitter;
      block.floor_left = base.floor_s * jitter;
      ++*lightest;
      running.push_back(block);
      --pending;
    }
    GROPHECY_ENSURES(!running.empty());

    // A degenerate block (no compute, no memory, no floor) finishes
    // immediately; retire before computing rates to keep dt finite.
    bool retired_degenerate = false;
    for (std::size_t i = running.size(); i-- > 0;) {
      if (running[i].done()) {
        --sm_load[static_cast<std::size_t>(running[i].sm)];
        running[i] = running.back();
        running.pop_back();
        retired_degenerate = true;
      }
    }
    if (retired_degenerate) continue;

    // Instantaneous fair-share rates.
    int memory_consumers = 0;
    for (const RunningBlock& block : running)
      if (block.memory_left > kEps) ++memory_consumers;
    const double mem_rate =
        memory_consumers > 0 ? chip_bw / memory_consumers : 0.0;
    std::vector<int> compute_consumers(
        static_cast<std::size_t>(gpu_.num_sms), 0);
    for (const RunningBlock& block : running)
      if (block.compute_left > kEps)
        ++compute_consumers[static_cast<std::size_t>(block.sm)];

    // Next event: the earliest exhaustion of any demand of any block.
    double dt = std::numeric_limits<double>::infinity();
    for (const RunningBlock& block : running) {
      if (block.compute_left > kEps) {
        const double rate =
            sm_issue_rate /
            compute_consumers[static_cast<std::size_t>(block.sm)];
        dt = std::min(dt, block.compute_left / rate);
      }
      if (block.memory_left > kEps)
        dt = std::min(dt, block.memory_left / mem_rate);
      if (block.floor_left > kEps) dt = std::min(dt, block.floor_left);
    }
    GROPHECY_ENSURES(std::isfinite(dt) && dt >= 0.0);

    // Advance every block by dt.
    now += dt;
    for (RunningBlock& block : running) {
      if (block.compute_left > kEps) {
        const double rate =
            sm_issue_rate /
            compute_consumers[static_cast<std::size_t>(block.sm)];
        block.compute_left =
            std::max(0.0, block.compute_left - rate * dt);
      }
      if (block.memory_left > kEps)
        block.memory_left =
            std::max(0.0, block.memory_left - mem_rate * dt);
      if (block.floor_left > kEps)
        block.floor_left = std::max(0.0, block.floor_left - dt);
    }

    // Retire finished blocks, freeing their SM slots.
    for (std::size_t i = running.size(); i-- > 0;) {
      if (running[i].done()) {
        --sm_load[static_cast<std::size_t>(running[i].sm)];
        running[i] = running.back();
        running.pop_back();
      }
    }
  }
  return now + gpu_.kernel_launch_overhead_s;
}

SimBreakdown EventGpuSimulator::expected_launch(
    const gpumodel::KernelCharacteristics& kc) const {
  SimBreakdown out;
  out.launch_s = gpu_.kernel_launch_overhead_s;
  out.total_s = simulate(kc, 0.0, nullptr);
  return out;
}

double EventGpuSimulator::run_launch_seconds(
    const gpumodel::KernelCharacteristics& kc) {
  // Per-block jitter plus a whole-launch jitter matching the wave sim.
  const double base = simulate(kc, gpu_.timing_jitter_sigma, &rng_);
  return rng_.lognormal(base, gpu_.timing_jitter_sigma * 0.5);
}

}  // namespace grophecy::sim
