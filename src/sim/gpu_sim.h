// GPU timing simulator — the "machine" the projections are validated against.
//
// Where the analytical model (gpumodel::KernelTimeModel) projects the best
// achievable time, the simulator prices what a real device charges for the
// same transformed kernel:
//
//   * wave quantization: blocks launch in waves of (blocks/SM x SMs); the
//     final partial wave underutilizes the chip,
//   * achieved (not peak) DRAM bandwidth,
//   * transaction replay for uncoalesced/strided access, and an extra
//     latency penalty for data-dependent gathers (CFD's neighbor lists),
//   * instruction overhead for addressing/control the skeleton's FLOP
//     counts do not capture,
//   * limited memory-level parallelism (MWP) when occupancy is low,
//   * barrier costs, and
//   * seeded lognormal run-to-run jitter.
//
// Both sides consume the same KernelCharacteristics, mirroring the paper's
// methodology: the hand-written "real" kernel uses the transformations
// GROPHECY suggested (§IV-A); the difference is what the hardware does to
// them. That difference is exactly the kernel prediction error studied in
// Fig. 6.
#pragma once

#include <cstdint>

#include "gpumodel/characteristics.h"
#include "hw/machine.h"
#include "util/rng.h"

namespace grophecy::sim {

/// Noiseless timing decomposition of one simulated launch.
struct SimBreakdown {
  double compute_s = 0.0;
  double memory_s = 0.0;
  double latency_s = 0.0;
  double sync_s = 0.0;
  double launch_s = 0.0;
  double total_s = 0.0;
  int waves = 0;  ///< Block scheduling waves (incl. partial final wave).
};

/// Anything that can time one launch of a characterized kernel. Implemented
/// by the simulators here; on a real system it would wrap a kernel launch +
/// cudaEvent timing. The faults module wraps any KernelTimer to inject
/// measurement faults, exactly as it wraps pcie::TransferTimer.
class KernelTimer {
 public:
  virtual ~KernelTimer() = default;

  /// One noisy observation of a launch. Each call is independent.
  virtual double run_launch_seconds(
      const gpumodel::KernelCharacteristics& kc) = 0;

  /// Arithmetic mean of `runs` observations (paper: mean of ten runs).
  double measure_launch_seconds(const gpumodel::KernelCharacteristics& kc,
                                int runs);
};

/// Stochastic simulator of a GpuSpec executing characterized kernels.
class GpuSimulator final : public KernelTimer {
 public:
  GpuSimulator(hw::GpuSpec gpu, std::uint64_t seed);

  /// Deterministic expected time of one launch (jitter-free).
  SimBreakdown expected_launch(const gpumodel::KernelCharacteristics& kc) const;

  /// One noisy observation of a launch.
  double run_launch_seconds(const gpumodel::KernelCharacteristics& kc) override;

  const hw::GpuSpec& gpu() const { return gpu_; }

 private:
  hw::GpuSpec gpu_;
  util::Rng rng_;
};

}  // namespace grophecy::sim
