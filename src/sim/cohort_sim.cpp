#include "sim/cohort_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gpumodel/kernel_model.h"
#include "util/contracts.h"
#include "util/units.h"

namespace grophecy::sim {

namespace {

constexpr std::uint8_t kComputeBit = 1;
constexpr std::uint8_t kMemoryBit = 2;
constexpr std::uint8_t kFloorBit = 4;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

BlockDemands block_demands(const gpumodel::KernelCharacteristics& kc,
                           const hw::GpuSpec& gpu,
                           const gpumodel::Occupancy& occ) {
  const double clock_hz = gpu.core_clock_ghz * 1e9;
  const gpumodel::WarpDemands wd = gpumodel::warp_demands(kc, gpu);

  // Latency hiding among the SM's resident warps, capped by the MWP the
  // bus sustains (same overlap policy as the wave simulator).
  const double achieved_bw =
      gpu.mem_bandwidth_gbps * util::kGB * gpu.achieved_bw_fraction;
  const double bw_bytes_per_cycle_sm = achieved_bw / gpu.num_sms / clock_hz;
  const double dep_delay =
      wd.mem_insts > 0.0
          ? (wd.traffic_bytes / wd.mem_insts) / bw_bytes_per_cycle_sm
          : 1.0;
  const double mwp = std::max(1.0, gpu.dram_latency_cycles / dep_delay);
  const double resident_warps =
      std::max(1.0, static_cast<double>(occ.active_warps));
  const double overlap = std::max(1.0, std::min(resident_warps, mwp));

  BlockDemands demands;
  demands.compute_cycles =
      wd.warps_per_block * wd.insts_per_thread * wd.issue_cycles;
  demands.memory_bytes = wd.warps_per_block * wd.traffic_bytes;
  const double latency_cycles =
      wd.warps_per_block * wd.latency_cycles / overlap;
  const double sync_cycles =
      kc.syncs_per_thread *
      (gpu.sync_cycles + wd.warps_per_block * wd.issue_cycles);
  demands.floor_s = (latency_cycles + sync_cycles) / clock_hz;
  return demands;
}

double CohortEngine::simulate_expected(
    const gpumodel::KernelCharacteristics& kc, const hw::GpuSpec& gpu) {
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu, kc.variant.block_size, kc.regs_per_thread,
      kc.smem_per_block_bytes);
  GROPHECY_EXPECTS(occ.blocks_per_sm > 0);

  const BlockDemands base = block_demands(kc, gpu, occ);
  const double sm_issue_rate = gpu.core_clock_ghz * 1e9;
  const double chip_bw =
      gpu.mem_bandwidth_gbps * util::kGB * gpu.achieved_bw_fraction;

  const int num_sms = gpu.num_sms;
  const std::int64_t capacity =
      static_cast<std::int64_t>(occ.blocks_per_sm) * num_sms;

  stats_ = CohortSimStats{};
  stats_.blocks = kc.num_blocks;

  // Without jitter every block of a launch carries bitwise-identical
  // demands, so the greedy scheduler's resident set is always ONE
  // synchronized generation: the chip fills, every resident block advances
  // at the same rates, all retire at the same instant, and the next
  // generation fills. Only the final partial generation splits — blocks
  // land on SMs holding either floor(G/num_sms) or ceil(G/num_sms)
  // residents, two cohorts with different compute shares. Advancing the
  // (at most two) cohorts with the reference engine's exact per-event
  // expressions reproduces its result bit for bit in O(1) work per event.
  struct GenCohort {
    double compute_left = 0.0;
    double memory_left = 0.0;
    double floor_left = 0.0;
    int consumers = 0;         ///< Resident blocks per SM of this class.
    std::int64_t count = 0;    ///< Blocks in the cohort.
    bool alive = false;
  };

  std::int64_t pending = kc.num_blocks;
  double now = 0.0;
  while (pending > 0) {
    const std::int64_t generation = std::min(pending, capacity);
    pending -= generation;
    ++stats_.generations;

    const std::int64_t q = generation / num_sms;
    const std::int64_t r = generation % num_sms;
    GenCohort cohorts[2];
    int num_cohorts = 0;
    if (r > 0) {
      // The first r SMs hold q+1 blocks each (greedy min-load placement
      // fills SMs round-robin, lowest index first).
      cohorts[num_cohorts++] = GenCohort{base.compute_cycles,
                                         base.memory_bytes,
                                         base.floor_s,
                                         static_cast<int>(q + 1),
                                         r * (q + 1),
                                         true};
    }
    if (q > 0) {
      cohorts[num_cohorts++] = GenCohort{base.compute_cycles,
                                         base.memory_bytes,
                                         base.floor_s,
                                         static_cast<int>(q),
                                         (num_sms - r) * q,
                                         true};
    }

    for (;;) {
      // Retire finished cohorts (degenerate zero-demand blocks retire
      // before any event fires, exactly like the reference's pre-pass).
      bool any_alive = false;
      for (int i = 0; i < num_cohorts; ++i) {
        GenCohort& cohort = cohorts[i];
        if (!cohort.alive) continue;
        if (cohort.compute_left <= kSimEps &&
            cohort.memory_left <= kSimEps && cohort.floor_left <= kSimEps) {
          cohort.alive = false;
        } else {
          any_alive = true;
        }
      }
      if (!any_alive) break;

      // Instantaneous fair-share rates: identical expressions (and thus
      // identical floating point) to the reference engine.
      int memory_consumers = 0;
      for (int i = 0; i < num_cohorts; ++i)
        if (cohorts[i].alive && cohorts[i].memory_left > kSimEps)
          memory_consumers += static_cast<int>(cohorts[i].count);
      const double mem_rate =
          memory_consumers > 0 ? chip_bw / memory_consumers : 0.0;

      double dt = kInf;
      for (int i = 0; i < num_cohorts; ++i) {
        const GenCohort& cohort = cohorts[i];
        if (!cohort.alive) continue;
        if (cohort.compute_left > kSimEps) {
          const double rate = sm_issue_rate / cohort.consumers;
          dt = std::min(dt, cohort.compute_left / rate);
        }
        if (cohort.memory_left > kSimEps)
          dt = std::min(dt, cohort.memory_left / mem_rate);
        if (cohort.floor_left > kSimEps) dt = std::min(dt, cohort.floor_left);
      }
      GROPHECY_ENSURES(std::isfinite(dt) && dt >= 0.0);

      now += dt;
      ++stats_.events;
      for (int i = 0; i < num_cohorts; ++i) {
        GenCohort& cohort = cohorts[i];
        if (!cohort.alive) continue;
        if (cohort.compute_left > kSimEps) {
          const double rate = sm_issue_rate / cohort.consumers;
          cohort.compute_left =
              std::max(0.0, cohort.compute_left - rate * dt);
        }
        if (cohort.memory_left > kSimEps)
          cohort.memory_left =
              std::max(0.0, cohort.memory_left - mem_rate * dt);
        if (cohort.floor_left > kSimEps)
          cohort.floor_left = std::max(0.0, cohort.floor_left - dt);
      }
    }
  }
  return now;
}

void CohortEngine::heap_push(Stream& stream, double threshold,
                             std::int32_t cohort) {
  stream.heap.push_back(HeapEntry{threshold, cohort});
  std::push_heap(stream.heap.begin(), stream.heap.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return a.threshold > b.threshold;
                 });
}

CohortEngine::HeapEntry CohortEngine::heap_pop(Stream& stream) {
  std::pop_heap(stream.heap.begin(), stream.heap.end(),
                [](const HeapEntry& a, const HeapEntry& b) {
                  return a.threshold > b.threshold;
                });
  const HeapEntry entry = stream.heap.back();
  stream.heap.pop_back();
  return entry;
}

double CohortEngine::simulate_jittered(
    const gpumodel::KernelCharacteristics& kc, const hw::GpuSpec& gpu,
    double sigma, double jitter_quantum, util::Rng& rng) {
  GROPHECY_EXPECTS(sigma > 0.0);
  const gpumodel::Occupancy occ = gpumodel::compute_occupancy(
      gpu, kc.variant.block_size, kc.regs_per_thread,
      kc.smem_per_block_bytes);
  GROPHECY_EXPECTS(occ.blocks_per_sm > 0);

  const BlockDemands base = block_demands(kc, gpu, occ);
  const double sm_issue_rate = gpu.core_clock_ghz * 1e9;
  const double chip_bw =
      gpu.mem_bandwidth_gbps * util::kGB * gpu.achieved_bw_fraction;

  const int num_sms = gpu.num_sms;
  const int cap_per_sm = occ.blocks_per_sm;
  const std::size_t mem_stream = static_cast<std::size_t>(num_sms);
  const std::size_t floor_stream = mem_stream + 1;

  stats_ = CohortSimStats{};
  stats_.blocks = kc.num_blocks;

  // Reset reusable scratch. Thresholds are immutable once pushed — rate
  // changes remap drain level to wall clock but never reorder a stream's
  // exhaustions — so plain push/pop heaps suffice, and cohort slots are
  // recycled only after every demand entry of the cohort has been popped.
  streams_.resize(floor_stream + 1);
  for (Stream& stream : streams_) {
    stream.heap.clear();
    stream.level = 0.0;
    stream.last_t = 0.0;
    stream.rate = 0.0;
  }
  streams_[floor_stream].rate = 1.0;  // the floor drains in wall-clock time
  cohorts_.clear();
  free_cohorts_.clear();
  sm_load_.assign(static_cast<std::size_t>(num_sms), 0);
  compute_consumers_.assign(static_cast<std::size_t>(num_sms), 0);
  dirty_flag_.assign(floor_stream + 1, 0);
  dirty_.clear();
  next_event_.reset(floor_stream + 1);

  std::int64_t pending = kc.num_blocks;
  std::int64_t resident = 0;
  std::int64_t mem_consumers = 0;
  double t = 0.0;

  auto mark_dirty = [&](std::size_t stream_id) {
    if (dirty_flag_[stream_id]) return;
    dirty_flag_[stream_id] = 1;
    dirty_.push_back(stream_id);
  };

  auto advance = [&](Stream& stream) {
    stream.level += stream.rate * (t - stream.last_t);
    stream.last_t = t;
  };

  auto alloc_cohort = [&]() -> std::int32_t {
    if (!free_cohorts_.empty()) {
      const std::int32_t id = free_cohorts_.back();
      free_cohorts_.pop_back();
      return id;
    }
    cohorts_.push_back(Cohort{});
    return static_cast<std::int32_t>(cohorts_.size() - 1);
  };

  // Greedy backfill mirroring the reference policy: one block at a time to
  // the least-loaded SM (lowest index on ties), drawing the block's jitter
  // in placement order. Same-(SM, jitter) placements of one batch collapse
  // into a single cohort — with continuous jitter cohorts are singletons;
  // with a jitter quantum the draws snap to a lattice and batches share.
  auto place_pending = [&]() {
    batch_.clear();
    while (pending > 0) {
      int best_sm = -1;
      int best_load = cap_per_sm;
      for (int s = 0; s < num_sms; ++s) {
        if (sm_load_[static_cast<std::size_t>(s)] < best_load) {
          best_load = sm_load_[static_cast<std::size_t>(s)];
          best_sm = s;
        }
      }
      if (best_sm < 0) break;

      double jitter = rng.lognormal(1.0, sigma);
      if (jitter_quantum > 0.0) {
        const double step = sigma * jitter_quantum;
        jitter = std::exp(std::round(std::log(jitter) / step) * step);
      }
      --pending;

      const double compute = base.compute_cycles * jitter;
      const double memory = base.memory_bytes * jitter;
      const double floor = base.floor_s * jitter;
      if (compute <= kSimEps && memory <= kSimEps && floor <= kSimEps)
        continue;  // degenerate block: retires the instant it is placed

      ++sm_load_[static_cast<std::size_t>(best_sm)];
      ++resident;
      bool merged = false;
      for (Placement& placement : batch_) {
        if (placement.sm == best_sm && placement.jitter == jitter) {
          ++placement.count;
          merged = true;
          break;
        }
      }
      if (!merged) batch_.push_back(Placement{best_sm, jitter, 1});
    }

    for (const Placement& placement : batch_) {
      const double compute = base.compute_cycles * placement.jitter;
      const double memory = base.memory_bytes * placement.jitter;
      const double floor = base.floor_s * placement.jitter;
      const std::int32_t id = alloc_cohort();
      Cohort& cohort = cohorts_[static_cast<std::size_t>(id)];
      cohort.sm = placement.sm;
      cohort.count = placement.count;
      cohort.remaining = 0;
      ++stats_.cohorts;

      const auto sm_id = static_cast<std::size_t>(placement.sm);
      if (compute > kSimEps) {
        cohort.remaining |= kComputeBit;
        Stream& stream = streams_[sm_id];
        advance(stream);
        heap_push(stream, stream.level + compute, id);
        compute_consumers_[sm_id] += placement.count;
        mark_dirty(sm_id);
      }
      if (memory > kSimEps) {
        cohort.remaining |= kMemoryBit;
        Stream& stream = streams_[mem_stream];
        advance(stream);
        heap_push(stream, stream.level + memory, id);
        mem_consumers += placement.count;
        mark_dirty(mem_stream);
      }
      if (floor > kSimEps) {
        cohort.remaining |= kFloorBit;
        Stream& stream = streams_[floor_stream];
        advance(stream);
        heap_push(stream, stream.level + floor, id);
        mark_dirty(floor_stream);
      }
    }
  };

  // Recomputes a dirty stream's per-block drain rate from its consumer
  // count and rekeys its next exhaustion in the cross-stream event heap.
  auto refresh = [&](std::size_t stream_id) {
    Stream& stream = streams_[stream_id];
    advance(stream);
    if (stream_id < mem_stream) {
      const std::int64_t consumers = compute_consumers_[stream_id];
      stream.rate = consumers > 0 ? sm_issue_rate / consumers : 0.0;
    } else if (stream_id == mem_stream) {
      stream.rate = mem_consumers > 0 ? chip_bw / mem_consumers : 0.0;
    }  // the floor stream's rate is the constant 1
    double key = kInf;
    if (!stream.heap.empty() && stream.rate > 0.0) {
      // max(0, ...) guards the one-ulp overshoot when a tied stream was
      // advanced exactly onto its own next threshold by another event.
      key = stream.last_t +
            std::max(0.0, stream.heap.front().threshold - stream.level) /
                stream.rate;
    }
    next_event_.update(stream_id, key);
  };

  place_pending();
  for (std::size_t id : dirty_) dirty_flag_[id] = 0;
  std::vector<std::size_t> initial = dirty_;
  dirty_.clear();
  for (std::size_t id : initial) refresh(id);

  while (resident > 0) {
    const std::size_t stream_id = next_event_.top();
    const double event_t = next_event_.top_key();
    GROPHECY_ENSURES(std::isfinite(event_t) && event_t >= t);
    t = event_t;
    ++stats_.events;

    Stream& stream = streams_[stream_id];
    advance(stream);
    GROPHECY_ENSURES(!stream.heap.empty());
    // Snap onto the triggering threshold: the event time was computed as
    // the exact crossing, so any residue is rounding, not physics.
    if (stream.level < stream.heap.front().threshold)
      stream.level = stream.heap.front().threshold;

    bool freed = false;
    while (!stream.heap.empty() &&
           stream.heap.front().threshold <= stream.level) {
      const HeapEntry entry = heap_pop(stream);
      Cohort& cohort = cohorts_[static_cast<std::size_t>(entry.cohort)];
      if (stream_id < mem_stream) {
        cohort.remaining &= static_cast<std::uint8_t>(~kComputeBit);
        compute_consumers_[stream_id] -= cohort.count;
        mark_dirty(stream_id);
      } else if (stream_id == mem_stream) {
        cohort.remaining &= static_cast<std::uint8_t>(~kMemoryBit);
        mem_consumers -= cohort.count;
        mark_dirty(mem_stream);
      } else {
        cohort.remaining &= static_cast<std::uint8_t>(~kFloorBit);
      }
      if (cohort.remaining == 0) {
        sm_load_[static_cast<std::size_t>(cohort.sm)] -= cohort.count;
        resident -= cohort.count;
        free_cohorts_.push_back(entry.cohort);
        freed = true;
      }
    }
    mark_dirty(stream_id);

    if (freed && pending > 0) place_pending();

    for (std::size_t id : dirty_) {
      dirty_flag_[id] = 0;
      refresh(id);
    }
    dirty_.clear();
  }
  GROPHECY_ENSURES(pending == 0);
  return t;
}

}  // namespace grophecy::sim
